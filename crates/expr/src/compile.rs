//! Bytecode compilation — the Rust stand-in for the paper's G++ runtime
//! compilation (§III-D, "Runtime Compilation").
//!
//! The original system converts each evolved tree into C++ source, shells out
//! to G++ and `dlopen`s the result. The property that matters for the
//! speedup experiment (Fig. 10) is the *shape* of the optimisation: a
//! once-per-tree lowering cost buys a much cheaper per-time-step evaluation,
//! which pays off because a river simulation evaluates the same tree for
//! thousands of daily steps. We reproduce that shape with a flat stack-VM:
//!
//! * postorder lowering into a contiguous `Vec<Instr>` — no pointer chasing,
//!   no recursion, branch-predictable dispatch;
//! * the VM runs on a caller-provided scratch stack, so the inner loop of a
//!   13-year simulation performs **zero** allocations;
//! * `max_stack` is computed at compile time, letting callers pre-size the
//!   scratch buffer once.
//!
//! The VM uses the same protected operators as the interpreter, so
//! `compiled.eval(...) == tree.eval(...)` bit-for-bit (property-tested).

use crate::ast::{BinOp, Expr, UnOp};
use crate::eval::{apply_bin, apply_un, EvalContext};
use std::fmt;

/// A variable or state index that cannot exist under the name-table
/// arities the expression was compiled against. Historically the VMs
/// papered over this with a silent `0.0` read; it is now a compile-time
/// error (and a `debug_assert` at eval time), because a miscompiled index
/// always indicates a mis-assembled grammar or context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// `Var(index)` with only `arity` temporal variables available.
    VarOutOfRange { index: u8, arity: usize },
    /// `State(index)` with only `arity` state variables available.
    StateOutOfRange { index: u8, arity: usize },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::VarOutOfRange { index, arity } => write!(
                f,
                "temporal variable index {index} out of range (arity {arity})"
            ),
            CompileError::StateOutOfRange { index, arity } => {
                write!(
                    f,
                    "state variable index {index} out of range (arity {arity})"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Walk `expr` and verify every `Var`/`State` index against the name-table
/// arities. Shared by [`CompiledExpr::compile_checked`], the register VM's
/// `CompiledSystem::compile_checked`, and the `gmr-lint` arity lint.
pub fn check_arity(expr: &Expr, n_vars: usize, n_states: usize) -> Result<(), CompileError> {
    match expr {
        Expr::Num(_) | Expr::Param(_) => Ok(()),
        Expr::Var(i) => {
            if (*i as usize) < n_vars {
                Ok(())
            } else {
                Err(CompileError::VarOutOfRange {
                    index: *i,
                    arity: n_vars,
                })
            }
        }
        Expr::State(i) => {
            if (*i as usize) < n_states {
                Ok(())
            } else {
                Err(CompileError::StateOutOfRange {
                    index: *i,
                    arity: n_states,
                })
            }
        }
        Expr::Unary(_, a) => check_arity(a, n_vars, n_states),
        Expr::Binary(_, a, b) => {
            check_arity(a, n_vars, n_states)?;
            check_arity(b, n_vars, n_states)
        }
    }
}

/// One VM instruction. Operands are inlined so execution is a single linear
/// scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push a literal (numeric literals *and* parameter values are frozen at
    /// compile time — recompile after Gaussian mutation, which is exactly the
    /// cost profile of the original's recompilation).
    Push(f64),
    /// Push the temporal variable at this index.
    LoadVar(u8),
    /// Push the state variable at this index.
    LoadState(u8),
    /// Apply a unary operator to the top of stack.
    Un(UnOp),
    /// Apply a binary operator to the top two stack slots.
    Bin(BinOp),
}

/// A compiled expression: flat code plus the exact stack high-water mark.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    code: Vec<Instr>,
    max_stack: usize,
    /// Minimum `vars` slice length any `LoadVar` reads.
    needs_vars: usize,
    /// Minimum `state` slice length any `LoadState` reads.
    needs_states: usize,
}

impl CompiledExpr {
    /// Lower `expr` to bytecode.
    ///
    /// ```
    /// use gmr_expr::{parse, CompiledExpr, EvalContext, NameTable};
    ///
    /// let names = NameTable::new(&["x"], &[], &[]);
    /// let e = parse("x * x + 1", &names, |_| 0.0).unwrap();
    /// let compiled = CompiledExpr::compile(&e);
    /// let mut scratch = Vec::with_capacity(compiled.max_stack());
    /// let ctx = EvalContext { vars: &[3.0], state: &[] };
    /// assert_eq!(compiled.eval_with(&ctx, &mut scratch), 10.0);
    /// ```
    pub fn compile(expr: &Expr) -> CompiledExpr {
        let mut code = Vec::with_capacity(expr.size());
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        fn go(e: &Expr, code: &mut Vec<Instr>, depth: &mut usize, max: &mut usize) {
            match e {
                Expr::Num(v) => {
                    code.push(Instr::Push(*v));
                    *depth += 1;
                }
                Expr::Param(p) => {
                    code.push(Instr::Push(p.value));
                    *depth += 1;
                }
                Expr::Var(i) => {
                    code.push(Instr::LoadVar(*i));
                    *depth += 1;
                }
                Expr::State(i) => {
                    code.push(Instr::LoadState(*i));
                    *depth += 1;
                }
                Expr::Unary(op, a) => {
                    go(a, code, depth, max);
                    code.push(Instr::Un(*op));
                }
                Expr::Binary(op, a, b) => {
                    go(a, code, depth, max);
                    go(b, code, depth, max);
                    code.push(Instr::Bin(*op));
                    *depth -= 1;
                }
            }
            *max = (*max).max(*depth);
        }
        go(expr, &mut code, &mut depth, &mut max_stack);
        debug_assert_eq!(
            depth, 1,
            "a well-formed expression leaves exactly one value"
        );
        let mut needs_vars = 0usize;
        let mut needs_states = 0usize;
        for instr in &code {
            match *instr {
                Instr::LoadVar(i) => needs_vars = needs_vars.max(i as usize + 1),
                Instr::LoadState(i) => needs_states = needs_states.max(i as usize + 1),
                _ => {}
            }
        }
        CompiledExpr {
            code,
            max_stack,
            needs_vars,
            needs_states,
        }
    }

    /// [`compile`](Self::compile) with an up-front bounds check of every
    /// `Var`/`State` index against the name-table arities, so a
    /// miscompiled index surfaces as an error instead of a silent zero.
    pub fn compile_checked(
        expr: &Expr,
        n_vars: usize,
        n_states: usize,
    ) -> Result<CompiledExpr, CompileError> {
        check_arity(expr, n_vars, n_states)?;
        Ok(CompiledExpr::compile(expr))
    }

    /// Minimum `ctx.vars` length [`eval_with`](Self::eval_with) requires.
    pub fn needs_vars(&self) -> usize {
        self.needs_vars
    }

    /// Minimum `ctx.state` length [`eval_with`](Self::eval_with) requires.
    pub fn needs_states(&self) -> usize {
        self.needs_states
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program is empty (cannot happen for compiled `Expr`s,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Exact stack high-water mark; callers can size their scratch buffer
    /// with `Vec::with_capacity(compiled.max_stack())` once per simulation.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Raw instruction stream (for tests and debugging).
    pub fn instructions(&self) -> &[Instr] {
        &self.code
    }

    /// Execute on a caller-provided scratch stack. The stack is cleared on
    /// entry; no allocation occurs if `stack.capacity() >= self.max_stack()`.
    #[inline]
    pub fn eval_with(&self, ctx: &EvalContext<'_>, stack: &mut Vec<f64>) -> f64 {
        debug_assert!(
            ctx.vars.len() >= self.needs_vars,
            "context provides {} vars, program reads {}",
            ctx.vars.len(),
            self.needs_vars
        );
        debug_assert!(
            ctx.state.len() >= self.needs_states,
            "context provides {} states, program reads {}",
            ctx.state.len(),
            self.needs_states
        );
        stack.clear();
        stack.reserve(self.max_stack);
        for instr in &self.code {
            match *instr {
                Instr::Push(v) => stack.push(v),
                // Direct indexing: an out-of-range index panics instead of
                // silently reading zero. `compile_checked` (and the
                // `gmr-lint` arity lint) reject such programs up front.
                Instr::LoadVar(i) => stack.push(ctx.vars[i as usize]),
                Instr::LoadState(i) => stack.push(ctx.state[i as usize]),
                Instr::Un(op) => {
                    let a = stack.last_mut().expect("unary on empty stack");
                    *a = apply_un(op, *a);
                }
                Instr::Bin(op) => {
                    let b = stack.pop().expect("binary needs two operands");
                    let a = stack.last_mut().expect("binary needs two operands");
                    *a = apply_bin(op, *a, b);
                }
            }
        }
        debug_assert_eq!(stack.len(), 1);
        stack.pop().unwrap_or(0.0)
    }

    /// Convenience entry point that allocates its own scratch stack.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> f64 {
        let mut stack = Vec::with_capacity(self.max_stack);
        self.eval_with(ctx, &mut stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;

    const CTX: EvalContext<'static> = EvalContext {
        vars: &[10.0, 20.0, 30.0],
        state: &[2.0, 4.0],
    };

    fn sample() -> Expr {
        Expr::bin(
            BinOp::Mul,
            Expr::State(0),
            Expr::bin(
                BinOp::Sub,
                Expr::Param(ParamSlot {
                    kind: 3,
                    value: 1.89,
                }),
                Expr::bin(BinOp::Div, Expr::Var(1), Expr::Var(0)),
            ),
        )
    }

    #[test]
    fn compiled_matches_interpreter() {
        let e = sample();
        let c = CompiledExpr::compile(&e);
        assert_eq!(c.eval(&CTX), e.eval(&CTX));
    }

    #[test]
    fn instruction_count_equals_tree_size() {
        let e = sample();
        let c = CompiledExpr::compile(&e);
        assert_eq!(c.len(), e.size());
    }

    #[test]
    fn max_stack_is_tight() {
        // A left-leaning tree needs stack 2; a balanced binary tree of
        // depth d needs d+1 in the worst postorder.
        let leaf = || Expr::Num(1.0);
        let left = Expr::bin(BinOp::Add, Expr::bin(BinOp::Add, leaf(), leaf()), leaf());
        assert_eq!(CompiledExpr::compile(&left).max_stack(), 2);
        let right = Expr::bin(BinOp::Add, leaf(), Expr::bin(BinOp::Add, leaf(), leaf()));
        assert_eq!(CompiledExpr::compile(&right).max_stack(), 3);
    }

    #[test]
    fn eval_with_reuses_buffer_without_alloc() {
        let e = sample();
        let c = CompiledExpr::compile(&e);
        let mut stack = Vec::with_capacity(c.max_stack());
        let cap = stack.capacity();
        for _ in 0..100 {
            let _ = c.eval_with(&CTX, &mut stack);
        }
        assert_eq!(stack.capacity(), cap);
    }

    #[test]
    fn params_are_frozen_at_compile_time() {
        let mut e = sample();
        let c = CompiledExpr::compile(&e);
        let before = c.eval(&CTX);
        for s in e.param_slots_mut() {
            s.value = 100.0;
        }
        // The compiled artifact does not see the mutation...
        assert_eq!(c.eval(&CTX), before);
        // ...until recompiled.
        let c2 = CompiledExpr::compile(&e);
        assert_ne!(c2.eval(&CTX), before);
        assert_eq!(c2.eval(&CTX), e.eval(&CTX));
    }

    #[test]
    fn compile_checked_enforces_arity() {
        let e = sample(); // reads Var(0), Var(1), State(0)
        assert!(CompiledExpr::compile_checked(&e, 2, 1).is_ok());
        assert_eq!(
            CompiledExpr::compile_checked(&e, 1, 1),
            Err(CompileError::VarOutOfRange { index: 1, arity: 1 })
        );
        assert_eq!(
            CompiledExpr::compile_checked(&e, 2, 0),
            Err(CompileError::StateOutOfRange { index: 0, arity: 0 })
        );
        let c = CompiledExpr::compile(&e);
        assert_eq!(c.needs_vars(), 2);
        assert_eq!(c.needs_states(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_load_panics_instead_of_reading_zero() {
        let e = Expr::Var(7);
        let c = CompiledExpr::compile(&e);
        let _ = c.eval(&CTX); // CTX has only 3 vars
    }

    #[test]
    fn protected_semantics_in_vm() {
        let div0 = Expr::bin(BinOp::Div, Expr::Num(5.0), Expr::Num(0.0));
        assert_eq!(CompiledExpr::compile(&div0).eval(&CTX), 0.0);
        let logneg = Expr::un(UnOp::Log, Expr::Num(-3.0));
        assert_eq!(CompiledExpr::compile(&logneg).eval(&CTX), 3.0_f64.ln());
    }
}
