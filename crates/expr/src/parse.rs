//! A small recursive-descent parser for process equations.
//!
//! Lets examples, tests and domain code write equations as text instead of
//! assembling ASTs by hand. The grammar mirrors the pretty-printer in
//! [`crate::display`] (round-trip property-tested):
//!
//! ```text
//! expr   := term  (('+' | '-') term)*
//! term   := factor (('*' | '/') factor)*
//! factor := '-' factor | atom
//! atom   := NUMBER
//!         | IDENT '[' NUMBER ']'        // parameter with explicit value
//!         | IDENT '(' expr (',' expr)? ')'  // log/exp/min/max/pow
//!         | IDENT                       // variable, state, or parameter
//!         | '(' expr ')'
//! ```
//!
//! Identifier resolution consults the [`NameTable`]: states first, then
//! variables, then parameters (a parameter without `[value]` takes the
//! default value supplied by the caller's `param_default` closure — the
//! domain layer passes Table III means).

use crate::ast::{BinOp, Expr, ParamSlot, UnOp};
use crate::display::NameTable;
use std::fmt;

/// Parse failure with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error occurred.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth accepted by the parser. Deeper input returns a
/// [`ParseError`] instead of exhausting the stack — evolved or user-written
/// equations never come close, so this is purely a robustness bound.
pub const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    depth: usize,
    names: &'a NameTable,
    param_default: &'a dyn Fn(u16) -> f64,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.src.get(self.pos).is_some_and(|c| {
            c.is_ascii_digit()
                || *c == b'.'
                || *c == b'e'
                || *c == b'E'
                || (*c == b'-' || *c == b'+')
                    && matches!(self.src.get(self.pos - 1), Some(b'e' | b'E'))
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
        text.parse::<f64>().map_err(|_| ParseError {
            at: start,
            msg: format!("invalid number '{text}'"),
        })
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_' || *c == b'#')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return self.err("expression nests too deeply");
        }
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    lhs = Expr::bin(BinOp::Add, lhs, self.term()?);
                }
                Some(b'-') => {
                    self.pos += 1;
                    lhs = Expr::bin(BinOp::Sub, lhs, self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    lhs = Expr::bin(BinOp::Mul, lhs, self.factor()?);
                }
                Some(b'/') => {
                    self.pos += 1;
                    lhs = Expr::bin(BinOp::Div, lhs, self.factor()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(b'-') {
            // Distinguish a negative literal from negation of a subterm.
            let save = self.pos;
            self.pos += 1;
            if self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'.') {
                self.pos = save;
                return Ok(Expr::Num(self.number()?));
            }
            return Ok(Expr::un(UnOp::Neg, self.factor()?));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => Ok(Expr::Num(self.number()?)),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident();
                match (name.as_str(), self.peek()) {
                    ("log" | "exp" | "neg", Some(b'(')) => {
                        self.pos += 1;
                        let a = self.expr()?;
                        self.expect(b')')?;
                        let op = match name.as_str() {
                            "log" => UnOp::Log,
                            "exp" => UnOp::Exp,
                            _ => UnOp::Neg,
                        };
                        Ok(Expr::un(op, a))
                    }
                    ("min" | "max" | "pow", Some(b'(')) => {
                        self.pos += 1;
                        let a = self.expr()?;
                        self.expect(b',')?;
                        let b = self.expr()?;
                        self.expect(b')')?;
                        let op = match name.as_str() {
                            "min" => BinOp::Min,
                            "max" => BinOp::Max,
                            _ => BinOp::Pow,
                        };
                        Ok(Expr::bin(op, a, b))
                    }
                    _ => self.resolve(name),
                }
            }
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn resolve(&mut self, name: String) -> Result<Expr, ParseError> {
        if let Some(i) = self.names.state_index(&name) {
            return Ok(Expr::State(i));
        }
        if let Some(i) = self.names.var_index(&name) {
            return Ok(Expr::Var(i));
        }
        if let Some(kind) = self.names.param_kind(&name) {
            let value = if self.eat(b'[') {
                let v = self.number()?;
                self.expect(b']')?;
                v
            } else {
                (self.param_default)(kind)
            };
            return Ok(Expr::Param(ParamSlot { kind, value }));
        }
        self.err(format!("unknown identifier '{name}'"))
    }
}

/// Parse `src` against `names`. `param_default` supplies the value for a
/// parameter written without an explicit `[value]` (typically the prior
/// mean from the domain's parameter table).
pub fn parse(
    src: &str,
    names: &NameTable,
    param_default: impl Fn(u16) -> f64,
) -> Result<Expr, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        depth: 0,
        names,
        param_default: &param_default,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalContext;

    fn names() -> NameTable {
        NameTable::new(&["Vlgt", "Vtmp"], &["BPhy", "BZoo"], &["CUA", "CBRA"])
    }

    fn p(src: &str) -> Expr {
        parse(src, &names(), |_| 1.0).expect(src)
    }

    #[test]
    fn numbers() {
        assert_eq!(p("3.5"), Expr::Num(3.5));
        assert_eq!(p("-2"), Expr::Num(-2.0));
        assert_eq!(p("1e-3"), Expr::Num(1e-3));
    }

    #[test]
    fn identifiers_resolve_in_order() {
        assert_eq!(p("BPhy"), Expr::State(0));
        assert_eq!(p("Vtmp"), Expr::Var(1));
        assert_eq!(
            p("CUA"),
            Expr::Param(ParamSlot {
                kind: 0,
                value: 1.0
            })
        );
        assert_eq!(
            p("CBRA[0.021]"),
            Expr::Param(ParamSlot {
                kind: 1,
                value: 0.021
            })
        );
    }

    #[test]
    fn precedence() {
        let e = p("BPhy + Vlgt * Vtmp");
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::State(0),
                Expr::bin(BinOp::Mul, Expr::Var(0), Expr::Var(1))
            )
        );
    }

    #[test]
    fn left_associativity() {
        let e = p("Vlgt - Vtmp - 1");
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::Var(0), Expr::Var(1)),
                Expr::Num(1.0)
            )
        );
    }

    #[test]
    fn functions() {
        assert_eq!(
            p("min(Vlgt, Vtmp)"),
            Expr::bin(BinOp::Min, Expr::Var(0), Expr::Var(1))
        );
        assert_eq!(p("log(Vlgt)"), Expr::un(UnOp::Log, Expr::Var(0)));
        assert_eq!(
            p("pow(Vlgt, 2)"),
            Expr::bin(BinOp::Pow, Expr::Var(0), Expr::Num(2.0))
        );
    }

    #[test]
    fn negation_of_expression() {
        let e = p("-(Vlgt + 1)");
        assert_eq!(
            e,
            Expr::un(
                UnOp::Neg,
                Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0))
            )
        );
        assert_eq!(p("-Vlgt"), Expr::un(UnOp::Neg, Expr::Var(0)));
    }

    #[test]
    fn errors() {
        assert!(parse("Vxx", &names(), |_| 0.0).is_err());
        assert!(parse("1 +", &names(), |_| 0.0).is_err());
        assert!(parse("(1", &names(), |_| 0.0).is_err());
        assert!(parse("1 2", &names(), |_| 0.0).is_err());
        assert!(parse("min(1)", &names(), |_| 0.0).is_err());
    }

    #[test]
    fn round_trip_display_parse() {
        let n = names();
        let exprs = [
            "BPhy * (CUA[1.89] - 1.5)",
            "min(Vlgt / (CUA[1] + Vlgt), Vtmp)",
            "exp(-(Vtmp - 27))",
            "Vlgt - (Vtmp - 1)",
            "BZoo * CBRA[0.05] + log(Vlgt)",
        ];
        for src in exprs {
            let e = parse(src, &n, |_| 1.0).expect(src);
            let shown = e.display(&n).to_string();
            let re = parse(&shown, &n, |_| 1.0).expect(&shown);
            assert_eq!(e, re, "round trip failed for {src} -> {shown}");
        }
    }

    #[test]
    fn parse_then_eval() {
        let e = p("BPhy * (CUA[2.0] - Vtmp / Vlgt)");
        let ctx = EvalContext {
            vars: &[10.0, 5.0],
            state: &[3.0, 0.0],
        };
        assert_eq!(e.eval(&ctx), 3.0 * (2.0 - 0.5));
    }
}
