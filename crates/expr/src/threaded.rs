//! Threaded-code execution tier: an [`RInstr`] sequence compiled into a
//! flat array of monomorphized thunks.
//!
//! The register interpreter in [`crate::vm`] pays *two* dispatches per
//! arithmetic instruction in its sequential core: the `match` over
//! `RInstr` and, inside `apply_bin`/`apply_un`, a second `match` over
//! the operator. For the ~4700-step Euler recurrence those branches —
//! not the arithmetic — dominate. This module removes both: at compile
//! time every instruction is resolved to one concrete function pointer
//! (`t_bin_mul`, `t_vbl_add`, …) over a small argument pack, and the
//! steady-state inner loop is nothing but
//!
//! ```text
//! for t in &thunks { (t.f)(&t.args, regs, vars, state) }
//! ```
//!
//! — an indirect call the branch predictor learns per call site, with
//! the operand fetch/compute/store code of each thunk fully
//! monomorphized (no operator match, no per-operand bounds checks).
//!
//! # Safety architecture
//!
//! Thunks use raw-pointer register access, so the proof that every
//! access is in bounds must be airtight:
//!
//! * A [`ThreadedProgram`] is only ever built by
//!   [`CompiledSystem::compile`](crate::vm::CompiledSystem::compile)
//!   from a [`RegProgram`] that passed `validate()` — every register
//!   operand `< n_regs`, every write outside the pinned region.
//! * `build` *re-derives* the `vars`/`state` arity floors from the
//!   instruction stream itself instead of trusting the program's
//!   cached fields, so a stale field cannot weaken the runtime assert.
//! * [`ThreadedProgram::run`] asserts `regs.len() == n_regs`,
//!   `vars.len() >= needs_vars`, `state.len() >= needs_states` on every
//!   call — after which each thunk's accesses are in bounds by the
//!   compile-time facts above.
//!
//! `lint::absint` re-proves the same register and arity bounds over the
//! public accessors as machine-checked `SafetyObligation`s (site class
//! "threaded thunks"), so the proof is not only in this comment.
//!
//! The `fast` flag selects [`crate::fastmath`] transcendentals instead
//! of the protected libm ones — the relaxed half of the SIMD tier; with
//! `fast = false` thunk arithmetic is the *identical* protected-operator
//! sequence of the match interpreter, which is what makes the threaded
//! tier bit-exact (property-tested in `tests/properties.rs`).

use crate::ast::{BinOp, UnOp};
use crate::eval::{protected_div, protected_exp, protected_log, protected_pow};
use crate::fastmath::{fast_exp, fast_log, fast_pow};
use crate::vm::{RInstr, RegProgram};

/// Argument pack of one thunk. Field meaning depends on the thunk:
/// register indices for `a`/`b`/`c`, a forcing/state index riding in
/// `a` or `b` for the load-fused forms, an immediate in `imm`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TArgs {
    dst: u16,
    a: u16,
    b: u16,
    c: u16,
    imm: f64,
}

/// One monomorphized instruction. `f` is chosen at build time; calling
/// it is sound only under the `run` preconditions (see module docs).
type TFn = unsafe fn(&TArgs, *mut f64, *const f64, *const f64);

#[derive(Clone, Copy)]
pub(crate) struct Thunk {
    f: TFn,
    args: TArgs,
}

impl std::fmt::Debug for Thunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thunk").field("args", &self.args).finish()
    }
}

/// A register program compiled to threaded code. Holds its own copies of
/// the bounds facts the runtime asserts rely on.
#[derive(Debug, Clone)]
pub(crate) struct ThreadedProgram {
    thunks: Vec<Thunk>,
    n_regs: usize,
    needs_vars: usize,
    needs_states: usize,
}

// SAFETY (shared by every thunk body below): thunks are only invoked by
// `ThreadedProgram::run`, which asserts `regs.len() == n_regs`,
// `vars.len() >= needs_vars` and `state.len() >= needs_states`. Register
// operands in `TArgs` came from a `RegProgram` that passed `validate()`
// (all `< n_regs`), and every `vars`/`state` index is `< needs_vars` /
// `< needs_states` because `build` derives those floors as
// `max(index) + 1` over the same instruction stream. Hence every
// pointer offset below is in bounds. Operands are read into locals
// before the destination store, preserving in-place-update semantics.
macro_rules! t_bin {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, _v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *r.add(t.a as usize);
                let y = *r.add(t.b as usize);
                *r.add(t.dst as usize) = $f(x, y);
            }
        }
    };
}

macro_rules! t_un {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, _v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *r.add(t.a as usize);
                *r.add(t.dst as usize) = $f(x);
            }
        }
    };
}

/// Fused var-load left: `r[dst] = f(vars[a], r[b])`.
macro_rules! t_vbl {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *v.add(t.a as usize);
                let y = *r.add(t.b as usize);
                *r.add(t.dst as usize) = $f(x, y);
            }
        }
    };
}

/// Fused var-load right: `r[dst] = f(r[a], vars[b])`.
macro_rules! t_vbr {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *r.add(t.a as usize);
                let y = *v.add(t.b as usize);
                *r.add(t.dst as usize) = $f(x, y);
            }
        }
    };
}

/// Immediate left: `r[dst] = f(imm, r[b])`.
macro_rules! t_cbl {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, _v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let y = *r.add(t.b as usize);
                *r.add(t.dst as usize) = $f(t.imm, y);
            }
        }
    };
}

/// Immediate right: `r[dst] = f(r[a], imm)`.
macro_rules! t_cbr {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, _v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *r.add(t.a as usize);
                *r.add(t.dst as usize) = $f(x, t.imm);
            }
        }
    };
}

/// Three-register fused: `r[dst] = f(r[a], r[b], r[c])`.
macro_rules! t_f3 {
    ($name:ident, $f:expr) => {
        // SAFETY: see the shared thunk argument above.
        unsafe fn $name(t: &TArgs, r: *mut f64, _v: *const f64, _s: *const f64) {
            // SAFETY: see the shared thunk argument above.
            unsafe {
                let x = *r.add(t.a as usize);
                let y = *r.add(t.b as usize);
                let z = *r.add(t.c as usize);
                *r.add(t.dst as usize) = $f(x, y, z);
            }
        }
    };
}

unsafe fn t_load_var(t: &TArgs, r: *mut f64, v: *const f64, _s: *const f64) {
    // SAFETY: see the shared thunk argument above.
    unsafe { *r.add(t.dst as usize) = *v.add(t.a as usize) }
}

unsafe fn t_load_state(t: &TArgs, r: *mut f64, _v: *const f64, s: *const f64) {
    // SAFETY: see the shared thunk argument above.
    unsafe { *r.add(t.dst as usize) = *s.add(t.a as usize) }
}

t_un!(t_neg, |x: f64| -x);
t_un!(t_log, protected_log);
t_un!(t_exp, protected_exp);
t_un!(t_log_fast, fast_log);
t_un!(t_exp_fast, fast_exp);

t_bin!(t_add, |x, y| x + y);
t_bin!(t_sub, |x, y| x - y);
t_bin!(t_mul, |x, y| x * y);
t_bin!(t_div, protected_div);
t_bin!(t_min, f64::min);
t_bin!(t_max, f64::max);
t_bin!(t_pow, protected_pow);
t_bin!(t_pow_fast, fast_pow);

t_vbl!(t_vbl_add, |x, y| x + y);
t_vbl!(t_vbl_sub, |x, y| x - y);
t_vbl!(t_vbl_mul, |x, y| x * y);
t_vbl!(t_vbl_div, protected_div);
t_vbl!(t_vbl_min, f64::min);
t_vbl!(t_vbl_max, f64::max);
t_vbl!(t_vbl_pow, protected_pow);
t_vbl!(t_vbl_pow_fast, fast_pow);

t_vbr!(t_vbr_add, |x, y| x + y);
t_vbr!(t_vbr_sub, |x, y| x - y);
t_vbr!(t_vbr_mul, |x, y| x * y);
t_vbr!(t_vbr_div, protected_div);
t_vbr!(t_vbr_min, f64::min);
t_vbr!(t_vbr_max, f64::max);
t_vbr!(t_vbr_pow, protected_pow);
t_vbr!(t_vbr_pow_fast, fast_pow);

t_cbl!(t_cbl_add, |x, y| x + y);
t_cbl!(t_cbl_sub, |x, y| x - y);
t_cbl!(t_cbl_mul, |x, y| x * y);
t_cbl!(t_cbl_div, protected_div);
t_cbl!(t_cbl_min, f64::min);
t_cbl!(t_cbl_max, f64::max);
t_cbl!(t_cbl_pow, protected_pow);
t_cbl!(t_cbl_pow_fast, fast_pow);

t_cbr!(t_cbr_add, |x, y| x + y);
t_cbr!(t_cbr_sub, |x, y| x - y);
t_cbr!(t_cbr_mul, |x, y| x * y);
t_cbr!(t_cbr_div, protected_div);
t_cbr!(t_cbr_min, f64::min);
t_cbr!(t_cbr_max, f64::max);
t_cbr!(t_cbr_pow, protected_pow);
t_cbr!(t_cbr_pow_fast, fast_pow);

// Two roundings on purpose in all three; see `RInstr::MulAdd`.
t_f3!(t_mul_add, |x: f64, y: f64, z: f64| x * y + z);
t_f3!(t_mul_sub, |x: f64, y: f64, z: f64| x * y - z);
t_f3!(t_sub_mul, |x: f64, y: f64, z: f64| x - y * z);

fn bin_fn(op: BinOp, fast: bool) -> TFn {
    match op {
        BinOp::Add => t_add,
        BinOp::Sub => t_sub,
        BinOp::Mul => t_mul,
        BinOp::Div => t_div,
        BinOp::Min => t_min,
        BinOp::Max => t_max,
        BinOp::Pow if fast => t_pow_fast,
        BinOp::Pow => t_pow,
    }
}

fn vbl_fn(op: BinOp, fast: bool) -> TFn {
    match op {
        BinOp::Add => t_vbl_add,
        BinOp::Sub => t_vbl_sub,
        BinOp::Mul => t_vbl_mul,
        BinOp::Div => t_vbl_div,
        BinOp::Min => t_vbl_min,
        BinOp::Max => t_vbl_max,
        BinOp::Pow if fast => t_vbl_pow_fast,
        BinOp::Pow => t_vbl_pow,
    }
}

fn vbr_fn(op: BinOp, fast: bool) -> TFn {
    match op {
        BinOp::Add => t_vbr_add,
        BinOp::Sub => t_vbr_sub,
        BinOp::Mul => t_vbr_mul,
        BinOp::Div => t_vbr_div,
        BinOp::Min => t_vbr_min,
        BinOp::Max => t_vbr_max,
        BinOp::Pow if fast => t_vbr_pow_fast,
        BinOp::Pow => t_vbr_pow,
    }
}

fn cbl_fn(op: BinOp, fast: bool) -> TFn {
    match op {
        BinOp::Add => t_cbl_add,
        BinOp::Sub => t_cbl_sub,
        BinOp::Mul => t_cbl_mul,
        BinOp::Div => t_cbl_div,
        BinOp::Min => t_cbl_min,
        BinOp::Max => t_cbl_max,
        BinOp::Pow if fast => t_cbl_pow_fast,
        BinOp::Pow => t_cbl_pow,
    }
}

fn cbr_fn(op: BinOp, fast: bool) -> TFn {
    match op {
        BinOp::Add => t_cbr_add,
        BinOp::Sub => t_cbr_sub,
        BinOp::Mul => t_cbr_mul,
        BinOp::Div => t_cbr_div,
        BinOp::Min => t_cbr_min,
        BinOp::Max => t_cbr_max,
        BinOp::Pow if fast => t_cbr_pow_fast,
        BinOp::Pow => t_cbr_pow,
    }
}

fn un_fn(op: UnOp, fast: bool) -> TFn {
    match op {
        UnOp::Neg => t_neg,
        UnOp::Log if fast => t_log_fast,
        UnOp::Log => t_log,
        UnOp::Exp if fast => t_exp_fast,
        UnOp::Exp => t_exp,
    }
}

impl ThreadedProgram {
    /// Compile a *validated* register program to threaded code. `fast`
    /// selects the relaxed transcendentals (SIMD tier); with it off,
    /// thunk arithmetic is exactly the match interpreter's. Panics if
    /// the program fails [`RegProgram::check`] — a threaded program for
    /// unvalidated code must never exist.
    pub(crate) fn build(prog: &RegProgram, fast: bool) -> ThreadedProgram {
        if let Err(e) = prog.check() {
            panic!("threaded build over invalid program: {e}");
        }
        // Re-derive the arity floors from the instruction stream: the
        // runtime asserts in `run` must cover exactly the indices the
        // thunks dereference, independent of the cached fields.
        let mut needs_vars = 0usize;
        let mut needs_states = 0usize;
        let mut thunks = Vec::with_capacity(prog.len());
        for ins in prog.instructions() {
            if let Some(i) = ins.var_index() {
                needs_vars = needs_vars.max(i as usize + 1);
            }
            if let Some(i) = ins.state_index() {
                needs_states = needs_states.max(i as usize + 1);
            }
            let zero = TArgs {
                dst: ins.dst(),
                a: 0,
                b: 0,
                c: 0,
                imm: 0.0,
            };
            let (f, args): (TFn, TArgs) = match *ins {
                RInstr::LoadVar { idx, .. } => (
                    t_load_var,
                    TArgs {
                        a: idx as u16,
                        ..zero
                    },
                ),
                RInstr::LoadState { idx, .. } => (
                    t_load_state,
                    TArgs {
                        a: idx as u16,
                        ..zero
                    },
                ),
                RInstr::Un { op, a, .. } => (un_fn(op, fast), TArgs { a, ..zero }),
                RInstr::Bin { op, a, b, .. } => (bin_fn(op, fast), TArgs { a, b, ..zero }),
                RInstr::VarBinL { op, idx, b, .. } => (
                    vbl_fn(op, fast),
                    TArgs {
                        a: idx as u16,
                        b,
                        ..zero
                    },
                ),
                RInstr::VarBinR { op, a, idx, .. } => (
                    vbr_fn(op, fast),
                    TArgs {
                        a,
                        b: idx as u16,
                        ..zero
                    },
                ),
                RInstr::ConstBinL { op, c, b, .. } => {
                    (cbl_fn(op, fast), TArgs { b, imm: c, ..zero })
                }
                RInstr::ConstBinR { op, a, c, .. } => {
                    (cbr_fn(op, fast), TArgs { a, imm: c, ..zero })
                }
                RInstr::MulAdd { a, b, c, .. } => (t_mul_add, TArgs { a, b, c, ..zero }),
                RInstr::MulSub { a, b, c, .. } => (t_mul_sub, TArgs { a, b, c, ..zero }),
                RInstr::SubMul { a, b, c, .. } => (t_sub_mul, TArgs { a, b, c, ..zero }),
            };
            thunks.push(Thunk { f, args });
        }
        ThreadedProgram {
            thunks,
            n_regs: prog.n_regs(),
            needs_vars,
            needs_states,
        }
    }

    /// Execute the thunk array over scalar registers. Same contract as
    /// `RegProgram::run_scalar`: `regs` exactly `n_regs` long with
    /// constants pinned (and the prefix window filled, if any).
    #[inline]
    pub(crate) fn run(&self, vars: &[f64], state: &[f64], regs: &mut [f64]) {
        assert_eq!(regs.len(), self.n_regs);
        assert!(vars.len() >= self.needs_vars, "forcing vector too short");
        assert!(state.len() >= self.needs_states, "state vector too short");
        let r = regs.as_mut_ptr();
        let v = vars.as_ptr();
        let s = state.as_ptr();
        for t in &self.thunks {
            // SAFETY: the asserts above plus build-time validation put
            // every thunk access in bounds — see the module-level safety
            // architecture and the shared thunk argument.
            unsafe { (t.f)(&t.args, r, v, s) }
        }
    }
}

impl PartialEq for Thunk {
    fn eq(&self, other: &Self) -> bool {
        // Compare by argument pack and by pointer identity of the thunk
        // fn — sufficient for the derived CompiledSystem comparisons.
        std::ptr::fn_addr_eq(self.f, other.f) && self.args == other.args
    }
}
