//! Fast scalar transcendentals for the relaxed-fidelity SIMD tier.
//!
//! The protected operators in [`crate::eval`] call libm's `exp`/`ln`,
//! which are correctly rounded but cost tens of nanoseconds each and
//! cannot be vectorized. This module provides Cephes-style rational
//! approximations (~1–2 ulp over the protected domains) whose operation
//! sequence is *exactly* mirrored, FMA for FMA, by the `__m256d` kernels
//! in [`crate::simd`] — so a value computed by the scalar fallback of a
//! relaxed-tier program is bit-identical to the same lane of the
//! vectorized sweep, and a trajectory's fidelity does not depend on
//! whether its rows happened to land in a full or a ragged chunk.
//!
//! These functions are **not** bit-identical to libm, which is why every
//! call site is gated behind [`crate::vm::Fidelity::RelaxedSimd`]. They
//! do preserve the *protected* contract shapes: [`fast_exp`] clamps its
//! argument to ±50 like `protected_exp`, [`fast_log`] takes
//! `ln(max(|x|, 1e-12))` like `protected_log`, and [`fast_pow`] composes
//! the two like `protected_pow`. NaN propagates (`NaN in → NaN out`).
//!
//! Accuracy is pinned by tests against libm at a 1e-13 relative bound
//! over the protected domains; the river state envelope (`lint`'s
//! `IntervalEnv::river`) lives many orders of magnitude inside them.

use crate::eval::{DIV_EPS, EXP_CLAMP, LOG_EPS};

/// log2(e), for the range reduction `exp(x) = 2^n · exp(r)`.
pub(crate) const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High/low split of ln(2) (Cephes `C1`/`C2`): `r = x − n·C1 − n·C2`
/// keeps the reduction exact to well below the polynomial error.
pub(crate) const EXP_C1: f64 = 6.931_457_519_531_25e-1;
pub(crate) const EXP_C2: f64 = 1.428_606_820_309_417_2e-6;
/// Cephes `exp` rational coefficients: `exp(r) ≈ 1 + 2·r·P(r²)/(Q(r²) − r·P(r²))`.
pub(crate) const EXP_P: [f64; 3] = [
    1.261_771_930_748_105_9e-4,
    3.029_944_077_074_419_6e-2,
    9.999_999_999_999_999e-1,
];
pub(crate) const EXP_Q: [f64; 4] = [
    3.001_985_051_386_644_6e-6,
    2.524_483_403_496_841e-3,
    2.272_655_482_081_550_3e-1,
    2.000_000_000_000_000_4,
];

/// Cephes `log` rational coefficients over the mantissa m ∈ [√½, √2):
/// `ln(1+z) ≈ z + z³·P(z)/Q(z) − z²/2` with `Q` monic of degree 5.
/// Coefficients are kept digit-for-digit as Cephes publishes them.
#[allow(clippy::excessive_precision)]
pub(crate) const LOG_P: [f64; 6] = [
    1.018_756_638_045_809_3e-4,
    4.974_949_949_767_47e-1,
    4.705_791_198_788_817_5,
    1.449_892_253_416_109_3e1,
    1.793_686_785_078_198_2e1,
    7.708_387_337_558_854,
];
pub(crate) const LOG_Q: [f64; 5] = [
    1.128_735_871_891_674_5e1,
    4.522_791_458_375_322e1,
    8.298_752_669_127_766e1,
    7.115_447_506_185_639e1,
    2.312_516_201_267_653_4e1,
];
/// High/low split of ln(2) used on the exponent contribution.
pub(crate) const LOG_LN2_HI: f64 = 0.693_359_375;
pub(crate) const LOG_LN2_LO: f64 = -2.121_944_400_546_905_8e-4;
pub(crate) const SQRT_HALF: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Fast `protected_exp`: clamp to ±[`EXP_CLAMP`], then a Cephes rational
/// approximation. Mirrors `crate::simd::vexp` operation-for-operation.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    // Same clamp order as the vector kernel: min with +50, max with -50
    // (kept as explicit min/max, not `clamp`, to mirror `vexp` op-for-op).
    #[allow(clippy::manual_clamp)]
    let x = x.min(EXP_CLAMP).max(-EXP_CLAMP);
    // n = ⌊x·log2(e) + ½⌋ — Cephes' half-up rounding, matching
    // `floor(fma(x, LOG2E, 0.5))` in the vector kernel.
    let n = x.mul_add(LOG2E, 0.5).floor();
    // r = x − n·ln2, in two exact pieces.
    let r = n.mul_add(-EXP_C1, x);
    let r = n.mul_add(-EXP_C2, r);
    let rr = r * r;
    let p = EXP_P[0].mul_add(rr, EXP_P[1]).mul_add(rr, EXP_P[2]) * r;
    let q = EXP_Q[0]
        .mul_add(rr, EXP_Q[1])
        .mul_add(rr, EXP_Q[2])
        .mul_add(rr, EXP_Q[3]);
    let e = p / (q - p);
    let y = e.mul_add(2.0, 1.0);
    // 2^n by exponent-field construction; |n| ≤ 73 keeps it normal.
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    y * scale
}

/// Fast `protected_log`: `ln(max(|x|, 1e-12))` via frexp-style reduction
/// and a Cephes rational approximation. Mirrors `crate::simd::vlog`.
#[inline]
pub fn fast_log(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let x = x.abs().max(LOG_EPS);
    if x.is_infinite() {
        return f64::INFINITY;
    }
    // frexp: x = m · 2^e with m ∈ [0.5, 1). x ≥ 1e-12 ⇒ always normal.
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1022;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1022u64 << 52));
    if m < SQRT_HALF {
        e -= 1;
        m = m.mul_add(2.0, -1.0);
    } else {
        m -= 1.0;
    }
    let z = m * m;
    let p = LOG_P[0]
        .mul_add(m, LOG_P[1])
        .mul_add(m, LOG_P[2])
        .mul_add(m, LOG_P[3])
        .mul_add(m, LOG_P[4])
        .mul_add(m, LOG_P[5]);
    let q = (m + LOG_Q[0])
        .mul_add(m, LOG_Q[1])
        .mul_add(m, LOG_Q[2])
        .mul_add(m, LOG_Q[3])
        .mul_add(m, LOG_Q[4]);
    let ef = e as f64;
    let mut y = m * z * (p / q);
    y = ef.mul_add(LOG_LN2_LO, y);
    y = z.mul_add(-0.5, y);
    ef.mul_add(LOG_LN2_HI, m + y)
}

/// Fast `protected_pow`: `fast_exp(y · fast_log(x))`, the same
/// composition `protected_pow` uses over its protected parts.
#[inline]
pub fn fast_pow(x: f64, y: f64) -> f64 {
    fast_exp(y * fast_log(x))
}

/// Fast `protected_div`: same guard as `protected_div` (|y| < 1e-12 → 0)
/// — included for completeness; the quotient itself is IEEE-exact, so
/// this is bit-identical to the protected operator and usable anywhere.
#[inline]
pub fn fast_div(x: f64, y: f64) -> f64 {
    if y.abs() < DIV_EPS {
        0.0
    } else {
        x / y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{protected_exp, protected_log, protected_pow};

    fn rel_err(got: f64, want: f64) -> f64 {
        if got == want {
            return 0.0;
        }
        (got - want).abs() / want.abs().max(1e-300)
    }

    #[test]
    fn fast_exp_tracks_protected_exp() {
        let mut worst = 0.0f64;
        // Sweep the whole protected domain including the clamp edges.
        for i in -6000..=6000 {
            let x = i as f64 * 0.01;
            let (got, want) = (fast_exp(x), protected_exp(x));
            worst = worst.max(rel_err(got, want));
        }
        assert!(worst < 1e-13, "worst rel err {worst:e}");
        assert_eq!(fast_exp(1e9), protected_exp(1e9), "clamp high");
        assert_eq!(fast_exp(-1e9), protected_exp(-1e9), "clamp low");
        assert!(fast_exp(f64::NAN).is_nan());
    }

    #[test]
    fn fast_log_tracks_protected_log() {
        let mut worst = 0.0f64;
        for i in 1..=4000 {
            for x in [i as f64 * 1e-14, i as f64 * 0.01, i as f64 * 1e3] {
                let (got, want) = (fast_log(x), protected_log(x));
                worst = worst.max(rel_err(got, want));
                // Protected: |x| under the floor too.
                let (got, want) = (fast_log(-x), protected_log(-x));
                worst = worst.max(rel_err(got, want));
            }
        }
        assert!(worst < 1e-13, "worst rel err {worst:e}");
        assert_eq!(fast_log(0.0), protected_log(0.0), "eps floor");
        assert_eq!(fast_log(f64::INFINITY), f64::INFINITY);
        assert!(fast_log(f64::NAN).is_nan());
    }

    #[test]
    fn fast_pow_tracks_protected_pow() {
        let mut worst = 0.0f64;
        for x in [1e-9, 0.03, 0.8, 1.0, 2.5, 40.0, 900.0, -3.0] {
            for y in [-3.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.7] {
                let (got, want) = (fast_pow(x, y), protected_pow(x, y));
                worst = worst.max(rel_err(got, want));
            }
        }
        assert!(worst < 1e-12, "worst rel err {worst:e}");
    }
}
