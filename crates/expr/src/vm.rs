//! Optimizing register-VM pipeline — the per-candidate successor to the
//! naive stack VM in [`crate::compile`].
//!
//! The stack VM removes pointer chasing, but every one of a river
//! simulation's ~4700 daily steps still pays one dispatch per tree node,
//! bounds-checked `Vec` push/pop traffic, and — because the two equations
//! of a system share growth/limitation terms by construction of the
//! revision grammar — the same subexpressions evaluated twice per step.
//! This module compiles a *system* of equations through a small optimizing
//! pipeline instead:
//!
//! 1. **Lowering passes.** The equations are hash-consed into one DAG
//!    shared across *all* equations, which performs common-subexpression
//!    elimination for free (structurally identical subtrees intern to the
//!    same node, across equation boundaries). During interning,
//!    fully-constant subtrees fold (parameter values are frozen at compile
//!    time, exactly like the stack VM), and a peephole rewrites the
//!    identities that are sound under protected semantics: `x*1 → x`,
//!    `x+0 → x`, `x-0 → x`, `0-x → -x`, `x/1 → x`, `--x → x`,
//!    `min(x,x) → x`, `max(x,x) → x`, and `pow(x,1) → exp(log(x))`. The
//!    last one deserves a note: `protected_pow(x, 1)` is *defined* as
//!    `protected_exp(1 · protected_log(x))`, so the textbook `x^1 → x`
//!    would change values (`exp(ln(max(|x|,ε)))` is not `x`); the rewrite
//!    we apply drops only the exactly-neutral `1 ·` factor. `x*0 → 0` and
//!    `x-x → 0` are deliberately absent (wrong for NaN/∞ operands).
//!
//! 2. **Register code generation.** DAG nodes are scheduled in demand
//!    order (postorder over the roots) into three-address code over a
//!    fixed register file sized at compile time — no push/pop. Constants
//!    live in *pinned* registers written once per scratch buffer, so the
//!    steady state of the inner loop never dispatches a "push literal". A
//!    fusion peephole collapses common pairs into superinstructions —
//!    `VarBin{L,R}` (forcing-variable load folded into a binary op),
//!    `ConstBin{L,R}` (binary op with an inline immediate) and `MulAdd` —
//!    cutting dispatch count. A linear-scan allocator with a LIFO free
//!    list then compacts the SSA temporaries into a small reusable file.
//!
//! 3. **State-independent split.** Each equation is partitioned into a
//!    *prefix* (maximal subexpressions depending only on forcing variables
//!    and constants — e.g. the entire light/nutrient/temperature
//!    productivity factor of the expert model) and a state-dependent
//!    *core*. The prefix is evaluated **once per candidate** as a columnar
//!    sweep over the forcing rows, [`LANES`] rows per dispatch over
//!    structure-of-arrays lane registers, so its dispatch cost is
//!    amortized `LANES`-fold and the per-lane loops auto-vectorize; the
//!    sequential Euler recurrence executes only the core, reading the
//!    precomputed prefix values through a pinned register window. The
//!    sweep is chunked and computed on demand, so a short-circuited
//!    evaluation (paper Alg. 1) never pays for rows it does not visit.
//!
//! The hard invariant, shared with the stack VM and property-tested in
//! `tests/properties.rs`: every pipeline configuration produces values
//! `==`-equal (NaN tolerated as equal) to the tree-walking interpreter on
//! every input. All rewrites are chosen to be exact under the *protected*
//! operator semantics of [`crate::eval`]; the only tolerated differences
//! are the sign of a zero (`0-x → -x` on `x = +0`) and NaN payloads,
//! neither of which is observable through `==`, through any protected
//! operator, or through the squared-error fitness pipeline.

use crate::ast::{BinOp, Expr, UnOp};
use crate::compile::{check_arity, CompileError};
use crate::eval::{
    apply_bin, apply_un, protected_div, protected_exp, protected_log, protected_pow, EvalContext,
};
use crate::fastmath::{fast_exp, fast_log, fast_pow};
use crate::fusion::FusionTable;
use crate::threaded::ThreadedProgram;
use std::collections::HashMap;

/// Rows evaluated per dispatch in the columnar prefix sweep. 32 keeps the
/// lane register file L1-resident for realistic programs (a 50-register
/// prefix occupies 12.5 KiB of lanes) while amortizing dispatch 32-fold,
/// and it matches the engine's default short-circuit check interval, so an
/// aborted candidate sweeps no further than its last fitness checkpoint.
pub const LANES: usize = 32;

/// How the sequential programs of a compiled system execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Match-per-instruction interpreter loop (`run_scalar`).
    Match,
    /// Threaded code: each instruction pre-resolved at compile time into a
    /// monomorphized thunk, so the steady-state inner loop is one indirect
    /// call per instruction with no operator dispatch. Bit-exact.
    Threaded,
    /// Threaded code with relaxed-fidelity fast transcendentals
    /// ([`crate::fastmath`]) plus vectorized lane kernels
    /// ([`crate::simd`]) where the hardware supports them. Degrades to
    /// exactly [`Exec::Threaded`] semantics when the `simd` cargo feature
    /// is off or the CPU lacks AVX2+FMA.
    Simd,
}

/// Which optimization stages to run. The lowering passes (folding, the
/// algebraic peephole, cross-equation CSE) are always on; the knobs select
/// the VM tiers that `bench_vm` compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// Emit fused superinstructions (`VarBin`, `ConstBin`, `MulAdd`,
    /// `MulSub`, `SubMul`), as permitted by `table`.
    pub fuse: bool,
    /// Split out the state-independent prefix for the columnar sweep.
    pub split: bool,
    /// Which superinstruction patterns the fuser may emit (ignored when
    /// `fuse` is off). Defaults to the corpus-selected table
    /// ([`crate::fusion_gen::SELECTED`]).
    pub table: FusionTable,
    /// Execution backend for the sequential core (and scalar prefix).
    pub exec: Exec,
}

impl OptOptions {
    /// Plain register VM: lowering passes only, one op per instruction.
    pub fn register() -> OptOptions {
        OptOptions {
            fuse: false,
            split: false,
            table: FusionTable::NONE,
            exec: Exec::Match,
        }
    }

    /// Register VM plus fused superinstructions.
    pub fn fused() -> OptOptions {
        OptOptions {
            fuse: true,
            split: false,
            table: FusionTable::default(),
            exec: Exec::Match,
        }
    }

    /// The full match-dispatch pipeline: fusion and the state-independent
    /// split (the `split` tier).
    pub fn full() -> OptOptions {
        OptOptions {
            fuse: true,
            split: true,
            table: FusionTable::default(),
            exec: Exec::Match,
        }
    }

    /// The full pipeline compiled to threaded code (bit-exact).
    pub fn threaded() -> OptOptions {
        OptOptions {
            exec: Exec::Threaded,
            ..OptOptions::full()
        }
    }

    /// The full pipeline with relaxed-fidelity SIMD kernels where
    /// available (see [`Exec::Simd`] for the fallback behaviour).
    pub fn simd() -> OptOptions {
        OptOptions {
            exec: Exec::Simd,
            ..OptOptions::full()
        }
    }
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions::full()
    }
}

/// The named VM tiers compared by `bench_vm` and selectable with the
/// `--tier` flags across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Lowering passes only, one op per instruction.
    Register,
    /// Register VM plus fused superinstructions.
    Fused,
    /// Fusion plus the state-independent split (historically `full`).
    Split,
    /// Split pipeline compiled to threaded code. Bit-exact.
    Threaded,
    /// Threaded code plus relaxed-fidelity SIMD kernels where available.
    Simd,
}

impl Tier {
    /// Every tier, slowest first — the order bench tables print in.
    pub const ALL: [Tier; 5] = [
        Tier::Register,
        Tier::Fused,
        Tier::Split,
        Tier::Threaded,
        Tier::Simd,
    ];

    /// Canonical name (accepted by [`parse`](Self::parse)).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Register => "register",
            Tier::Fused => "fused",
            Tier::Split => "split",
            Tier::Threaded => "threaded",
            Tier::Simd => "simd",
        }
    }

    /// Parse a tier name; `"full"` is accepted as the historical alias of
    /// the split tier.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "register" => Some(Tier::Register),
            "fused" => Some(Tier::Fused),
            "split" | "full" => Some(Tier::Split),
            "threaded" => Some(Tier::Threaded),
            "simd" => Some(Tier::Simd),
            _ => None,
        }
    }

    /// The pipeline options that compile this tier.
    pub fn options(self) -> OptOptions {
        match self {
            Tier::Register => OptOptions::register(),
            Tier::Fused => OptOptions::fused(),
            Tier::Split => OptOptions::full(),
            Tier::Threaded => OptOptions::threaded(),
            Tier::Simd => OptOptions::simd(),
        }
    }

    /// The fidelity this tier delivers **on this machine right now**: the
    /// `simd` tier is relaxed only when its vector kernels are actually
    /// live (feature compiled in and AVX2+FMA detected); in the fallback
    /// it is bit-exact threaded code.
    pub fn fidelity(self) -> Fidelity {
        if self == Tier::Simd && crate::simd::active() {
            Fidelity::RelaxedSimd
        } else {
            Fidelity::BitExact
        }
    }

    /// The fastest tier whose fidelity `policy` admits. Property-tested
    /// and bench-gated: `threaded` is the fastest bit-exact tier, `simd`
    /// the fastest overall where its kernels are live.
    pub fn fastest(policy: FidelityPolicy) -> Tier {
        match policy {
            FidelityPolicy::AllowRelaxed if crate::simd::active() => Tier::Simd,
            _ => Tier::Threaded,
        }
    }
}

/// Numerical fidelity of a compiled artifact's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Values are `==`-identical to the tree-walking interpreter on every
    /// input (NaN tolerated as equal) — the contract every tier except a
    /// live `simd` tier satisfies.
    BitExact,
    /// Transcendentals (`exp`, `log`, `pow`) use the fast rational
    /// approximations (~1e-13 relative error over the protected domains);
    /// all other operators remain bit-exact.
    RelaxedSimd,
}

impl Fidelity {
    /// Stable string used in `/models` JSON and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::BitExact => "bit-exact",
            Fidelity::RelaxedSimd => "relaxed-simd",
        }
    }
}

/// What fidelity a consumer of compiled artifacts is willing to accept.
/// The serving registry refuses to load a relaxed artifact under the
/// default [`BitExact`](FidelityPolicy::BitExact) policy, and `bench_vm
/// --validate` checks relaxed tiers against a tolerance instead of
/// bit-equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FidelityPolicy {
    /// Only bit-exact execution is acceptable.
    #[default]
    BitExact,
    /// Relaxed-fidelity execution is acceptable where it is faster.
    AllowRelaxed,
}

impl FidelityPolicy {
    /// Stable string used by `--fidelity` flags.
    pub fn name(self) -> &'static str {
        match self {
            FidelityPolicy::BitExact => "bit-exact",
            FidelityPolicy::AllowRelaxed => "allow-relaxed",
        }
    }

    /// Parse a `--fidelity` flag value.
    pub fn parse(s: &str) -> Option<FidelityPolicy> {
        match s {
            "bit-exact" => Some(FidelityPolicy::BitExact),
            "allow-relaxed" => Some(FidelityPolicy::AllowRelaxed),
            _ => None,
        }
    }

    /// Does this policy admit an artifact of fidelity `f`?
    pub fn allows(self, f: Fidelity) -> bool {
        self == FidelityPolicy::AllowRelaxed || f == Fidelity::BitExact
    }
}

/// One register-VM instruction. `dst`/`a`/`b`/`c` index the register file;
/// `idx` indexes the forcing (`vars`) or state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RInstr {
    /// `r[dst] = vars[idx]`
    LoadVar { dst: u16, idx: u8 },
    /// `r[dst] = state[idx]`
    LoadState { dst: u16, idx: u8 },
    /// `r[dst] = un(op, r[a])`
    Un { op: UnOp, dst: u16, a: u16 },
    /// `r[dst] = bin(op, r[a], r[b])`
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// Fused: `r[dst] = bin(op, vars[idx], r[b])`
    VarBinL {
        op: BinOp,
        dst: u16,
        idx: u8,
        b: u16,
    },
    /// Fused: `r[dst] = bin(op, r[a], vars[idx])`
    VarBinR {
        op: BinOp,
        dst: u16,
        a: u16,
        idx: u8,
    },
    /// Fused: `r[dst] = bin(op, c, r[b])` with an inline immediate.
    ConstBinL { op: BinOp, dst: u16, c: f64, b: u16 },
    /// Fused: `r[dst] = bin(op, r[a], c)` with an inline immediate.
    ConstBinR { op: BinOp, dst: u16, a: u16, c: f64 },
    /// Fused: `r[dst] = r[a] * r[b] + r[c]`, multiply and add rounded
    /// separately (NOT an FMA — equivalence with the interpreter forbids
    /// contracting the intermediate rounding).
    MulAdd { dst: u16, a: u16, b: u16, c: u16 },
    /// Fused: `r[dst] = r[a] * r[b] - r[c]`, two roundings like `MulAdd`.
    MulSub { dst: u16, a: u16, b: u16, c: u16 },
    /// Fused: `r[dst] = r[a] - r[b] * r[c]`, two roundings like `MulAdd`.
    SubMul { dst: u16, a: u16, b: u16, c: u16 },
}

impl RInstr {
    fn set_dst(&mut self, r: u16) {
        match self {
            RInstr::LoadVar { dst, .. }
            | RInstr::LoadState { dst, .. }
            | RInstr::Un { dst, .. }
            | RInstr::Bin { dst, .. }
            | RInstr::VarBinL { dst, .. }
            | RInstr::VarBinR { dst, .. }
            | RInstr::ConstBinL { dst, .. }
            | RInstr::ConstBinR { dst, .. }
            | RInstr::MulAdd { dst, .. }
            | RInstr::MulSub { dst, .. }
            | RInstr::SubMul { dst, .. } => *dst = r,
        }
    }

    /// The destination register this instruction writes.
    pub fn dst(&self) -> u16 {
        match *self {
            RInstr::LoadVar { dst, .. }
            | RInstr::LoadState { dst, .. }
            | RInstr::Un { dst, .. }
            | RInstr::Bin { dst, .. }
            | RInstr::VarBinL { dst, .. }
            | RInstr::VarBinR { dst, .. }
            | RInstr::ConstBinL { dst, .. }
            | RInstr::ConstBinR { dst, .. }
            | RInstr::MulAdd { dst, .. }
            | RInstr::MulSub { dst, .. }
            | RInstr::SubMul { dst, .. } => dst,
        }
    }

    /// Visit every register this instruction *reads* (not the destination,
    /// not the forcing/state indices). The visit order matches operand
    /// order, so analyses over it are deterministic.
    pub fn reads(&self, mut f: impl FnMut(u16)) {
        match *self {
            RInstr::LoadVar { .. } | RInstr::LoadState { .. } => {}
            RInstr::Un { a, .. } | RInstr::VarBinR { a, .. } | RInstr::ConstBinR { a, .. } => f(a),
            RInstr::VarBinL { b, .. } | RInstr::ConstBinL { b, .. } => f(b),
            RInstr::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            RInstr::MulAdd { a, b, c, .. }
            | RInstr::MulSub { a, b, c, .. }
            | RInstr::SubMul { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
        }
    }

    /// The forcing-variable (`vars`) index this instruction reads, if any.
    pub fn var_index(&self) -> Option<u8> {
        match *self {
            RInstr::LoadVar { idx, .. }
            | RInstr::VarBinL { idx, .. }
            | RInstr::VarBinR { idx, .. } => Some(idx),
            _ => None,
        }
    }

    /// The state-vector index this instruction reads, if any.
    pub fn state_index(&self) -> Option<u8> {
        match *self {
            RInstr::LoadState { idx, .. } => Some(idx),
            _ => None,
        }
    }
}

/// A linear register program. Register-file layout:
///
/// ```text
/// [0 .. nc)              pinned constants, written once per scratch buffer
/// [nc .. nc + n_pre)     pinned prefix-row window (core programs only)
/// [nc + n_pre .. n_regs) temporaries, reused via linear-scan allocation
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegProgram {
    code: Vec<RInstr>,
    /// Values of the pinned constant registers `[0 .. consts.len())`.
    consts: Vec<f64>,
    /// Width of the pinned prefix-row window.
    n_pre: u16,
    /// Total register-file size (pinned + temporaries).
    n_regs: u16,
    /// Registers holding the program's outputs after a run (may point into
    /// the pinned region when an output folded to a constant or lives in
    /// the prefix window).
    outputs: Vec<u16>,
    /// Minimum `vars` slice length any instruction reads.
    needs_vars: usize,
    /// Minimum `state` slice length any instruction reads.
    needs_states: usize,
}

impl RegProgram {
    fn empty() -> RegProgram {
        RegProgram {
            code: Vec::new(),
            consts: Vec::new(),
            n_pre: 0,
            n_regs: 0,
            outputs: Vec::new(),
            needs_vars: 0,
            needs_states: 0,
        }
    }

    /// Number of instructions (= dispatches per run).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Register-file size.
    pub fn n_regs(&self) -> usize {
        self.n_regs as usize
    }

    /// Raw instruction stream (tests and the bench harness).
    pub fn instructions(&self) -> &[RInstr] {
        &self.code
    }

    /// Values of the pinned constant registers `[0 .. consts.len())`.
    pub fn consts(&self) -> &[f64] {
        &self.consts
    }

    /// Width of the pinned prefix-row window (`[consts.len() ..
    /// consts.len() + n_pre)`); non-zero only for core programs of a
    /// split-tier system.
    pub fn n_pre(&self) -> usize {
        self.n_pre as usize
    }

    /// Registers holding the program's outputs after a run.
    pub fn outputs(&self) -> &[u16] {
        &self.outputs
    }

    /// Minimum `vars` slice length any instruction reads.
    pub fn needs_vars(&self) -> usize {
        self.needs_vars
    }

    /// Minimum `state` slice length any instruction reads.
    pub fn needs_states(&self) -> usize {
        self.needs_states
    }

    /// Check every register operand against the file size — the machine
    /// argument behind the unchecked register accesses in the interpreters
    /// below: once this passes, every access is in bounds for any scratch
    /// buffer of `n_regs` (or `n_regs * LANES`) length. Returns the first
    /// violation as an error string; [`validate`](Self::validate) panics on
    /// it at construction time, and `lint::absint` re-proves the same facts
    /// independently over the public accessors.
    pub fn check(&self) -> Result<(), String> {
        let n = self.n_regs;
        let base = self.consts.len() as u16 + self.n_pre;
        let ck = |r: u16| {
            if r < n {
                Ok(())
            } else {
                Err(format!("register {r} out of file of {n}"))
            }
        };
        let ckd = |r: u16| {
            ck(r)?;
            if r >= base {
                Ok(())
            } else {
                Err(format!(
                    "write into pinned register {r} (pinned base {base})"
                ))
            }
        };
        for (i, ins) in self.code.iter().enumerate() {
            ckd(ins.dst()).map_err(|e| format!("instruction {i}: {e}"))?;
            let mut err = None;
            ins.reads(|r| {
                if err.is_none() {
                    err = ck(r).err();
                }
            });
            if let Some(e) = err {
                return Err(format!("instruction {i}: {e}"));
            }
        }
        for &o in &self.outputs {
            ck(o).map_err(|e| format!("output {e}"))?;
        }
        Ok(())
    }

    /// Panicking [`check`](Self::check), run once at construction.
    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid register program: {e}");
        }
    }

    /// Indices of instructions whose destination is never observed — not
    /// read by a later instruction before being overwritten, and not an
    /// output register at program end. Computed by a backward liveness
    /// sweep over the register file; the emitter and fusion passes should
    /// never produce such code, and [`allocate`] runs
    /// [`eliminate_dead`](Self::eliminate_dead) so a finished program has
    /// none — `lint::absint` independently verifies that.
    pub fn dead_instructions(&self) -> Vec<usize> {
        let mut live = vec![false; self.n_regs as usize];
        for &o in &self.outputs {
            if let Some(slot) = live.get_mut(o as usize) {
                *slot = true;
            }
        }
        let mut dead = Vec::new();
        for (i, ins) in self.code.iter().enumerate().rev() {
            let dst = ins.dst() as usize;
            if dst < live.len() && live[dst] {
                live[dst] = false; // killed by this write
                ins.reads(|r| {
                    if let Some(slot) = live.get_mut(r as usize) {
                        *slot = true;
                    }
                });
            } else {
                dead.push(i);
            }
        }
        dead.reverse();
        dead
    }

    /// Remove every dead instruction (see
    /// [`dead_instructions`](Self::dead_instructions)); returns how many
    /// were removed. Register assignments stay valid: deleting a write
    /// nobody observes cannot change any observed register value.
    fn eliminate_dead(&mut self) -> usize {
        let dead = self.dead_instructions();
        if dead.is_empty() {
            return 0;
        }
        let mut keep = vec![true; self.code.len()];
        for &i in &dead {
            keep[i] = false;
        }
        let mut it = keep.iter();
        self.code.retain(|_| *it.next().expect("keep mask length"));
        dead.len()
    }

    /// Construct a program directly from its parts, **bypassing**
    /// [`check`](Self::check). Exists so static-analysis tests can build
    /// deliberately corrupted programs (out-of-bounds registers, state
    /// loads in a prefix) and prove the analyzer refuses them. Running a
    /// program that fails `check()` through the interpreters is undefined
    /// behaviour — never run one, only analyze it.
    #[doc(hidden)]
    pub fn from_raw_unchecked(
        code: Vec<RInstr>,
        consts: Vec<f64>,
        n_pre: u16,
        n_regs: u16,
        outputs: Vec<u16>,
        needs_vars: usize,
        needs_states: usize,
    ) -> RegProgram {
        RegProgram {
            code,
            consts,
            n_pre,
            n_regs,
            outputs,
            needs_vars,
            needs_states,
        }
    }

    /// Write the pinned constants into a scalar register file.
    pub(crate) fn init_consts(&self, regs: &mut [f64]) {
        regs[..self.consts.len()].copy_from_slice(&self.consts);
    }

    /// Broadcast the pinned constants into a lane register file.
    fn init_consts_lanes(&self, regs: &mut [f64]) {
        for (k, &c) in self.consts.iter().enumerate() {
            regs[k * LANES..(k + 1) * LANES].fill(c);
        }
    }

    /// Run over scalar registers. `regs` must be exactly `n_regs` long
    /// with constants pinned by [`init_consts`](Self::init_consts) and the
    /// prefix window (if any) holding the current row's prefix values.
    #[inline]
    fn run_scalar(&self, vars: &[f64], state: &[f64], regs: &mut [f64]) {
        assert_eq!(regs.len(), self.n_regs as usize);
        debug_assert!(vars.len() >= self.needs_vars);
        debug_assert!(state.len() >= self.needs_states);
        // SAFETY for every register `get_unchecked` below: `validate()`
        // proved each register operand < n_regs at construction time, and
        // the assert above pins `regs.len() == n_regs`. The `vars`/`state`
        // accesses stay bounds-checked (they are caller data, and tiny).
        for ins in &self.code {
            unsafe {
                match *ins {
                    RInstr::LoadVar { dst, idx } => {
                        *regs.get_unchecked_mut(dst as usize) = vars[idx as usize];
                    }
                    RInstr::LoadState { dst, idx } => {
                        *regs.get_unchecked_mut(dst as usize) = state[idx as usize];
                    }
                    RInstr::Un { op, dst, a } => {
                        let av = *regs.get_unchecked(a as usize);
                        *regs.get_unchecked_mut(dst as usize) = apply_un(op, av);
                    }
                    RInstr::Bin { op, dst, a, b } => {
                        let av = *regs.get_unchecked(a as usize);
                        let bv = *regs.get_unchecked(b as usize);
                        *regs.get_unchecked_mut(dst as usize) = apply_bin(op, av, bv);
                    }
                    RInstr::VarBinL { op, dst, idx, b } => {
                        let bv = *regs.get_unchecked(b as usize);
                        *regs.get_unchecked_mut(dst as usize) =
                            apply_bin(op, vars[idx as usize], bv);
                    }
                    RInstr::VarBinR { op, dst, a, idx } => {
                        let av = *regs.get_unchecked(a as usize);
                        *regs.get_unchecked_mut(dst as usize) =
                            apply_bin(op, av, vars[idx as usize]);
                    }
                    RInstr::ConstBinL { op, dst, c, b } => {
                        let bv = *regs.get_unchecked(b as usize);
                        *regs.get_unchecked_mut(dst as usize) = apply_bin(op, c, bv);
                    }
                    RInstr::ConstBinR { op, dst, a, c } => {
                        let av = *regs.get_unchecked(a as usize);
                        *regs.get_unchecked_mut(dst as usize) = apply_bin(op, av, c);
                    }
                    RInstr::MulAdd { dst, a, b, c } => {
                        let av = *regs.get_unchecked(a as usize);
                        let bv = *regs.get_unchecked(b as usize);
                        let cv = *regs.get_unchecked(c as usize);
                        // Two roundings on purpose; see `RInstr::MulAdd`.
                        *regs.get_unchecked_mut(dst as usize) = av * bv + cv;
                    }
                    RInstr::MulSub { dst, a, b, c } => {
                        let av = *regs.get_unchecked(a as usize);
                        let bv = *regs.get_unchecked(b as usize);
                        let cv = *regs.get_unchecked(c as usize);
                        // Two roundings on purpose; see `RInstr::MulAdd`.
                        *regs.get_unchecked_mut(dst as usize) = av * bv - cv;
                    }
                    RInstr::SubMul { dst, a, b, c } => {
                        let av = *regs.get_unchecked(a as usize);
                        let bv = *regs.get_unchecked(b as usize);
                        let cv = *regs.get_unchecked(c as usize);
                        // Two roundings on purpose; see `RInstr::MulAdd`.
                        *regs.get_unchecked_mut(dst as usize) = av - bv * cv;
                    }
                }
            }
        }
    }

    /// Run columnar over `m <= LANES` consecutive forcing rows starting at
    /// `base`. Each register is a `[f64; LANES]` stripe in the flat `regs`
    /// buffer; one dispatch covers all `m` lanes and the per-lane loops are
    /// plain indexed f64 kernels with the operator matched *outside* the
    /// loop, so the compiler can auto-vectorize them. State loads are
    /// impossible here by construction (the prefix is state-independent).
    fn run_lanes<R: AsRef<[f64]>>(
        &self,
        rows: &[R],
        base: usize,
        m: usize,
        regs: &mut [f64],
        fast: bool,
    ) {
        assert_eq!(regs.len(), self.n_regs as usize * LANES);
        assert!(m <= LANES && base + m <= rows.len());
        // Register stripes are `[r*LANES .. r*LANES+m)` with `r < n_regs`
        // (validated at construction) and `m <= LANES`, so every lane index
        // is `< n_regs * LANES == regs.len()` — the shared argument of the
        // `k_*`/`l_*` kernels below. Row accesses stay bounds-checked.
        let off = |r: u16| r as usize * LANES;
        for ins in &self.code {
            match *ins {
                RInstr::LoadVar { dst, idx } => {
                    let d = off(dst);
                    for l in 0..m {
                        regs[d + l] = rows[base + l].as_ref()[idx as usize];
                    }
                }
                RInstr::LoadState { .. } => {
                    unreachable!("state load in a state-independent prefix")
                }
                RInstr::Un { op, dst, a } => {
                    l_un(op, fast, regs, off(dst), off(a), m);
                }
                RInstr::Bin { op, dst, a, b } => {
                    l_bin(op, fast, regs, off(dst), off(a), off(b), m);
                }
                RInstr::VarBinL { op, dst, idx, b } => {
                    // The variable operand differs per lane here (lanes
                    // are consecutive rows), so no broadcast kernel
                    // applies; gather it into a stack stripe and let the
                    // dispatcher pick the gathered-operand vector kernel
                    // (pow/div) or the scalar loop.
                    let mut v = [0.0; LANES];
                    for (l, slot) in v[..m].iter_mut().enumerate() {
                        *slot = rows[base + l].as_ref()[idx as usize];
                    }
                    l_bin_vl(op, fast, regs, off(dst), &v, off(b), m);
                }
                RInstr::VarBinR { op, dst, a, idx } => {
                    let mut v = [0.0; LANES];
                    for (l, slot) in v[..m].iter_mut().enumerate() {
                        *slot = rows[base + l].as_ref()[idx as usize];
                    }
                    l_bin_vr(op, fast, regs, off(dst), off(a), &v, m);
                }
                RInstr::ConstBinL { op, dst, c, b } => {
                    l_bin_cl(op, fast, regs, off(dst), c, off(b), m);
                }
                RInstr::ConstBinR { op, dst, a, c } => {
                    l_bin_cr(op, fast, regs, off(dst), off(a), c, m);
                }
                RInstr::MulAdd { dst, a, b, c } => {
                    l_fused3(F3::MulAdd, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::MulSub { dst, a, b, c } => {
                    l_fused3(F3::MulSub, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::SubMul { dst, a, b, c } => {
                    l_fused3(F3::SubMul, regs, off(dst), off(a), off(b), off(c), m);
                }
            }
        }
    }

    /// Run `m <= LANES` *trajectories* through one step sharing a single
    /// forcing row. The dual of [`run_lanes`](Self::run_lanes): there the
    /// lanes are consecutive rows of one trajectory (so state loads are
    /// forbidden); here every lane reads the *same* `vars` row but its own
    /// state vector (`states[l * state_stride + idx]`, lane-major), which
    /// is what lets a batching server amortize instruction dispatch across
    /// concurrent simulations of one model. Per-lane arithmetic is the
    /// same scalar protected-op sequence as [`run_scalar`]
    /// (Self::run_scalar), so each lane's outputs are bit-identical to a
    /// solo scalar evaluation.
    pub(crate) fn run_lanes_one_row(
        &self,
        vars: &[f64],
        states: &[f64],
        state_stride: usize,
        m: usize,
        regs: &mut [f64],
        fast: bool,
    ) {
        assert_eq!(regs.len(), self.n_regs as usize * LANES);
        assert!(m <= LANES && states.len() >= m * state_stride);
        assert!(state_stride >= self.needs_states);
        debug_assert!(vars.len() >= self.needs_vars);
        // Same stripe-bounds argument as `run_lanes`: stripes are
        // `[r*LANES .. r*LANES+m)` with `r < n_regs` proved by `validate()`
        // and `m <= LANES` asserted above. `vars`/`states` accesses stay
        // bounds-checked.
        let off = |r: u16| r as usize * LANES;
        for ins in &self.code {
            match *ins {
                RInstr::LoadVar { dst, idx } => {
                    let d = off(dst);
                    regs[d..d + m].fill(vars[idx as usize]);
                }
                RInstr::LoadState { dst, idx } => {
                    let d = off(dst);
                    for l in 0..m {
                        regs[d + l] = states[l * state_stride + idx as usize];
                    }
                }
                RInstr::Un { op, dst, a } => {
                    l_un(op, fast, regs, off(dst), off(a), m);
                }
                RInstr::Bin { op, dst, a, b } => {
                    l_bin(op, fast, regs, off(dst), off(a), off(b), m);
                }
                RInstr::VarBinL { op, dst, idx, b } => {
                    // One shared row: the variable operand is a broadcast
                    // constant for every lane.
                    l_bin_cl(op, fast, regs, off(dst), vars[idx as usize], off(b), m);
                }
                RInstr::VarBinR { op, dst, a, idx } => {
                    l_bin_cr(op, fast, regs, off(dst), off(a), vars[idx as usize], m);
                }
                RInstr::ConstBinL { op, dst, c, b } => {
                    l_bin_cl(op, fast, regs, off(dst), c, off(b), m);
                }
                RInstr::ConstBinR { op, dst, a, c } => {
                    l_bin_cr(op, fast, regs, off(dst), off(a), c, m);
                }
                RInstr::MulAdd { dst, a, b, c } => {
                    l_fused3(F3::MulAdd, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::MulSub { dst, a, b, c } => {
                    l_fused3(F3::MulSub, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::SubMul { dst, a, b, c } => {
                    l_fused3(F3::SubMul, regs, off(dst), off(a), off(b), off(c), m);
                }
            }
        }
    }

    /// Run `m <= LANES` *trajectories* through one step where every lane
    /// has its own forcing row *and* its own state vector — the ensemble
    /// shape: lane `l` reads `rows[l]` (one variant's forcing at a fixed
    /// step) and `states[l * state_stride ..]`. Completes the trio with
    /// [`run_lanes`](Self::run_lanes) (per-lane rows, no state) and
    /// [`run_lanes_one_row`](Self::run_lanes_one_row) (shared row,
    /// per-lane state). Per-lane arithmetic goes through the same lane
    /// kernels as both, so each lane's outputs are bit-identical to a solo
    /// scalar evaluation over that lane's forcing table.
    pub(crate) fn run_lanes_rows(
        &self,
        rows: &[&[f64]],
        states: &[f64],
        state_stride: usize,
        m: usize,
        regs: &mut [f64],
        fast: bool,
    ) {
        assert_eq!(regs.len(), self.n_regs as usize * LANES);
        assert!(m <= LANES && rows.len() >= m && states.len() >= m * state_stride);
        assert!(state_stride >= self.needs_states);
        debug_assert!(rows.iter().take(m).all(|r| r.len() >= self.needs_vars));
        // Same stripe-bounds argument as `run_lanes`: stripes are
        // `[r*LANES .. r*LANES+m)` with `r < n_regs` proved by `validate()`
        // and `m <= LANES` asserted above. `rows`/`states` accesses stay
        // bounds-checked.
        let off = |r: u16| r as usize * LANES;
        for ins in &self.code {
            match *ins {
                RInstr::LoadVar { dst, idx } => {
                    let d = off(dst);
                    for l in 0..m {
                        regs[d + l] = rows[l][idx as usize];
                    }
                }
                RInstr::LoadState { dst, idx } => {
                    let d = off(dst);
                    for l in 0..m {
                        regs[d + l] = states[l * state_stride + idx as usize];
                    }
                }
                RInstr::Un { op, dst, a } => {
                    l_un(op, fast, regs, off(dst), off(a), m);
                }
                RInstr::Bin { op, dst, a, b } => {
                    l_bin(op, fast, regs, off(dst), off(a), off(b), m);
                }
                RInstr::VarBinL { op, dst, idx, b } => {
                    // The variable operand differs per lane (each lane is
                    // its own forcing table): gather into a stack stripe,
                    // exactly as `run_lanes` does.
                    let mut v = [0.0; LANES];
                    for (l, slot) in v[..m].iter_mut().enumerate() {
                        *slot = rows[l][idx as usize];
                    }
                    l_bin_vl(op, fast, regs, off(dst), &v, off(b), m);
                }
                RInstr::VarBinR { op, dst, a, idx } => {
                    let mut v = [0.0; LANES];
                    for (l, slot) in v[..m].iter_mut().enumerate() {
                        *slot = rows[l][idx as usize];
                    }
                    l_bin_vr(op, fast, regs, off(dst), off(a), &v, m);
                }
                RInstr::ConstBinL { op, dst, c, b } => {
                    l_bin_cl(op, fast, regs, off(dst), c, off(b), m);
                }
                RInstr::ConstBinR { op, dst, a, c } => {
                    l_bin_cr(op, fast, regs, off(dst), off(a), c, m);
                }
                RInstr::MulAdd { dst, a, b, c } => {
                    l_fused3(F3::MulAdd, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::MulSub { dst, a, b, c } => {
                    l_fused3(F3::MulSub, regs, off(dst), off(a), off(b), off(c), m);
                }
                RInstr::SubMul { dst, a, b, c } => {
                    l_fused3(F3::SubMul, regs, off(dst), off(a), off(b), off(c), m);
                }
            }
        }
    }
}

// Per-lane interpreter kernels shared by `run_lanes` (rows-as-lanes) and
// `run_lanes_one_row` (trajectories-as-lanes). The operator closure is
// resolved *outside* the lane loop so the loop body is a plain indexed f64
// kernel the compiler can auto-vectorize.
//
// SAFETY (all four): callers pass stripe offsets `r as usize * LANES` for
// registers proved `< n_regs` by `RegProgram::validate()`, and `m <= LANES`,
// against a buffer asserted to be exactly `n_regs * LANES` long — so every
// `offset + l` is in bounds.
#[inline(always)]
fn k_un(f: impl Fn(f64) -> f64, regs: &mut [f64], d: usize, a: usize, m: usize) {
    for l in 0..m {
        // SAFETY: see the shared argument above.
        unsafe {
            let av = *regs.get_unchecked(a + l);
            *regs.get_unchecked_mut(d + l) = f(av);
        }
    }
}

#[inline(always)]
fn k_bin(f: impl Fn(f64, f64) -> f64, regs: &mut [f64], d: usize, a: usize, b: usize, m: usize) {
    for l in 0..m {
        // SAFETY: see the shared argument above.
        unsafe {
            let av = *regs.get_unchecked(a + l);
            let bv = *regs.get_unchecked(b + l);
            *regs.get_unchecked_mut(d + l) = f(av, bv);
        }
    }
}

#[inline(always)]
fn k_bin_cl(f: impl Fn(f64, f64) -> f64, regs: &mut [f64], d: usize, c: f64, b: usize, m: usize) {
    for l in 0..m {
        // SAFETY: see the shared argument above.
        unsafe {
            let bv = *regs.get_unchecked(b + l);
            *regs.get_unchecked_mut(d + l) = f(c, bv);
        }
    }
}

#[inline(always)]
fn k_bin_cr(f: impl Fn(f64, f64) -> f64, regs: &mut [f64], d: usize, a: usize, c: f64, m: usize) {
    for l in 0..m {
        // SAFETY: see the shared argument above.
        unsafe {
            let av = *regs.get_unchecked(a + l);
            *regs.get_unchecked_mut(d + l) = f(av, c);
        }
    }
}

/// The three-operand fused shapes (all two separate roundings, never FMA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum F3 {
    /// `a*b + c`
    MulAdd,
    /// `a*b - c`
    MulSub,
    /// `a - b*c`
    SubMul,
}

// Lane-kernel dispatchers: resolve `(op, fast)` to the right kernel once
// per instruction, outside the lane loop. On a full stripe (`m == LANES`)
// with live SIMD support these call the `__m256d` kernels in
// `crate::simd`; otherwise (ragged tail, feature off, no AVX2+FMA) the
// scalar `k_*` kernels run. Fast transcendentals are chosen only when
// `fast` (the relaxed `simd` tier); both paths compute bit-identical
// per-lane values, so chunk alignment never changes a trajectory.
//
// SAFETY (the `unsafe` blocks below): `crate::simd::active()` verified
// AVX2+FMA at run time, and the offsets are full `LANES`-wide stripes of
// registers proved `< n_regs` by `RegProgram::validate()` against a buffer
// asserted `n_regs * LANES` long — the exact contract the kernels state.
#[inline]
fn l_un(op: UnOp, fast: bool, regs: &mut [f64], d: usize, a: usize, m: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above.
        unsafe {
            match (op, fast) {
                (UnOp::Neg, _) => return crate::simd::neg_k(regs, d, a),
                (UnOp::Exp, true) => return crate::simd::exp_k(regs, d, a),
                (UnOp::Log, true) => return crate::simd::log_k(regs, d, a),
                _ => {}
            }
        }
    }
    match (op, fast) {
        (UnOp::Neg, _) => k_un(|x| -x, regs, d, a, m),
        (UnOp::Log, false) => k_un(protected_log, regs, d, a, m),
        (UnOp::Exp, false) => k_un(protected_exp, regs, d, a, m),
        (UnOp::Log, true) => k_un(fast_log, regs, d, a, m),
        (UnOp::Exp, true) => k_un(fast_exp, regs, d, a, m),
    }
}

#[inline]
fn l_bin(op: BinOp, fast: bool, regs: &mut [f64], d: usize, a: usize, b: usize, m: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above.
        unsafe {
            match op {
                BinOp::Add => return crate::simd::add_rr(regs, d, a, b),
                BinOp::Sub => return crate::simd::sub_rr(regs, d, a, b),
                BinOp::Mul => return crate::simd::mul_rr(regs, d, a, b),
                BinOp::Div => return crate::simd::div_rr(regs, d, a, b),
                BinOp::Min => return crate::simd::min_rr(regs, d, a, b),
                BinOp::Max => return crate::simd::max_rr(regs, d, a, b),
                BinOp::Pow if fast => return crate::simd::pow_rr(regs, d, a, b),
                BinOp::Pow => {}
            }
        }
    }
    match op {
        BinOp::Add => k_bin(|x, y| x + y, regs, d, a, b, m),
        BinOp::Sub => k_bin(|x, y| x - y, regs, d, a, b, m),
        BinOp::Mul => k_bin(|x, y| x * y, regs, d, a, b, m),
        BinOp::Div => k_bin(protected_div, regs, d, a, b, m),
        BinOp::Min => k_bin(f64::min, regs, d, a, b, m),
        BinOp::Max => k_bin(f64::max, regs, d, a, b, m),
        BinOp::Pow => {
            let f: fn(f64, f64) -> f64 = if fast { fast_pow } else { protected_pow };
            k_bin(f, regs, d, a, b, m)
        }
    }
}

#[inline]
fn l_bin_cl(op: BinOp, fast: bool, regs: &mut [f64], d: usize, c: f64, b: usize, m: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above.
        unsafe {
            match op {
                BinOp::Add => return crate::simd::add_cl(regs, d, c, b),
                BinOp::Sub => return crate::simd::sub_cl(regs, d, c, b),
                BinOp::Mul => return crate::simd::mul_cl(regs, d, c, b),
                BinOp::Div => return crate::simd::div_cl(regs, d, c, b),
                BinOp::Min => return crate::simd::min_cl(regs, d, c, b),
                BinOp::Max => return crate::simd::max_cl(regs, d, c, b),
                BinOp::Pow if fast => return crate::simd::pow_cl(regs, d, c, b),
                BinOp::Pow => {}
            }
        }
    }
    match op {
        BinOp::Add => k_bin_cl(|x, y| x + y, regs, d, c, b, m),
        BinOp::Sub => k_bin_cl(|x, y| x - y, regs, d, c, b, m),
        BinOp::Mul => k_bin_cl(|x, y| x * y, regs, d, c, b, m),
        BinOp::Div => k_bin_cl(protected_div, regs, d, c, b, m),
        BinOp::Min => k_bin_cl(f64::min, regs, d, c, b, m),
        BinOp::Max => k_bin_cl(f64::max, regs, d, c, b, m),
        BinOp::Pow => {
            let f: fn(f64, f64) -> f64 = if fast { fast_pow } else { protected_pow };
            k_bin_cl(f, regs, d, c, b, m)
        }
    }
}

#[inline]
fn l_bin_cr(op: BinOp, fast: bool, regs: &mut [f64], d: usize, a: usize, c: f64, m: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above.
        unsafe {
            match op {
                BinOp::Add => return crate::simd::add_cr(regs, d, a, c),
                BinOp::Sub => return crate::simd::sub_cr(regs, d, a, c),
                BinOp::Mul => return crate::simd::mul_cr(regs, d, a, c),
                BinOp::Div => return crate::simd::div_cr(regs, d, a, c),
                BinOp::Min => return crate::simd::min_cr(regs, d, a, c),
                BinOp::Max => return crate::simd::max_cr(regs, d, a, c),
                BinOp::Pow if fast => return crate::simd::pow_cr(regs, d, a, c),
                BinOp::Pow => {}
            }
        }
    }
    match op {
        BinOp::Add => k_bin_cr(|x, y| x + y, regs, d, a, c, m),
        BinOp::Sub => k_bin_cr(|x, y| x - y, regs, d, a, c, m),
        BinOp::Mul => k_bin_cr(|x, y| x * y, regs, d, a, c, m),
        BinOp::Div => k_bin_cr(protected_div, regs, d, a, c, m),
        BinOp::Min => k_bin_cr(f64::min, regs, d, a, c, m),
        BinOp::Max => k_bin_cr(f64::max, regs, d, a, c, m),
        BinOp::Pow => {
            let f: fn(f64, f64) -> f64 = if fast { fast_pow } else { protected_pow };
            k_bin_cr(f, regs, d, a, c, m)
        }
    }
}

#[inline]
fn l_bin_vl(
    op: BinOp,
    fast: bool,
    regs: &mut [f64],
    d: usize,
    v: &[f64; LANES],
    b: usize,
    m: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above; the gathered
        // operand is a full stack-owned stripe.
        unsafe {
            match op {
                BinOp::Div => return crate::simd::div_vl(regs, d, v, b),
                BinOp::Pow if fast => return crate::simd::pow_vl(regs, d, v, b),
                _ => {}
            }
        }
    }
    if fast && op == BinOp::Pow {
        for l in 0..m {
            regs[d + l] = fast_pow(v[l], regs[b + l]);
        }
    } else {
        for l in 0..m {
            regs[d + l] = apply_bin(op, v[l], regs[b + l]);
        }
    }
}

#[inline]
fn l_bin_vr(
    op: BinOp,
    fast: bool,
    regs: &mut [f64],
    d: usize,
    a: usize,
    v: &[f64; LANES],
    m: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above; the gathered
        // operand is a full stack-owned stripe.
        unsafe {
            match op {
                BinOp::Div => return crate::simd::div_vr(regs, d, a, v),
                BinOp::Pow if fast => return crate::simd::pow_vr(regs, d, a, v),
                _ => {}
            }
        }
    }
    if fast && op == BinOp::Pow {
        for l in 0..m {
            regs[d + l] = fast_pow(regs[a + l], v[l]);
        }
    } else {
        for l in 0..m {
            regs[d + l] = apply_bin(op, regs[a + l], v[l]);
        }
    }
}

#[inline]
fn l_fused3(kind: F3, regs: &mut [f64], d: usize, a: usize, b: usize, c: usize, m: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if m == LANES && crate::simd::active() {
        // SAFETY: see the shared dispatcher argument above.
        unsafe {
            return match kind {
                F3::MulAdd => crate::simd::mul_add_k(regs, d, a, b, c),
                F3::MulSub => crate::simd::mul_sub_k(regs, d, a, b, c),
                F3::SubMul => crate::simd::sub_mul_k(regs, d, a, b, c),
            };
        }
    }
    for l in 0..m {
        // SAFETY: see the shared argument above (`k_*` kernels).
        unsafe {
            let av = *regs.get_unchecked(a + l);
            let bv = *regs.get_unchecked(b + l);
            let cv = *regs.get_unchecked(c + l);
            // Two roundings on purpose; see `RInstr::MulAdd`.
            *regs.get_unchecked_mut(d + l) = match kind {
                F3::MulAdd => av * bv + cv,
                F3::MulSub => av * bv - cv,
                F3::SubMul => av - bv * cv,
            };
        }
    }
}

// ---------------------------------------------------------------------------
// DAG construction: hash-consed CSE + constant folding + peephole
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    Const(f64),
    Var(u8),
    State(u8),
    Un(UnOp, u32),
    Bin(BinOp, u32, u32),
}

/// Hashable identity of a node; floats hash by bit pattern so `-0.0` and
/// `0.0` intern to distinct nodes.
#[derive(Hash, PartialEq, Eq)]
enum Key {
    Const(u64),
    Var(u8),
    State(u8),
    Un(UnOp, u32),
    Bin(BinOp, u32, u32),
}

/// The hash-consed expression DAG. Node ids are assigned in deterministic
/// first-intern order (driven by the left-to-right postorder of `lower`);
/// the `interned` map is only ever *probed*, never iterated, so nothing
/// downstream depends on hash order — a requirement of the engine's
/// thread-count-invariance contract.
struct Dag {
    nodes: Vec<Node>,
    /// Whether the node (transitively) reads a state variable.
    state_dep: Vec<bool>,
    interned: HashMap<Key, u32>,
}

impl Dag {
    fn new() -> Dag {
        Dag {
            nodes: Vec::new(),
            state_dep: Vec::new(),
            interned: HashMap::new(),
        }
    }

    fn node(&self, id: u32) -> Node {
        self.nodes[id as usize]
    }

    fn cnum(&self, id: u32) -> Option<f64> {
        match self.node(id) {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    fn intern(&mut self, n: Node) -> u32 {
        let key = match n {
            Node::Const(v) => Key::Const(v.to_bits()),
            Node::Var(i) => Key::Var(i),
            Node::State(i) => Key::State(i),
            Node::Un(op, a) => Key::Un(op, a),
            Node::Bin(op, a, b) => Key::Bin(op, a, b),
        };
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let dep = match n {
            Node::State(_) => true,
            Node::Un(_, a) => self.state_dep[a as usize],
            Node::Bin(_, a, b) => self.state_dep[a as usize] || self.state_dep[b as usize],
            _ => false,
        };
        let id = u32::try_from(self.nodes.len()).expect("expression DAG exceeds u32 nodes");
        self.nodes.push(n);
        self.state_dep.push(dep);
        self.interned.insert(key, id);
        id
    }

    fn unary(&mut self, op: UnOp, a: u32) -> u32 {
        // Constant folding through the protected operator.
        if let Some(v) = self.cnum(a) {
            return self.intern(Node::Const(apply_un(op, v)));
        }
        // --x → x (exact: negation is an involution on every f64).
        if op == UnOp::Neg {
            if let Node::Un(UnOp::Neg, inner) = self.node(a) {
                return inner;
            }
        }
        self.intern(Node::Un(op, a))
    }

    fn binary(&mut self, op: BinOp, a: u32, b: u32) -> u32 {
        if let (Some(x), Some(y)) = (self.cnum(a), self.cnum(b)) {
            return self.intern(Node::Const(apply_bin(op, x, y)));
        }
        // Identity peephole — every rule is value-preserving under the
        // protected semantics (see the module docs for the pow caveat and
        // the sign-of-zero note). `a_is`/`b_is` use `==`, so `-0.0`
        // matches `0.0`, which is fine for the rules below.
        let a_is = |v: f64| self.cnum(a) == Some(v);
        let b_is = |v: f64| self.cnum(b) == Some(v);
        match op {
            BinOp::Add => {
                if a_is(0.0) {
                    return b;
                }
                if b_is(0.0) {
                    return a;
                }
            }
            BinOp::Sub => {
                if b_is(0.0) {
                    return a;
                }
                if a_is(0.0) {
                    return self.unary(UnOp::Neg, b);
                }
            }
            BinOp::Mul => {
                if a_is(1.0) {
                    return b;
                }
                if b_is(1.0) {
                    return a;
                }
            }
            BinOp::Div => {
                if b_is(1.0) {
                    return a;
                }
            }
            BinOp::Pow => {
                // protected_pow(x, 1) ≡ protected_exp(1 · protected_log(x));
                // dropping the neutral multiply is exact, dropping the
                // exp∘log round-trip would not be.
                if b_is(1.0) {
                    let l = self.unary(UnOp::Log, a);
                    return self.unary(UnOp::Exp, l);
                }
            }
            BinOp::Min | BinOp::Max => {
                // Hash-consing makes structural identity pointer identity:
                // min(x, x) → x even for compound x.
                if a == b {
                    return a;
                }
            }
        }
        self.intern(Node::Bin(op, a, b))
    }

    fn lower(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Num(v) => self.intern(Node::Const(*v)),
            // Parameter values are frozen at compile time; recompile after
            // Gaussian mutation (same cost profile as the stack VM).
            Expr::Param(p) => self.intern(Node::Const(p.value)),
            Expr::Var(i) => self.intern(Node::Var(*i)),
            Expr::State(i) => self.intern(Node::State(*i)),
            Expr::Unary(op, a) => {
                let a = self.lower(a);
                self.unary(*op, a)
            }
            Expr::Binary(op, a, b) => {
                let a = self.lower(a);
                let b = self.lower(b);
                self.binary(*op, a, b)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual-code emission
// ---------------------------------------------------------------------------

/// A value reference in virtual (pre-allocation) code.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VR {
    /// SSA temporary.
    Temp(u32),
    /// Pinned constant, identified by its DAG node id.
    Const(u32),
    /// Pinned prefix-window slot (core programs only).
    Pre(u16),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VOp {
    LoadVar(u8),
    LoadState(u8),
    Un(UnOp, VR),
    Bin(BinOp, VR, VR),
    VarBinL(BinOp, u8, VR),
    VarBinR(BinOp, VR, u8),
    ConstBinL(BinOp, f64, VR),
    ConstBinR(BinOp, VR, f64),
    MulAdd(VR, VR, VR),
    MulSub(VR, VR, VR),
    SubMul(VR, VR, VR),
}

impl VOp {
    /// Visit every operand.
    fn operands(&self, mut f: impl FnMut(&VR)) {
        match self {
            VOp::LoadVar(_) | VOp::LoadState(_) => {}
            VOp::Un(_, a) | VOp::VarBinR(_, a, _) | VOp::ConstBinR(_, a, _) => f(a),
            VOp::VarBinL(_, _, b) | VOp::ConstBinL(_, _, b) => f(b),
            VOp::Bin(_, a, b) => {
                f(a);
                f(b);
            }
            VOp::MulAdd(a, b, c) | VOp::MulSub(a, b, c) | VOp::SubMul(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct VIns {
    dst: u32,
    op: VOp,
    dead: bool,
}

/// Demand-driven emitter: walking `value(root)` emits each needed DAG node
/// exactly once, in deterministic postorder.
struct Emitter<'d> {
    dag: &'d Dag,
    /// Prefix-output slot per DAG node (`Some` ⇒ the *core* program reads
    /// the value through the pinned window instead of recomputing it).
    pre_slot: &'d [Option<u16>],
    /// Emitting the prefix program itself (slot nodes are computed inline,
    /// state loads are unreachable)?
    in_prefix: bool,
    value_of: Vec<Option<VR>>,
    code: Vec<VIns>,
    next_temp: u32,
}

impl<'d> Emitter<'d> {
    fn new(dag: &'d Dag, pre_slot: &'d [Option<u16>], in_prefix: bool) -> Emitter<'d> {
        Emitter {
            dag,
            pre_slot,
            in_prefix,
            value_of: vec![None; dag.nodes.len()],
            code: Vec::new(),
            next_temp: 0,
        }
    }

    fn def(&mut self, op: VOp) -> VR {
        let t = self.next_temp;
        self.next_temp += 1;
        self.code.push(VIns {
            dst: t,
            op,
            dead: false,
        });
        VR::Temp(t)
    }

    fn value(&mut self, id: u32) -> VR {
        if let Some(v) = self.value_of[id as usize] {
            return v;
        }
        if !self.in_prefix {
            if let Some(slot) = self.pre_slot[id as usize] {
                let v = VR::Pre(slot);
                self.value_of[id as usize] = Some(v);
                return v;
            }
        }
        let v = match self.dag.node(id) {
            Node::Const(_) => VR::Const(id),
            Node::Var(i) => self.def(VOp::LoadVar(i)),
            Node::State(i) => {
                debug_assert!(!self.in_prefix, "state leaf in prefix");
                self.def(VOp::LoadState(i))
            }
            Node::Un(op, a) => {
                let av = self.value(a);
                self.def(VOp::Un(op, av))
            }
            Node::Bin(op, a, b) => {
                let av = self.value(a);
                let bv = self.value(b);
                self.def(VOp::Bin(op, av, bv))
            }
        };
        self.value_of[id as usize] = Some(v);
        v
    }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------------

/// Fusion peephole over virtual code. Priority per binary instruction:
/// the three-operand shapes (`MulAdd`/`MulSub`/`SubMul`, erasing a whole
/// instruction) over `VarBin` (erases a load and its dispatch) over
/// `ConstBin` (inlines an immediate, freeing a pinned register read).
/// Which patterns may fire at all is governed by `table` — the
/// corpus-selected [`FusionTable`] by default. Multi-use temporaries are
/// never destroyed: a `LoadVar` feeding several consumers fuses into each,
/// and its defining instruction dies only when no uses remain. Output
/// references count as uses, so an output definition never fuses away.
fn fuse(code: &mut Vec<VIns>, outputs: &[VR], dag: &Dag, table: FusionTable) {
    let mut def_idx: HashMap<u32, usize> = HashMap::with_capacity(code.len());
    for (i, ins) in code.iter().enumerate() {
        def_idx.insert(ins.dst, i);
    }
    let mut uses: HashMap<u32, u32> = HashMap::with_capacity(code.len());
    for ins in code.iter() {
        ins.op.operands(|v| {
            if let VR::Temp(t) = v {
                *uses.entry(*t).or_insert(0) += 1;
            }
        });
    }
    for o in outputs {
        if let VR::Temp(t) = o {
            *uses.entry(*t).or_insert(0) += 1;
        }
    }

    for i in 0..code.len() {
        let VOp::Bin(op, a, b) = code[i].op else {
            continue;
        };
        // Three-operand shapes: a single-use Mul feeding an Add operand
        // (either side) or a Sub operand (left → MulSub, right → SubMul).
        // The decision is computed first and applied after, so the
        // immutable probe of `code`/`uses` ends before the mutation.
        let fused3 = {
            let try_mul = |v: VR| -> Option<(u32, usize, VR, VR)> {
                let VR::Temp(t) = v else { return None };
                if uses.get(&t) != Some(&1) {
                    return None;
                }
                let j = def_idx[&t];
                match code[j].op {
                    VOp::Bin(BinOp::Mul, x, y) => Some((t, j, x, y)),
                    _ => None,
                }
            };
            match op {
                BinOp::Add if table.mul_add => try_mul(a)
                    .map(|(t, j, x, y)| (t, j, VOp::MulAdd(x, y, b)))
                    .or_else(|| try_mul(b).map(|(t, j, x, y)| (t, j, VOp::MulAdd(x, y, a)))),
                BinOp::Sub => {
                    let ms = if table.mul_sub {
                        try_mul(a).map(|(t, j, x, y)| (t, j, VOp::MulSub(x, y, b)))
                    } else {
                        None
                    };
                    ms.or_else(|| {
                        if table.sub_mul {
                            try_mul(b).map(|(t, j, x, y)| (t, j, VOp::SubMul(a, x, y)))
                        } else {
                            None
                        }
                    })
                }
                _ => None,
            }
        };
        if let Some((t, j, new_op)) = fused3 {
            code[i].op = new_op;
            code[j].dead = true;
            uses.insert(t, 0);
            continue;
        }
        // VarBin: fold a forcing-variable load into the consumer. The
        // load's definition survives while other consumers still need it.
        if table.var_bin {
            let load_of = |v: VR| -> Option<(u32, usize, u8)> {
                let VR::Temp(t) = v else { return None };
                let j = def_idx[&t];
                match code[j].op {
                    VOp::LoadVar(idx) => Some((t, j, idx)),
                    _ => None,
                }
            };
            if let Some((t, j, idx)) = load_of(a) {
                code[i].op = VOp::VarBinL(op, idx, b);
                let u = uses.get_mut(&t).expect("use count for operand");
                *u -= 1;
                if *u == 0 {
                    code[j].dead = true;
                }
                continue;
            }
            if let Some((t, j, idx)) = load_of(b) {
                code[i].op = VOp::VarBinR(op, a, idx);
                let u = uses.get_mut(&t).expect("use count for operand");
                *u -= 1;
                if *u == 0 {
                    code[j].dead = true;
                }
                continue;
            }
        }
        // ConstBin: inline a pinned constant as an immediate. (Both sides
        // constant is impossible — the DAG folded that.)
        if table.const_bin {
            if let VR::Const(c) = a {
                code[i].op = VOp::ConstBinL(op, dag.cnum(c).expect("const node"), b);
                continue;
            }
            if let VR::Const(c) = b {
                code[i].op = VOp::ConstBinR(op, a, dag.cnum(c).expect("const node"));
            }
        }
    }
    code.retain(|ins| !ins.dead);
}

// ---------------------------------------------------------------------------
// Linear-scan register allocation
// ---------------------------------------------------------------------------

/// Allocate the (fused) virtual code onto a compact register file and
/// produce the final [`RegProgram`]. Pinned layout first — constants still
/// referenced as registers (in deterministic first-reference order), then
/// the `n_pre`-wide prefix window — temporaries after, reused via a LIFO
/// free list as their live ranges end. An operand register whose live
/// range ends at an instruction is freed *before* the destination is
/// assigned, so `r3 = f(r3, r2)`-style in-place reuse falls out naturally
/// (both interpreters read operands into locals before writing `dst`).
fn allocate(code: &[VIns], outputs: &[VR], dag: &Dag, n_pre: u16) -> RegProgram {
    // Constant pool: DAG constants referenced as `VR::Const` by surviving
    // code or outputs, in first-reference order.
    let mut const_pool: Vec<u32> = Vec::new();
    let mut const_reg: HashMap<u32, u16> = HashMap::new();
    {
        let mut note = |v: &VR| {
            if let VR::Const(c) = v {
                if !const_reg.contains_key(c) {
                    let r = u16::try_from(const_pool.len()).expect("constant pool exceeds u16");
                    const_reg.insert(*c, r);
                    const_pool.push(*c);
                }
            }
        };
        for ins in code {
            ins.op.operands(&mut note);
        }
        for o in outputs {
            note(o);
        }
    }
    let nc = u16::try_from(const_pool.len()).expect("constant pool exceeds u16");
    let temp_base = nc + n_pre;

    // Live ranges: last instruction index reading each temporary; output
    // temporaries live to the end of the program.
    let mut last_use: HashMap<u32, usize> = HashMap::new();
    for (i, ins) in code.iter().enumerate() {
        ins.op.operands(|v| {
            if let VR::Temp(t) = v {
                last_use.insert(*t, i);
            }
        });
    }
    for o in outputs {
        if let VR::Temp(t) = o {
            last_use.insert(*t, usize::MAX);
        }
    }

    let mut reg_of: HashMap<u32, u16> = HashMap::new();
    let mut free: Vec<u16> = Vec::new();
    let mut next_reg = temp_base;
    let mut out_code: Vec<RInstr> = Vec::with_capacity(code.len());
    let mut needs_vars = 0usize;
    let mut needs_states = 0usize;
    let mut used: Vec<u32> = Vec::with_capacity(3);

    for (i, ins) in code.iter().enumerate() {
        // A value nobody reads (possible only for fused-away corner cases)
        // is simply not emitted.
        if !last_use.contains_key(&ins.dst) {
            continue;
        }
        used.clear();
        // Resolve operands against the *current* mapping, recording which
        // temporaries this instruction reads.
        let mut resolved = {
            let mut resolve = |v: &VR| -> u16 {
                match *v {
                    VR::Temp(t) => {
                        used.push(t);
                        reg_of[&t]
                    }
                    VR::Const(c) => const_reg[&c],
                    VR::Pre(s) => nc + s,
                }
            };
            match ins.op {
                VOp::LoadVar(idx) => {
                    needs_vars = needs_vars.max(idx as usize + 1);
                    RInstr::LoadVar { dst: 0, idx }
                }
                VOp::LoadState(idx) => {
                    needs_states = needs_states.max(idx as usize + 1);
                    RInstr::LoadState { dst: 0, idx }
                }
                VOp::Un(op, a) => RInstr::Un {
                    op,
                    dst: 0,
                    a: resolve(&a),
                },
                VOp::Bin(op, a, b) => RInstr::Bin {
                    op,
                    dst: 0,
                    a: resolve(&a),
                    b: resolve(&b),
                },
                VOp::VarBinL(op, idx, b) => {
                    needs_vars = needs_vars.max(idx as usize + 1);
                    RInstr::VarBinL {
                        op,
                        dst: 0,
                        idx,
                        b: resolve(&b),
                    }
                }
                VOp::VarBinR(op, a, idx) => {
                    needs_vars = needs_vars.max(idx as usize + 1);
                    RInstr::VarBinR {
                        op,
                        dst: 0,
                        a: resolve(&a),
                        idx,
                    }
                }
                VOp::ConstBinL(op, c, b) => RInstr::ConstBinL {
                    op,
                    dst: 0,
                    c,
                    b: resolve(&b),
                },
                VOp::ConstBinR(op, a, c) => RInstr::ConstBinR {
                    op,
                    dst: 0,
                    a: resolve(&a),
                    c,
                },
                VOp::MulAdd(a, b, c) => RInstr::MulAdd {
                    dst: 0,
                    a: resolve(&a),
                    b: resolve(&b),
                    c: resolve(&c),
                },
                VOp::MulSub(a, b, c) => RInstr::MulSub {
                    dst: 0,
                    a: resolve(&a),
                    b: resolve(&b),
                    c: resolve(&c),
                },
                VOp::SubMul(a, b, c) => RInstr::SubMul {
                    dst: 0,
                    a: resolve(&a),
                    b: resolve(&b),
                    c: resolve(&c),
                },
            }
        };
        // Free temporaries whose live range ends here (a temp read twice
        // by the same instruction frees once: `remove` is idempotent).
        for t in &used {
            if last_use.get(t) == Some(&i) {
                if let Some(r) = reg_of.remove(t) {
                    free.push(r);
                }
            }
        }
        let dst = free.pop().unwrap_or_else(|| {
            let r = next_reg;
            next_reg = next_reg.checked_add(1).expect("register file exceeds u16");
            r
        });
        reg_of.insert(ins.dst, dst);
        resolved.set_dst(dst);
        out_code.push(resolved);
    }

    let out_regs: Vec<u16> = outputs
        .iter()
        .map(|o| match *o {
            VR::Temp(t) => reg_of[&t],
            VR::Const(c) => const_reg[&c],
            VR::Pre(s) => nc + s,
        })
        .collect();
    let consts: Vec<f64> = const_pool
        .iter()
        .map(|&c| dag.cnum(c).expect("const node"))
        .collect();
    let mut prog = RegProgram {
        code: out_code,
        consts,
        n_pre,
        n_regs: next_reg,
        outputs: out_regs,
        needs_vars,
        needs_states,
    };
    // Verified DCE: the demand-driven emitter and the fusion peephole
    // should leave nothing dead (fusion retires orphaned definitions
    // itself), so this sweep is a guarantee, not an optimization — and
    // `lint::absint` re-runs the same liveness analysis independently to
    // prove the guarantee held.
    let removed = prog.eliminate_dead();
    debug_assert_eq!(removed, 0, "emitter produced {removed} dead instruction(s)");
    prog.validate();
    prog
}

// ---------------------------------------------------------------------------
// CompiledSystem: the public pipeline entry point
// ---------------------------------------------------------------------------

/// A system of equations compiled through the optimizing pipeline: one
/// shared DAG, an optional state-independent prefix program, and a core
/// program producing one output per equation.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    /// Columnar-swept prefix; empty when `opts.split` is off or nothing is
    /// state-independent. Its outputs fill the core's pinned window.
    prefix: RegProgram,
    /// Sequential per-step program; reads the prefix window when split.
    core: RegProgram,
    n_eqs: usize,
    opts: OptOptions,
    /// Threaded-code images of `prefix`/`core`, built by
    /// [`compile`](Self::compile) when `opts.exec` is not [`Exec::Match`].
    /// Systems assembled by [`from_raw_parts`](Self::from_raw_parts) never
    /// carry thunks (they may be deliberately corrupt and must only ever
    /// be analyzed); scalar execution then falls back to `run_scalar`.
    prefix_thunks: Option<ThreadedProgram>,
    core_thunks: Option<ThreadedProgram>,
}

impl PartialEq for CompiledSystem {
    /// Thunk arrays are derived data (a pure function of the programs and
    /// options), so equality compares the programs themselves.
    fn eq(&self, other: &Self) -> bool {
        self.prefix == other.prefix
            && self.core == other.core
            && self.n_eqs == other.n_eqs
            && self.opts == other.opts
    }
}

impl CompiledSystem {
    /// Compile `eqs` as one system. Panics on an empty slice.
    pub fn compile(eqs: &[Expr], opts: OptOptions) -> CompiledSystem {
        assert!(!eqs.is_empty(), "cannot compile an empty system");
        let mut dag = Dag::new();
        let roots: Vec<u32> = eqs.iter().map(|e| dag.lower(e)).collect();

        // Reachability from the (post-peephole) roots.
        let n = dag.nodes.len();
        let mut reachable = vec![false; n];
        let mut stack: Vec<u32> = roots.clone();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id as usize], true) {
                continue;
            }
            match dag.node(id) {
                Node::Un(_, a) => stack.push(a),
                Node::Bin(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                _ => {}
            }
        }

        // Prefix slots: maximal state-independent op nodes, i.e. those
        // consumed by a state-dependent parent or serving as an equation
        // root. Slot order follows ascending node id — deterministic.
        let mut pre_slot: Vec<Option<u16>> = vec![None; n];
        let mut n_pre = 0u16;
        if opts.split {
            let is_candidate = |id: u32| {
                reachable[id as usize]
                    && !dag.state_dep[id as usize]
                    && matches!(dag.node(id), Node::Un(..) | Node::Bin(..))
            };
            let mut wanted = vec![false; n];
            for &r in &roots {
                if is_candidate(r) {
                    wanted[r as usize] = true;
                }
            }
            for id in 0..n as u32 {
                if !reachable[id as usize] || !dag.state_dep[id as usize] {
                    continue;
                }
                let (a, b) = match dag.node(id) {
                    Node::Un(_, a) => (Some(a), None),
                    Node::Bin(_, a, b) => (Some(a), Some(b)),
                    _ => (None, None),
                };
                for operand in [a, b].into_iter().flatten() {
                    if is_candidate(operand) {
                        wanted[operand as usize] = true;
                    }
                }
            }
            for (id, w) in wanted.iter().enumerate() {
                if *w {
                    pre_slot[id] = Some(n_pre);
                    n_pre = n_pre.checked_add(1).expect("prefix window exceeds u16");
                }
            }
        }

        let prefix = if n_pre > 0 {
            let mut em = Emitter::new(&dag, &pre_slot, true);
            // Outputs in slot order = ascending node id.
            let outs: Vec<VR> = (0..n)
                .filter(|&id| pre_slot[id].is_some())
                .map(|id| em.value(id as u32))
                .collect();
            let mut code = em.code;
            if opts.fuse {
                fuse(&mut code, &outs, &dag, opts.table);
            }
            allocate(&code, &outs, &dag, 0)
        } else {
            RegProgram::empty()
        };

        let mut em = Emitter::new(&dag, &pre_slot, false);
        let outs: Vec<VR> = roots.iter().map(|&r| em.value(r)).collect();
        let mut code = em.code;
        if opts.fuse {
            fuse(&mut code, &outs, &dag, opts.table);
        }
        let core = allocate(&code, &outs, &dag, n_pre);
        debug_assert_eq!(prefix.outputs.len(), n_pre as usize);

        // Threaded-code images: every instruction pre-resolved to a
        // monomorphized thunk. `fast` (relaxed transcendentals) only when
        // the simd tier's kernels are actually live, so the scalar and
        // columnar paths of one system always agree per lane.
        let fast = opts.exec == Exec::Simd && crate::simd::active();
        let (prefix_thunks, core_thunks) = if opts.exec == Exec::Match {
            (None, None)
        } else {
            (
                (!prefix.is_empty()).then(|| ThreadedProgram::build(&prefix, fast)),
                Some(ThreadedProgram::build(&core, fast)),
            )
        };

        CompiledSystem {
            prefix,
            core,
            n_eqs: eqs.len(),
            opts,
            prefix_thunks,
            core_thunks,
        }
    }

    /// [`compile`](Self::compile) with an up-front arity check: every
    /// `Var`/`State` index in `eqs` must be in range for the name-table
    /// arities, so a miscompiled index is a compile-time error rather than
    /// a silent zero at run time.
    pub fn compile_checked(
        eqs: &[Expr],
        n_vars: usize,
        n_states: usize,
        opts: OptOptions,
    ) -> Result<CompiledSystem, CompileError> {
        for eq in eqs {
            check_arity(eq, n_vars, n_states)?;
        }
        let sys = CompiledSystem::compile(eqs, opts);
        #[cfg(debug_assertions)]
        if let Err(e) = sys.self_check() {
            panic!("compile_checked: structural self-check failed: {e}");
        }
        Ok(sys)
    }

    /// Structural invariants every compilation must satisfy, checked
    /// without running anything: both programs pass
    /// [`RegProgram::check`], the prefix is genuinely state-independent
    /// (no `LoadState`, zero state arity, no pinned window of its own),
    /// its output count matches the core's pinned window width, the core
    /// produces one output per equation, and neither program carries dead
    /// instructions. `compile_checked` debug-asserts this; `lint::absint`
    /// proves the same facts (and more) for artifacts crossing a trust
    /// boundary.
    pub fn self_check(&self) -> Result<(), String> {
        self.prefix.check().map_err(|e| format!("prefix: {e}"))?;
        self.core.check().map_err(|e| format!("core: {e}"))?;
        if self.prefix.n_pre != 0 {
            return Err("prefix program has a pinned prefix window".into());
        }
        if self.prefix.needs_states != 0 {
            return Err("prefix program declares a state arity".into());
        }
        if let Some(i) = self
            .prefix
            .code
            .iter()
            .position(|ins| ins.state_index().is_some())
        {
            return Err(format!("prefix instruction {i} loads a state variable"));
        }
        if self.prefix.outputs.len() != self.core.n_pre as usize {
            return Err(format!(
                "prefix produces {} value(s) but the core window is {} wide",
                self.prefix.outputs.len(),
                self.core.n_pre
            ));
        }
        if self.core.outputs.len() != self.n_eqs {
            return Err(format!(
                "core produces {} output(s) for {} equation(s)",
                self.core.outputs.len(),
                self.n_eqs
            ));
        }
        let dead = self.prefix.dead_instructions().len() + self.core.dead_instructions().len();
        if dead != 0 {
            return Err(format!("{dead} dead instruction(s) survived DCE"));
        }
        Ok(())
    }

    /// Assemble a system directly from pre-built programs, **bypassing**
    /// every pipeline check. For static-analysis tests that need a
    /// deliberately corrupted [`CompiledSystem`] (see
    /// [`RegProgram::from_raw_unchecked`]); such a system must only ever
    /// be analyzed, never evaluated.
    #[doc(hidden)]
    pub fn from_raw_parts(
        prefix: RegProgram,
        core: RegProgram,
        n_eqs: usize,
        opts: OptOptions,
    ) -> CompiledSystem {
        CompiledSystem {
            prefix,
            core,
            n_eqs,
            opts,
            prefix_thunks: None,
            core_thunks: None,
        }
    }

    /// Number of equations (= outputs per step).
    pub fn n_eqs(&self) -> usize {
        self.n_eqs
    }

    /// The options this system was compiled with.
    pub fn options(&self) -> OptOptions {
        self.opts
    }

    /// The named tier these options compile to.
    pub fn tier(&self) -> Tier {
        match (self.opts.exec, self.opts.split, self.opts.fuse) {
            (Exec::Simd, ..) => Tier::Simd,
            (Exec::Threaded, ..) => Tier::Threaded,
            (Exec::Match, true, _) => Tier::Split,
            (Exec::Match, false, true) => Tier::Fused,
            (Exec::Match, false, false) => Tier::Register,
        }
    }

    /// True when this system executes with relaxed fidelity **on this
    /// machine right now**: simd exec with the vector kernels live. A
    /// simd-tier system on a machine without AVX2+FMA (or with the `simd`
    /// feature off) is bit-exact threaded code.
    pub fn relaxed(&self) -> bool {
        self.opts.exec == Exec::Simd && crate::simd::active()
    }

    /// The fidelity this system's execution delivers (see
    /// [`relaxed`](Self::relaxed)).
    pub fn fidelity(&self) -> Fidelity {
        if self.relaxed() {
            Fidelity::RelaxedSimd
        } else {
            Fidelity::BitExact
        }
    }

    /// Run the core for one row: threaded thunks when built, otherwise the
    /// match interpreter.
    #[inline]
    fn run_core_scalar(&self, vars: &[f64], state: &[f64], regs: &mut [f64]) {
        match &self.core_thunks {
            Some(t) => t.run(vars, state, regs),
            None => self.core.run_scalar(vars, state, regs),
        }
    }

    /// Run the prefix scalar for one row (see
    /// [`run_core_scalar`](Self::run_core_scalar)).
    #[inline]
    fn run_prefix_scalar(&self, vars: &[f64], regs: &mut [f64]) {
        match &self.prefix_thunks {
            Some(t) => t.run(vars, &[], regs),
            None => self.prefix.run_scalar(vars, &[], regs),
        }
    }

    /// Instructions in the sequential core program.
    pub fn core_len(&self) -> usize {
        self.core.len()
    }

    /// Instructions in the columnar prefix program.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// Width of the state-independent prefix window.
    pub fn n_pre(&self) -> usize {
        self.prefix.outputs.len()
    }

    /// The core program (bench introspection).
    pub fn core(&self) -> &RegProgram {
        &self.core
    }

    /// The prefix program (bench introspection).
    pub fn prefix(&self) -> &RegProgram {
        &self.prefix
    }

    /// Minimum forcing-vector length required at every step.
    pub fn needs_vars(&self) -> usize {
        self.core.needs_vars.max(self.prefix.needs_vars)
    }

    /// Minimum state-vector length required at every step.
    pub fn needs_states(&self) -> usize {
        self.core.needs_states
    }

    /// Allocate a reusable scratch buffer (constants pre-pinned).
    pub fn scratch(&self) -> SystemScratch {
        let mut core_regs = vec![0.0; self.core.n_regs as usize];
        self.core.init_consts(&mut core_regs);
        let mut prefix_regs = vec![0.0; self.prefix.n_regs as usize];
        self.prefix.init_consts(&mut prefix_regs);
        SystemScratch {
            core_regs,
            prefix_regs,
        }
    }

    /// Evaluate one step standalone (no row session): runs the prefix
    /// program scalar on `ctx.vars`, then the core. `out` receives one
    /// value per equation.
    pub fn eval_step(&self, ctx: &EvalContext<'_>, scratch: &mut SystemScratch, out: &mut [f64]) {
        assert_eq!(out.len(), self.n_eqs);
        let window = self.core.consts.len();
        if !self.prefix.outputs.is_empty() {
            self.run_prefix_scalar(ctx.vars, &mut scratch.prefix_regs);
            for (k, &r) in self.prefix.outputs.iter().enumerate() {
                scratch.core_regs[window + k] = scratch.prefix_regs[r as usize];
            }
        }
        self.run_core_scalar(ctx.vars, ctx.state, &mut scratch.core_regs);
        for (e, &r) in self.core.outputs.iter().enumerate() {
            out[e] = scratch.core_regs[r as usize];
        }
    }

    /// Open a session over a fixed table of forcing rows (`rows[t]` is the
    /// forcing vector of step `t`). The session owns the columnar prefix
    /// buffers; [`SystemSession::step`] sweeps prefix chunks on demand.
    pub fn session<'a, R: AsRef<[f64]>>(&'a self, rows: &'a [R]) -> SystemSession<'a, R> {
        let n_pre = self.prefix.outputs.len();
        let mut lane_regs = if n_pre > 0 {
            vec![0.0; self.prefix.n_regs as usize * LANES]
        } else {
            Vec::new()
        };
        self.prefix.init_consts_lanes(&mut lane_regs);
        SystemSession {
            sys: self,
            rows,
            prefix_buf: vec![0.0; n_pre * rows.len()],
            filled: 0,
            lane_regs,
            scratch: self.scratch(),
        }
    }

    /// Open a *multi-trajectory* session: up to [`LANES`] concurrent
    /// simulations of this system over one shared forcing table, stepped
    /// in lock-step. Each [`MultiSession::step`] dispatches the core
    /// program once for all trajectories (lanes carry per-trajectory
    /// state), and the state-independent prefix is computed once per row
    /// and shared by every trajectory — the work-sharing that lets a
    /// batching server answer K concurrent requests for one model at far
    /// below K× the single-request cost. Per-lane results are
    /// bit-identical to running each trajectory through its own
    /// [`session`](Self::session).
    pub fn multi_session<'a, R: AsRef<[f64]>>(
        &'a self,
        rows: &'a [R],
        k: usize,
    ) -> MultiSession<'a, R> {
        assert!(
            (1..=LANES).contains(&k),
            "trajectory count {k} out of 1..={LANES}"
        );
        let n_pre = self.prefix.outputs.len();
        let mut prefix_lane_regs = if n_pre > 0 {
            vec![0.0; self.prefix.n_regs as usize * LANES]
        } else {
            Vec::new()
        };
        self.prefix.init_consts_lanes(&mut prefix_lane_regs);
        let mut core_lane_regs = vec![0.0; self.core.n_regs as usize * LANES];
        self.core.init_consts_lanes(&mut core_lane_regs);
        MultiSession {
            sys: self,
            rows,
            k,
            prefix: PrefixRows::Owned {
                buf: vec![0.0; n_pre * rows.len()],
                filled: 0,
                lane_regs: prefix_lane_regs,
            },
            core_lane_regs,
        }
    }

    /// Like [`multi_session`](Self::multi_session), but reading prefix
    /// values from a pre-materialized [`PrefixTable`] instead of sweeping
    /// them on demand — the serving hot path, where a registry caches one
    /// table per (model, forcing table) and repeat traffic skips the
    /// columnar sweep entirely. The table must come from
    /// [`sweep_prefix`](Self::sweep_prefix) on this same system over a
    /// forcing table of which `rows` is a prefix (width is asserted;
    /// provenance is the caller's contract).
    pub fn multi_session_with_prefix<'a, R: AsRef<[f64]>>(
        &'a self,
        rows: &'a [R],
        k: usize,
        prefix: &'a PrefixTable,
    ) -> MultiSession<'a, R> {
        assert!(
            (1..=LANES).contains(&k),
            "trajectory count {k} out of 1..={LANES}"
        );
        assert_eq!(
            prefix.n_pre,
            self.prefix.outputs.len(),
            "prefix table width does not match this system"
        );
        assert!(
            self.prefix.outputs.is_empty() || prefix.rows() >= rows.len(),
            "prefix table covers {} rows, session needs {}",
            prefix.rows(),
            rows.len()
        );
        let mut core_lane_regs = vec![0.0; self.core.n_regs as usize * LANES];
        self.core.init_consts_lanes(&mut core_lane_regs);
        MultiSession {
            sys: self,
            rows,
            k,
            prefix: PrefixRows::Shared(prefix),
            core_lane_regs,
        }
    }

    /// Materialize the state-independent prefix columns for every row of
    /// a forcing table, for reuse across sessions via
    /// [`multi_session_with_prefix`](Self::multi_session_with_prefix).
    /// Produced by the same [`LANES`]-chunked columnar sweep from row 0
    /// that an on-demand session runs, so the values are bit-identical to
    /// what any session over `rows` (or a prefix of it) would compute.
    pub fn sweep_prefix<R: AsRef<[f64]>>(&self, rows: &[R]) -> PrefixTable {
        let n_pre = self.prefix.outputs.len();
        let mut values = vec![0.0; n_pre * rows.len()];
        if n_pre > 0 {
            let mut lane_regs = vec![0.0; self.prefix.n_regs as usize * LANES];
            self.prefix.init_consts_lanes(&mut lane_regs);
            let mut filled = 0;
            while filled < rows.len() {
                let m = LANES.min(rows.len() - filled);
                self.prefix
                    .run_lanes(rows, filled, m, &mut lane_regs, self.relaxed());
                for l in 0..m {
                    let row = (filled + l) * n_pre;
                    for (j, &r) in self.prefix.outputs.iter().enumerate() {
                        values[row + j] = lane_regs[r as usize * LANES + l];
                    }
                }
                filled += m;
            }
        }
        PrefixTable { values, n_pre }
    }

    /// Open an *ensemble* session: up to [`LANES`] concurrent simulations
    /// of this system where every lane has its **own forcing table** —
    /// the what-if sweep shape, where variants of one scenario differ by
    /// their forcings rather than by their initial state. All tables must
    /// be the same length. The state-independent prefix is materialized
    /// per table at construction (one columnar [`sweep_prefix`]
    /// (Self::sweep_prefix) each); the core steps all lanes lock-step with
    /// per-lane forcing rows. Per-lane results are bit-identical to
    /// running each variant through its own [`session`](Self::session).
    pub fn ensemble_session<'a, R: AsRef<[f64]>>(
        &'a self,
        tables: &'a [&'a [R]],
    ) -> EnsembleSession<'a, R> {
        let k = tables.len();
        assert!(
            (1..=LANES).contains(&k),
            "ensemble width {k} out of 1..={LANES}"
        );
        let n_rows = tables[0].len();
        assert!(
            tables.iter().all(|t| t.len() == n_rows),
            "ensemble tables must share one length"
        );
        let prefixes: Vec<PrefixTable> = if self.prefix.outputs.is_empty() {
            Vec::new()
        } else {
            tables.iter().map(|t| self.sweep_prefix(t)).collect()
        };
        let mut core_lane_regs = vec![0.0; self.core.n_regs as usize * LANES];
        self.core.init_consts_lanes(&mut core_lane_regs);
        EnsembleSession {
            sys: self,
            tables,
            n_rows,
            prefixes,
            core_lane_regs,
        }
    }
}

/// Materialized state-independent prefix columns over a fixed forcing
/// table (`values[t * n_pre + slot]`), produced by
/// [`CompiledSystem::sweep_prefix`] and shared across
/// [`MultiSession`]s — the unit a serving registry caches (and an LRU
/// eviction destroys) per (model, forcing table).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixTable {
    values: Vec<f64>,
    n_pre: usize,
}

impl PrefixTable {
    /// Forcing rows covered.
    pub fn rows(&self) -> usize {
        self.values.len().checked_div(self.n_pre).unwrap_or(0)
    }

    /// Resident size of the materialized columns in bytes (the LRU
    /// accounting unit).
    pub fn bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

/// Reusable register buffers for [`CompiledSystem::eval_step`].
#[derive(Debug, Clone)]
pub struct SystemScratch {
    core_regs: Vec<f64>,
    prefix_regs: Vec<f64>,
}

/// A per-candidate evaluation session over a fixed forcing table. Prefix
/// values are computed columnar ([`LANES`] rows per dispatch) in on-demand
/// chunks, then the sequential core consumes them row by row.
pub struct SystemSession<'a, R: AsRef<[f64]>> {
    sys: &'a CompiledSystem,
    rows: &'a [R],
    /// Row-major prefix values: `prefix_buf[t * n_pre + slot]`.
    prefix_buf: Vec<f64>,
    /// Rows of `prefix_buf` materialized so far.
    filled: usize,
    lane_regs: Vec<f64>,
    scratch: SystemScratch,
}

impl<R: AsRef<[f64]>> SystemSession<'_, R> {
    /// Evaluate step `t` under `state`; `out` receives one value per
    /// equation.
    pub fn step(&mut self, t: usize, state: &[f64], out: &mut [f64]) {
        assert!(
            t < self.rows.len(),
            "step {t} out of {} rows",
            self.rows.len()
        );
        assert_eq!(out.len(), self.sys.n_eqs);
        let n_pre = self.sys.prefix.outputs.len();
        let window = self.sys.core.consts.len();
        if n_pre > 0 {
            while self.filled <= t {
                let m = LANES.min(self.rows.len() - self.filled);
                self.sys.prefix.run_lanes(
                    self.rows,
                    self.filled,
                    m,
                    &mut self.lane_regs,
                    self.sys.relaxed(),
                );
                for l in 0..m {
                    let row = (self.filled + l) * n_pre;
                    for (k, &r) in self.sys.prefix.outputs.iter().enumerate() {
                        self.prefix_buf[row + k] = self.lane_regs[r as usize * LANES + l];
                    }
                }
                self.filled += m;
            }
            self.scratch.core_regs[window..window + n_pre]
                .copy_from_slice(&self.prefix_buf[t * n_pre..(t + 1) * n_pre]);
        }
        self.sys
            .run_core_scalar(self.rows[t].as_ref(), state, &mut self.scratch.core_regs);
        for (e, &r) in self.sys.core.outputs.iter().enumerate() {
            out[e] = self.scratch.core_regs[r as usize];
        }
    }

    /// Forcing rows materialized in the prefix buffer so far (tests).
    pub fn rows_swept(&self) -> usize {
        self.filled
    }
}

/// K concurrent trajectories of one system over a shared forcing table,
/// stepped in lock-step with one core dispatch per step for all of them.
/// See [`CompiledSystem::multi_session`].
pub struct MultiSession<'a, R: AsRef<[f64]>> {
    sys: &'a CompiledSystem,
    rows: &'a [R],
    k: usize,
    prefix: PrefixRows<'a>,
    core_lane_regs: Vec<f64>,
}

/// Where a [`MultiSession`] reads its row-major prefix values from:
/// either its own on-demand sweep buffer (`buf[t * n_pre + slot]`,
/// shared by every trajectory — the prefix is state-independent), or a
/// caller-cached [`PrefixTable`].
enum PrefixRows<'a> {
    Owned {
        buf: Vec<f64>,
        /// Rows of `buf` materialized so far.
        filled: usize,
        lane_regs: Vec<f64>,
    },
    Shared(&'a PrefixTable),
}

impl<R: AsRef<[f64]>> MultiSession<'_, R> {
    /// Number of trajectories in lock-step.
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Evaluate step `t` for all `k` trajectories. `states` is lane-major
    /// (`states[l * stride + idx]`, `stride = states.len() / k`); `out`
    /// receives `k * n_eqs` values, trajectory-major
    /// (`out[l * n_eqs + e]`).
    pub fn step(&mut self, t: usize, states: &[f64], out: &mut [f64]) {
        let k = self.k;
        assert!(
            t < self.rows.len(),
            "step {t} out of {} rows",
            self.rows.len()
        );
        assert!(
            k > 0 && states.len().is_multiple_of(k),
            "states not lane-major"
        );
        let stride = states.len() / k;
        let n_eqs = self.sys.n_eqs;
        assert_eq!(out.len(), k * n_eqs);
        let n_pre = self.sys.prefix.outputs.len();
        let window = self.sys.core.consts.len();
        if n_pre > 0 {
            let pre_row: &[f64] = match &mut self.prefix {
                PrefixRows::Owned {
                    buf,
                    filled,
                    lane_regs,
                } => {
                    while *filled <= t {
                        let m = LANES.min(self.rows.len() - *filled);
                        self.sys.prefix.run_lanes(
                            self.rows,
                            *filled,
                            m,
                            lane_regs,
                            self.sys.relaxed(),
                        );
                        for l in 0..m {
                            let row = (*filled + l) * n_pre;
                            for (j, &r) in self.sys.prefix.outputs.iter().enumerate() {
                                buf[row + j] = lane_regs[r as usize * LANES + l];
                            }
                        }
                        *filled += m;
                    }
                    &buf[t * n_pre..(t + 1) * n_pre]
                }
                PrefixRows::Shared(table) => &table.values[t * n_pre..(t + 1) * n_pre],
            };
            // Broadcast this row's prefix values across the live lanes of
            // the core's pinned window.
            for (j, &v) in pre_row.iter().enumerate() {
                let d = (window + j) * LANES;
                self.core_lane_regs[d..d + k].fill(v);
            }
        }
        self.sys.core.run_lanes_one_row(
            self.rows[t].as_ref(),
            states,
            stride,
            k,
            &mut self.core_lane_regs,
            self.sys.relaxed(),
        );
        for l in 0..k {
            for (e, &r) in self.sys.core.outputs.iter().enumerate() {
                out[l * n_eqs + e] = self.core_lane_regs[r as usize * LANES + l];
            }
        }
    }

    /// Forcing rows materialized in the prefix buffer so far (tests).
    /// A shared [`PrefixTable`] arrives fully materialized.
    pub fn rows_swept(&self) -> usize {
        match &self.prefix {
            PrefixRows::Owned { filled, .. } => *filled,
            PrefixRows::Shared(table) => table.rows(),
        }
    }
}

/// Lock-step evaluation of up to [`LANES`] trajectories that each read
/// their **own forcing table** — one ensemble variant per lane. Opened by
/// [`CompiledSystem::ensemble_session`]; the dual of [`MultiSession`]
/// (which shares one table across lanes).
pub struct EnsembleSession<'a, R: AsRef<[f64]>> {
    sys: &'a CompiledSystem,
    tables: &'a [&'a [R]],
    n_rows: usize,
    /// Per-lane materialized prefix columns (empty when the system has no
    /// state-independent prefix).
    prefixes: Vec<PrefixTable>,
    core_lane_regs: Vec<f64>,
}

impl<R: AsRef<[f64]>> EnsembleSession<'_, R> {
    /// Number of variant trajectories in lock-step.
    pub fn lanes(&self) -> usize {
        self.tables.len()
    }

    /// Rows in every table.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Evaluate step `t` for all `k` variants. `states` is lane-major
    /// (`states[l * stride + idx]`, `stride = states.len() / k`); `out`
    /// receives `k * n_eqs` values, trajectory-major
    /// (`out[l * n_eqs + e]`).
    pub fn step(&mut self, t: usize, states: &[f64], out: &mut [f64]) {
        let k = self.tables.len();
        assert!(t < self.n_rows, "step {t} out of {} rows", self.n_rows);
        assert!(
            k > 0 && states.len().is_multiple_of(k),
            "states not lane-major"
        );
        let stride = states.len() / k;
        let n_eqs = self.sys.n_eqs;
        assert_eq!(out.len(), k * n_eqs);
        let n_pre = self.sys.prefix.outputs.len();
        let window = self.sys.core.consts.len();
        if n_pre > 0 {
            // Each lane reads its own table's prefix row at `t` into the
            // core's pinned window.
            for (l, pre) in self.prefixes.iter().enumerate() {
                let row = &pre.values[t * n_pre..(t + 1) * n_pre];
                for (j, &v) in row.iter().enumerate() {
                    self.core_lane_regs[(window + j) * LANES + l] = v;
                }
            }
        }
        let mut rows: [&[f64]; LANES] = [&[]; LANES];
        for (l, table) in self.tables.iter().enumerate() {
            rows[l] = table[t].as_ref();
        }
        self.sys.core.run_lanes_rows(
            &rows[..k],
            states,
            stride,
            k,
            &mut self.core_lane_regs,
            self.sys.relaxed(),
        );
        for l in 0..k {
            for (e, &r) in self.sys.core.outputs.iter().enumerate() {
                out[l * n_eqs + e] = self.core_lane_regs[r as usize * LANES + l];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;

    fn feq(a: f64, b: f64) -> bool {
        (a.is_nan() && b.is_nan()) || a == b
    }

    fn p(kind: u16, value: f64) -> Expr {
        Expr::Param(ParamSlot { kind, value })
    }

    /// A miniature river-like pair: shared growth term, state-dependent
    /// couplings, a state-independent forcing factor.
    fn sample_system() -> [Expr; 2] {
        // prefix-able factor: (v0 / 40) * max(v1, 0.5)
        let forcing = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Div, Expr::Var(0), Expr::Num(40.0)),
            Expr::bin(BinOp::Max, Expr::Var(1), Expr::Num(0.5)),
        );
        // shared term: s0 * forcing
        let growth = Expr::bin(BinOp::Mul, Expr::State(0), forcing.clone());
        let eq0 = Expr::bin(
            BinOp::Sub,
            growth.clone(),
            Expr::bin(
                BinOp::Mul,
                p(0, 0.2),
                Expr::bin(BinOp::Mul, Expr::State(0), Expr::State(1)),
            ),
        );
        let eq1 = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Mul, p(1, 0.6), growth),
            Expr::bin(BinOp::Mul, p(2, 0.1), Expr::State(1)),
        );
        [eq0, eq1]
    }

    fn check_equivalence(eqs: &[Expr], vars: &[f64], state: &[f64], opts: OptOptions) {
        let sys = CompiledSystem::compile(eqs, opts);
        let mut scratch = sys.scratch();
        let ctx = EvalContext { vars, state };
        let mut got = vec![0.0; eqs.len()];
        sys.eval_step(&ctx, &mut scratch, &mut got);
        for (e, eq) in eqs.iter().enumerate() {
            let want = eq.eval(&ctx);
            assert!(
                feq(got[e], want),
                "{opts:?} eq{e}: got {} want {}",
                got[e],
                want
            );
        }
    }

    /// Every tier whose execution is bit-exact on this machine. The simd
    /// tier joins only where its vector kernels are *not* live (feature
    /// off or no AVX2+FMA), i.e. exactly when it degrades to threaded.
    fn exact_tiers() -> Vec<OptOptions> {
        let mut tiers = vec![
            OptOptions::register(),
            OptOptions::fused(),
            OptOptions::full(),
            OptOptions::threaded(),
        ];
        if !crate::simd::active() {
            tiers.push(OptOptions::simd());
        }
        tiers
    }

    /// Every tier, the simd tier possibly relaxed — for tests comparing
    /// the VM's own execution paths against each other, which must agree
    /// bitwise regardless of fidelity.
    fn all_tiers() -> Vec<OptOptions> {
        vec![
            OptOptions::register(),
            OptOptions::fused(),
            OptOptions::full(),
            OptOptions::threaded(),
            OptOptions::simd(),
        ]
    }

    #[test]
    fn all_tiers_match_interpreter_on_sample() {
        let eqs = sample_system();
        for opts in exact_tiers() {
            check_equivalence(&eqs, &[20.0, 1.4], &[8.0, 1.2], opts);
            check_equivalence(&eqs, &[0.0, 0.0], &[0.0, 0.0], opts);
            check_equivalence(&eqs, &[-3.0, 1e9], &[1e9, -1e9], opts);
        }
    }

    #[test]
    fn cse_shares_subexpressions_across_equations() {
        let eqs = sample_system();
        let sys = CompiledSystem::compile(&eqs, OptOptions::register());
        let separate: usize = eqs.iter().map(|e| e.size()).sum();
        // The shared growth term and forcing factor must be emitted once.
        assert!(
            sys.core_len() + sys.prefix_len() < separate,
            "CSE failed: {} + {} !< {}",
            sys.core_len(),
            sys.prefix_len(),
            separate
        );
    }

    #[test]
    fn peephole_identities_are_value_preserving() {
        let x = || Expr::bin(BinOp::Add, Expr::Var(0), Expr::State(0));
        let cases = [
            Expr::bin(BinOp::Mul, x(), Expr::Num(1.0)),
            Expr::bin(BinOp::Mul, Expr::Num(1.0), x()),
            Expr::bin(BinOp::Add, x(), Expr::Num(0.0)),
            Expr::bin(BinOp::Sub, x(), Expr::Num(0.0)),
            Expr::bin(BinOp::Sub, Expr::Num(0.0), x()),
            Expr::bin(BinOp::Div, x(), Expr::Num(1.0)),
            Expr::bin(BinOp::Pow, x(), Expr::Num(1.0)),
            Expr::bin(BinOp::Min, x(), x()),
            Expr::bin(BinOp::Max, x(), x()),
            Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, x())),
        ];
        for (vars, state) in [
            (vec![2.5, 0.0], vec![-1.5]),
            (vec![0.0, 0.0], vec![0.0]),
            (vec![-7.0, 0.0], vec![7.0]),
            (vec![1e12, 0.0], vec![-1e12]),
        ] {
            for (i, eq) in cases.iter().enumerate() {
                for opts in exact_tiers() {
                    let sys = CompiledSystem::compile(std::slice::from_ref(eq), opts);
                    let ctx = EvalContext {
                        vars: &vars,
                        state: &state,
                    };
                    let mut out = [0.0];
                    sys.eval_step(&ctx, &mut sys.scratch(), &mut out);
                    assert!(
                        feq(out[0], eq.eval(&ctx)),
                        "case {i} tier {opts:?} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn pow_one_rewrites_but_keeps_protected_value() {
        // pow(x, 1) is NOT x under protected semantics; the peephole must
        // preserve exp(log(|x| max ε)) exactly.
        let eq = Expr::bin(BinOp::Pow, Expr::Var(0), Expr::Num(1.0));
        for v in [-3.0, 0.0, 2.0, 1e-30] {
            let ctx = EvalContext {
                vars: &[v],
                state: &[],
            };
            let sys = CompiledSystem::compile(std::slice::from_ref(&eq), OptOptions::full());
            let mut out = [0.0];
            sys.eval_step(&ctx, &mut sys.scratch(), &mut out);
            assert!(feq(out[0], eq.eval(&ctx)), "pow(x,1) diverged at x={v}");
        }
    }

    #[test]
    fn constant_system_folds_to_pinned_output() {
        let eq = Expr::bin(
            BinOp::Add,
            Expr::Num(2.0),
            Expr::bin(BinOp::Mul, Expr::Num(3.0), p(0, 4.0)),
        );
        let sys = CompiledSystem::compile(std::slice::from_ref(&eq), OptOptions::full());
        assert_eq!(sys.core_len(), 0, "constant equation should emit no code");
        let mut out = [0.0];
        sys.eval_step(
            &EvalContext {
                vars: &[],
                state: &[],
            },
            &mut sys.scratch(),
            &mut out,
        );
        assert_eq!(out[0], 14.0);
    }

    #[test]
    fn fusion_reduces_dispatch_count() {
        let eqs = sample_system();
        let plain = CompiledSystem::compile(&eqs, OptOptions::register());
        let fused = CompiledSystem::compile(&eqs, OptOptions::fused());
        assert!(
            fused.core_len() < plain.core_len(),
            "fusion did not shrink the program: {} !< {}",
            fused.core_len(),
            plain.core_len()
        );
    }

    #[test]
    fn split_moves_state_independent_work_to_prefix() {
        let eqs = sample_system();
        let full = CompiledSystem::compile(&eqs, OptOptions::full());
        assert!(full.n_pre() > 0, "sample system has a forcing-only factor");
        let fused = CompiledSystem::compile(&eqs, OptOptions::fused());
        assert!(
            full.core_len() < fused.core_len(),
            "split did not shrink the sequential core"
        );
    }

    #[test]
    fn session_matches_eval_step_across_chunk_boundaries() {
        let eqs = sample_system();
        // 3 chunks incl. a ragged tail.
        let n_rows = LANES * 2 + 7;
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|t| {
                vec![
                    (t as f64 * 0.37).sin() * 30.0,
                    (t as f64 * 0.11).cos() * 2.0,
                ]
            })
            .collect();
        for opts in all_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);
            let mut session = sys.session(&rows);
            let mut scratch = sys.scratch();
            let mut state = [8.0, 1.2];
            for (t, row) in rows.iter().enumerate() {
                let ctx = EvalContext {
                    vars: row,
                    state: &state,
                };
                let mut want = [0.0, 0.0];
                sys.eval_step(&ctx, &mut scratch, &mut want);
                let mut got = [0.0, 0.0];
                session.step(t, &state, &mut got);
                assert!(
                    feq(got[0], want[0]) && feq(got[1], want[1]),
                    "session diverged at t={t} for {opts:?}"
                );
                // Drive a state recurrence so core really is sequential.
                state[0] = (state[0] + 0.1 * got[0]).clamp(0.0, 1e6);
                state[1] = (state[1] + 0.1 * got[1]).clamp(0.0, 1e6);
            }
        }
    }

    #[test]
    fn session_sweeps_prefix_lazily() {
        let eqs = sample_system();
        let rows: Vec<Vec<f64>> = (0..LANES * 4).map(|t| vec![t as f64, 1.0]).collect();
        let sys = CompiledSystem::compile(&eqs, OptOptions::full());
        let mut session = sys.session(&rows);
        let mut out = [0.0, 0.0];
        session.step(0, &[1.0, 1.0], &mut out);
        assert_eq!(session.rows_swept(), LANES, "one chunk per first step");
        session.step(LANES - 1, &[1.0, 1.0], &mut out);
        assert_eq!(session.rows_swept(), LANES, "no re-sweep inside chunk");
        session.step(LANES, &[1.0, 1.0], &mut out);
        assert_eq!(session.rows_swept(), 2 * LANES);
    }

    #[test]
    fn multi_session_matches_solo_sessions_bitwise() {
        let eqs = sample_system();
        let n_rows = LANES + 9;
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|t| {
                vec![
                    (t as f64 * 0.53).sin() * 25.0,
                    (t as f64 * 0.19).cos() * 1.5,
                ]
            })
            .collect();
        let k = 5;
        let inits: Vec<[f64; 2]> = (0..k)
            .map(|l| [4.0 + l as f64 * 1.7, 0.3 + l as f64 * 0.41])
            .collect();
        for opts in all_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);

            // Reference: each trajectory through its own solo session.
            let mut want = vec![vec![[0.0f64; 2]; n_rows]; k];
            for l in 0..k {
                let mut session = sys.session(&rows);
                let mut state = inits[l];
                #[allow(clippy::needless_range_loop)]
                for t in 0..n_rows {
                    let mut d = [0.0, 0.0];
                    session.step(t, &state, &mut d);
                    want[l][t] = d;
                    state[0] = (state[0] + 0.1 * d[0]).clamp(0.0, 1e6);
                    state[1] = (state[1] + 0.1 * d[1]).clamp(0.0, 1e6);
                }
            }

            // Batched: all k trajectories in lock-step, lane-major states.
            let mut multi = sys.multi_session(&rows, k);
            let mut states: Vec<f64> = inits.iter().flatten().copied().collect();
            let mut out = vec![0.0; k * 2];
            #[allow(clippy::needless_range_loop)]
            for t in 0..n_rows {
                multi.step(t, &states, &mut out);
                for l in 0..k {
                    for e in 0..2 {
                        assert!(
                            feq(out[l * 2 + e], want[l][t][e]),
                            "lane {l} eq {e} diverged at t={t} for {opts:?}: {} vs {}",
                            out[l * 2 + e],
                            want[l][t][e],
                        );
                    }
                }
                for l in 0..k {
                    for e in 0..2 {
                        states[l * 2 + e] =
                            (states[l * 2 + e] + 0.1 * out[l * 2 + e]).clamp(0.0, 1e6);
                    }
                }
            }
        }
    }

    #[test]
    fn multi_session_shares_one_prefix_sweep_across_lanes() {
        let eqs = sample_system();
        let rows: Vec<Vec<f64>> = (0..LANES * 2).map(|t| vec![t as f64, 1.0]).collect();
        let sys = CompiledSystem::compile(&eqs, OptOptions::full());
        assert!(sys.n_pre() > 0, "sample system must have a prefix");
        let mut multi = sys.multi_session(&rows, 8);
        let mut out = vec![0.0; 8 * 2];
        multi.step(0, &[1.0; 16], &mut out);
        // One chunk sweep covers all 8 trajectories, not 8 sweeps.
        assert_eq!(multi.rows_swept(), LANES);
    }

    #[test]
    fn ensemble_session_matches_solo_sessions_bitwise() {
        let eqs = sample_system();
        let n_rows = LANES + 9;
        // Every lane gets its own forcing table (a perturbed variant).
        let k = 5;
        let tables: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|l| {
                (0..n_rows)
                    .map(|t| {
                        vec![
                            (t as f64 * 0.53 + l as f64 * 0.21).sin() * 25.0,
                            (t as f64 * 0.19).cos() * (1.5 + l as f64 * 0.13),
                        ]
                    })
                    .collect()
            })
            .collect();
        let init = [6.0, 0.9];
        for opts in all_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);

            // Reference: each variant through its own solo session.
            let mut want = vec![vec![[0.0f64; 2]; n_rows]; k];
            for l in 0..k {
                let mut session = sys.session(&tables[l]);
                let mut state = init;
                #[allow(clippy::needless_range_loop)]
                for t in 0..n_rows {
                    let mut d = [0.0, 0.0];
                    session.step(t, &state, &mut d);
                    want[l][t] = d;
                    state[0] = (state[0] + 0.1 * d[0]).clamp(0.0, 1e6);
                    state[1] = (state[1] + 0.1 * d[1]).clamp(0.0, 1e6);
                }
            }

            // Batched: all k variants in lock-step, per-lane tables.
            let refs: Vec<&[Vec<f64>]> = tables.iter().map(|t| t.as_slice()).collect();
            let mut ens = sys.ensemble_session(&refs);
            assert_eq!(ens.lanes(), k);
            assert_eq!(ens.rows(), n_rows);
            let mut states: Vec<f64> = (0..k).flat_map(|_| init).collect();
            let mut out = vec![0.0; k * 2];
            #[allow(clippy::needless_range_loop)]
            for t in 0..n_rows {
                ens.step(t, &states, &mut out);
                for l in 0..k {
                    for e in 0..2 {
                        assert!(
                            feq(out[l * 2 + e], want[l][t][e]),
                            "lane {l} eq {e} diverged at t={t} for {opts:?}: {} vs {}",
                            out[l * 2 + e],
                            want[l][t][e],
                        );
                    }
                }
                for l in 0..k {
                    for e in 0..2 {
                        states[l * 2 + e] =
                            (states[l * 2 + e] + 0.1 * out[l * 2 + e]).clamp(0.0, 1e6);
                    }
                }
            }
        }
    }

    #[test]
    fn ensemble_session_degenerate_single_lane_matches_multi() {
        let eqs = sample_system();
        let rows: Vec<Vec<f64>> = (0..LANES * 2)
            .map(|t| vec![(t as f64 * 0.31).sin() * 20.0, 1.0])
            .collect();
        let sys = CompiledSystem::compile(&eqs, OptOptions::full());
        let refs = [rows.as_slice()];
        let mut ens = sys.ensemble_session(&refs);
        let mut multi = sys.multi_session(&rows, 1);
        let state = [5.0, 1.1];
        let mut a = [0.0, 0.0];
        let mut b = [0.0, 0.0];
        for t in 0..rows.len() {
            ens.step(t, &state, &mut a);
            multi.step(t, &state, &mut b);
            assert!(feq(a[0], b[0]) && feq(a[1], b[1]), "diverged at t={t}");
        }
    }

    #[test]
    fn params_are_frozen_until_recompile() {
        let mut eq = Expr::bin(BinOp::Mul, Expr::State(0), p(0, 0.5));
        let ctx = EvalContext {
            vars: &[],
            state: &[4.0],
        };
        let sys = CompiledSystem::compile(std::slice::from_ref(&eq), OptOptions::full());
        let mut out = [0.0];
        sys.eval_step(&ctx, &mut sys.scratch(), &mut out);
        assert_eq!(out[0], 2.0);
        for s in eq.param_slots_mut() {
            s.value = 2.0;
        }
        sys.eval_step(&ctx, &mut sys.scratch(), &mut out);
        assert_eq!(out[0], 2.0, "compiled artifact must not see the mutation");
        let sys2 = CompiledSystem::compile(std::slice::from_ref(&eq), OptOptions::full());
        sys2.eval_step(&ctx, &mut sys2.scratch(), &mut out);
        assert_eq!(out[0], 8.0);
    }

    #[test]
    fn compile_checked_rejects_out_of_range_indices() {
        let bad_var = Expr::bin(BinOp::Add, Expr::Var(3), Expr::State(0));
        let err = CompiledSystem::compile_checked(
            std::slice::from_ref(&bad_var),
            2,
            1,
            OptOptions::full(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CompileError::VarOutOfRange { index: 3, arity: 2 }
        ));
        let bad_state = Expr::State(1);
        let err = CompiledSystem::compile_checked(
            std::slice::from_ref(&bad_state),
            2,
            1,
            OptOptions::full(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CompileError::StateOutOfRange { index: 1, arity: 1 }
        ));
        assert!(
            CompiledSystem::compile_checked(&sample_system(), 2, 2, OptOptions::full()).is_ok()
        );
    }

    #[test]
    fn compiled_systems_pass_self_check_with_no_dead_code() {
        let eqs = sample_system();
        for opts in all_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);
            sys.self_check().unwrap_or_else(|e| panic!("{opts:?}: {e}"));
            assert!(sys.core().dead_instructions().is_empty());
            assert!(sys.prefix().dead_instructions().is_empty());
        }
    }

    #[test]
    fn check_rejects_raw_corruption() {
        // Out-of-bounds read register.
        let oob = RegProgram::from_raw_unchecked(
            vec![RInstr::Un {
                op: UnOp::Neg,
                dst: 1,
                a: 9,
            }],
            vec![],
            0,
            2,
            vec![1],
            0,
            0,
        );
        assert!(oob.check().unwrap_err().contains("register 9"));
        // Write into the pinned constant region.
        let pinned = RegProgram::from_raw_unchecked(
            vec![RInstr::LoadVar { dst: 0, idx: 0 }],
            vec![1.0],
            0,
            2,
            vec![0],
            1,
            0,
        );
        assert!(pinned.check().unwrap_err().contains("pinned"));
    }

    #[test]
    fn dead_instruction_detection_and_elimination() {
        // r1 = vars[0] (dead: overwritten before any read), r1 = state[0].
        let mut prog = RegProgram::from_raw_unchecked(
            vec![
                RInstr::LoadVar { dst: 1, idx: 0 },
                RInstr::LoadState { dst: 1, idx: 0 },
            ],
            vec![0.5],
            0,
            2,
            vec![1],
            1,
            1,
        );
        assert_eq!(prog.dead_instructions(), vec![0]);
        assert_eq!(prog.eliminate_dead(), 1);
        assert_eq!(prog.len(), 1);
        assert!(prog.dead_instructions().is_empty());
    }

    #[test]
    fn self_check_catches_state_load_in_prefix() {
        let eqs = sample_system();
        let sys = CompiledSystem::compile(&eqs, OptOptions::full());
        assert!(sys.n_pre() > 0);
        // Graft a LoadState into the (state-independent) prefix program.
        let mut code = sys.prefix().instructions().to_vec();
        let dst = code.last().expect("prefix has instructions").dst();
        code.push(RInstr::LoadState { dst, idx: 0 });
        let corrupt_prefix = RegProgram::from_raw_unchecked(
            code,
            sys.prefix().consts().to_vec(),
            0,
            sys.prefix().n_regs() as u16,
            sys.prefix().outputs().to_vec(),
            sys.prefix().needs_vars(),
            0,
        );
        let corrupt = CompiledSystem::from_raw_parts(
            corrupt_prefix,
            sys.core().clone(),
            sys.n_eqs(),
            sys.options(),
        );
        let err = corrupt.self_check().unwrap_err();
        assert!(err.contains("state"), "{err}");
    }

    #[test]
    fn register_file_stays_compact() {
        let eqs = sample_system();
        let sys = CompiledSystem::compile(&eqs, OptOptions::full());
        // Linear scan with a free list should need far fewer registers
        // than SSA temporaries; the sample system fits comfortably in 16.
        assert!(
            sys.core().n_regs() <= 16,
            "core file: {}",
            sys.core().n_regs()
        );
        assert!(sys.prefix().n_regs() <= 16);
    }

    #[test]
    fn sub_patterns_fuse_and_stay_exact() {
        // s0*s1 - s0  → MulSub;  s0 - s1*s1 → SubMul.
        let mul_sub = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Mul, Expr::State(0), Expr::State(1)),
            Expr::State(0),
        );
        let sub_mul = Expr::bin(
            BinOp::Sub,
            Expr::State(0),
            Expr::bin(BinOp::Mul, Expr::State(1), Expr::State(1)),
        );
        // Pin the table to ALL: this test is about the *patterns* firing
        // and staying exact, independent of what the current corpus selects.
        let opts = OptOptions {
            table: FusionTable::ALL,
            ..OptOptions::fused()
        };
        for eq in [&mul_sub, &sub_mul] {
            let sys = CompiledSystem::compile(std::slice::from_ref(eq), opts);
            let fused_shapes = sys
                .core()
                .instructions()
                .iter()
                .filter(|i| matches!(i, RInstr::MulSub { .. } | RInstr::SubMul { .. }))
                .count();
            assert!(fused_shapes >= 1, "no Sub-shape fused for {eq:?}");
            for state in [[2.0, 3.0], [0.0, 0.0], [-1.5, 1e9], [f64::NAN, 1.0]] {
                let ctx = EvalContext {
                    vars: &[],
                    state: &state,
                };
                let mut out = [0.0];
                sys.eval_step(&ctx, &mut sys.scratch(), &mut out);
                assert!(feq(out[0], eq.eval(&ctx)), "diverged at {state:?}");
            }
        }
    }

    #[test]
    fn fusion_table_gates_patterns() {
        let eqs = sample_system();
        let all = CompiledSystem::compile(
            &eqs,
            OptOptions {
                table: FusionTable::ALL,
                ..OptOptions::fused()
            },
        );
        // fuse=true with an empty table must equal the register tier's
        // instruction stream (nothing is permitted to fire).
        let none = CompiledSystem::compile(
            &eqs,
            OptOptions {
                table: FusionTable::NONE,
                ..OptOptions::fused()
            },
        );
        let register = CompiledSystem::compile(&eqs, OptOptions::register());
        assert_eq!(none.core().instructions(), register.core().instructions());
        assert!(all.core_len() < none.core_len());
    }

    #[test]
    fn tier_names_round_trip_and_map_to_options() {
        for tier in Tier::ALL {
            assert_eq!(Tier::parse(tier.name()), Some(tier));
            let sys = CompiledSystem::compile(&sample_system(), tier.options());
            assert_eq!(sys.tier(), tier, "options round-trip for {tier:?}");
        }
        assert_eq!(Tier::parse("full"), Some(Tier::Split), "historical alias");
        assert_eq!(Tier::parse("bogus"), None);
    }

    #[test]
    fn fidelity_policy_gates_relaxed_tiers() {
        assert_eq!(Tier::fastest(FidelityPolicy::BitExact), Tier::Threaded);
        let fast = Tier::fastest(FidelityPolicy::AllowRelaxed);
        assert!(FidelityPolicy::AllowRelaxed.allows(fast.fidelity()));
        assert!(FidelityPolicy::BitExact.allows(Fidelity::BitExact));
        assert!(!FidelityPolicy::BitExact.allows(Fidelity::RelaxedSimd));
        for tier in [Tier::Register, Tier::Fused, Tier::Split, Tier::Threaded] {
            assert_eq!(tier.fidelity(), Fidelity::BitExact);
        }
        let sys = CompiledSystem::compile(&sample_system(), OptOptions::simd());
        assert_eq!(sys.relaxed(), crate::simd::active());
        assert_eq!(sys.fidelity(), Tier::Simd.fidelity());
    }

    /// With live SIMD kernels the simd tier is *relaxed*: transcendentals
    /// track the interpreter to ~1e-12 relative error instead of bitwise.
    #[cfg(feature = "simd")]
    #[test]
    fn relaxed_simd_tier_tracks_interpreter_within_tolerance() {
        if !crate::simd::active() {
            return; // no AVX2+FMA: the tier is bit-exact, covered above
        }
        // Transcendental-heavy equation: exp/log/pow in prefix and core.
        let eq = Expr::bin(
            BinOp::Sub,
            Expr::bin(
                BinOp::Mul,
                Expr::State(0),
                Expr::un(
                    UnOp::Exp,
                    Expr::bin(BinOp::Div, Expr::Var(0), Expr::Num(30.0)),
                ),
            ),
            Expr::bin(
                BinOp::Pow,
                Expr::un(
                    UnOp::Log,
                    Expr::bin(BinOp::Add, Expr::Var(1), Expr::Num(1.0)),
                ),
                Expr::Num(1.7),
            ),
        );
        let sys = CompiledSystem::compile(std::slice::from_ref(&eq), OptOptions::simd());
        assert!(sys.relaxed());
        let rows: Vec<Vec<f64>> = (0..LANES + 5)
            .map(|t| vec![(t as f64 * 0.7).sin() * 25.0, t as f64 * 0.3 + 0.1])
            .collect();
        let mut session = sys.session(&rows);
        let mut state = [4.0];
        for (t, row) in rows.iter().enumerate() {
            let ctx = EvalContext {
                vars: row,
                state: &state,
            };
            let want = eq.eval(&ctx);
            let mut got = [0.0];
            session.step(t, &state, &mut got);
            let rel = (got[0] - want).abs() / want.abs().max(1e-300);
            assert!(rel < 1e-11, "t={t}: rel err {rel:e} ({} vs {want})", got[0]);
            state[0] = (state[0] + 0.05 * got[0]).clamp(0.1, 1e6);
        }
    }
}
