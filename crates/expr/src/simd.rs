//! Explicit SoA-SIMD kernels for the columnar lane interpreters.
//!
//! Behind the `simd` cargo feature (x86-64 only, AVX2+FMA verified at
//! runtime by [`active`]), the [`LANES`]-wide stripe loops of
//! `RegProgram::run_lanes` / `run_lanes_one_row` dispatch to the
//! `__m256d` kernels here instead of the scalar auto-vectorization
//! candidates. Two kinds of kernel live side by side:
//!
//! * **Bit-exact kernels** — add/sub/mul, the protected division
//!   (mask-and-blend of the `|y| < ε → 0` guard), `f64::min`/`max`
//!   emulation (one extra blend to reproduce IEEE `minNum` NaN
//!   semantics), sign flip, and the three fused triples (multiply and
//!   add/sub rounded separately — `_mm256_mul_pd` then `_mm256_add_pd`,
//!   never an FMA). Per-lane these produce the same bits as the scalar
//!   protected operators on every input, so *every* split-family tier
//!   uses them when the feature is on; the tier-equality contract is
//!   untouched.
//!
//! * **Relaxed kernels** — vectorized `exp`/`log`/`pow`
//!   ([`crate::fastmath`]'s Cephes rationals, FMA-for-FMA identical per
//!   lane to the scalar versions, but *not* to libm). Only the `simd`
//!   tier ([`Fidelity::RelaxedSimd`](crate::vm::Fidelity)) may select
//!   these; the registry and `bench_vm --validate` both check the
//!   policy.
//!
//! Every kernel operates on full 32-lane stripes (`8 × __m256d`) of the
//! flat lane register file; ragged tail chunks (`m < LANES`) fall back
//! to the scalar kernels at the call site. Callers guarantee — and
//! debug-assert here — that `off + LANES <= regs.len()` for every
//! stripe offset, which holds because offsets are `r * LANES` for
//! registers `r < n_regs` proved by `RegProgram::validate()`
//! (re-proved as `lint::absint` obligations, site class "simd
//! kernels").

#![allow(clippy::missing_safety_doc)] // pub(crate) kernels; contract in module docs

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) use imp::*;

/// Whether the AVX2+FMA vector kernels are live in this build on this
/// machine — the public probe behind [`crate::Tier::fidelity`] and the
/// bench's `"simd_active"` report field.
pub fn active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        imp::active()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        fallback::active()
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod imp {
    use crate::eval::{DIV_EPS, EXP_CLAMP, LOG_EPS};
    use crate::fastmath::{
        EXP_C1, EXP_C2, EXP_P, EXP_Q, LOG2E, LOG_LN2_HI, LOG_LN2_LO, LOG_P, LOG_Q, SQRT_HALF,
    };
    use crate::vm::LANES;
    use core::arch::x86_64::*;
    use std::sync::OnceLock;

    /// AVX2 + FMA available on this machine (checked once, cached).
    pub fn active() -> bool {
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    // SAFETY (shared by every kernel in this module): callers hold a
    // `&mut [f64]` lane register file and pass stripe offsets
    // `r * LANES` for registers `r < n_regs` validated at program
    // construction, against a buffer asserted `n_regs * LANES` long —
    // so every `offset + i + 4 <= regs.len()` load/store below is in
    // bounds (debug-asserted per kernel). Unaligned load/store
    // intrinsics are used throughout. The `avx2,fma` target features
    // are guaranteed by the `active()` gate at every call site.
    macro_rules! kern2 {
        ($rr:ident, $cl:ident, $cr:ident, $op:ident) => {
            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $rr(regs: &mut [f64], d: usize, a: usize, b: usize) {
                debug_assert!(
                    d + LANES <= regs.len() && a + LANES <= regs.len() && b + LANES <= regs.len()
                );
                let p = regs.as_mut_ptr();
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(p.add(a + i));
                        let y = _mm256_loadu_pd(p.add(b + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y));
                    }
                }
            }

            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $cl(regs: &mut [f64], d: usize, c: f64, b: usize) {
                debug_assert!(d + LANES <= regs.len() && b + LANES <= regs.len());
                let p = regs.as_mut_ptr();
                let x = _mm256_set1_pd(c);
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let y = _mm256_loadu_pd(p.add(b + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y));
                    }
                }
            }

            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $cr(regs: &mut [f64], d: usize, a: usize, c: f64) {
                debug_assert!(d + LANES <= regs.len() && a + LANES <= regs.len());
                let p = regs.as_mut_ptr();
                let y = _mm256_set1_pd(c);
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(p.add(a + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y));
                    }
                }
            }
        };
    }

    // SAFETY: same shared argument as `kern2` above for the register
    // stripe; the gathered operand is a caller-owned `[f64; LANES]`
    // stack array, so its `i + 4 <= LANES` loads are in bounds by the
    // loop shape alone.
    macro_rules! kern2v {
        ($vl:ident, $vr:ident, $op:ident) => {
            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $vl(regs: &mut [f64], d: usize, v: &[f64; LANES], b: usize) {
                debug_assert!(d + LANES <= regs.len() && b + LANES <= regs.len());
                let p = regs.as_mut_ptr();
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(v.as_ptr().add(i));
                        let y = _mm256_loadu_pd(p.add(b + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y));
                    }
                }
            }

            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $vr(regs: &mut [f64], d: usize, a: usize, v: &[f64; LANES]) {
                debug_assert!(d + LANES <= regs.len() && a + LANES <= regs.len());
                let p = regs.as_mut_ptr();
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(p.add(a + i));
                        let y = _mm256_loadu_pd(v.as_ptr().add(i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y));
                    }
                }
            }
        };
    }

    // SAFETY: same shared argument as `kern2` above (one input stripe).
    macro_rules! kern1 {
        ($name:ident, $op:ident) => {
            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $name(regs: &mut [f64], d: usize, a: usize) {
                debug_assert!(d + LANES <= regs.len() && a + LANES <= regs.len());
                let p = regs.as_mut_ptr();
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(p.add(a + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x));
                    }
                }
            }
        };
    }

    // SAFETY: same shared argument as `kern2` above (three input stripes).
    macro_rules! kern3 {
        ($name:ident, $op:ident) => {
            #[target_feature(enable = "avx2,fma")]
            pub(crate) unsafe fn $name(regs: &mut [f64], d: usize, a: usize, b: usize, c: usize) {
                debug_assert!(
                    d + LANES <= regs.len()
                        && a + LANES <= regs.len()
                        && b + LANES <= regs.len()
                        && c + LANES <= regs.len()
                );
                let p = regs.as_mut_ptr();
                for i in (0..LANES).step_by(4) {
                    // SAFETY: see the shared kernel argument above.
                    unsafe {
                        let x = _mm256_loadu_pd(p.add(a + i));
                        let y = _mm256_loadu_pd(p.add(b + i));
                        let z = _mm256_loadu_pd(p.add(c + i));
                        _mm256_storeu_pd(p.add(d + i), $op(x, y, z));
                    }
                }
            }
        };
    }

    // ---- element ops (4 lanes at a time) --------------------------------

    // SAFETY (all element helpers): pure register arithmetic, no memory
    // access; `avx2,fma` guaranteed transitively by the calling kernel.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_add(x: __m256d, y: __m256d) -> __m256d {
        _mm256_add_pd(x, y)
    }

    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_sub(x: __m256d, y: __m256d) -> __m256d {
        _mm256_sub_pd(x, y)
    }

    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_mul(x: __m256d, y: __m256d) -> __m256d {
        _mm256_mul_pd(x, y)
    }

    /// Protected division: `|y| < ε → 0`, bit-exact vs `protected_div`.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_div_p(x: __m256d, y: __m256d) -> __m256d {
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        // NLT + unordered: the guard fires only when `|y| < ε` compares
        // *ordered* true — a NaN divisor falls through to the division
        // and propagates, exactly like the scalar `y.abs() < ε` branch.
        let ok = _mm256_cmp_pd::<_CMP_NLT_UQ>(_mm256_and_pd(y, absmask), _mm256_set1_pd(DIV_EPS));
        // Quotients in the guarded lanes are discarded by the blend
        // (SIMD fp exceptions are masked; no traps).
        _mm256_and_pd(ok, _mm256_div_pd(x, y))
    }

    /// `f64::min` (IEEE minNum): `vminpd` returns the second operand
    /// when either is NaN, so patch the `y is NaN → x` half back in.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_min_p(x: __m256d, y: __m256d) -> __m256d {
        let m = _mm256_min_pd(x, y);
        let y_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(y, y);
        _mm256_blendv_pd(m, x, y_nan)
    }

    /// `f64::max` (IEEE maxNum); see [`e_min_p`].
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_max_p(x: __m256d, y: __m256d) -> __m256d {
        let m = _mm256_max_pd(x, y);
        let y_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(y, y);
        _mm256_blendv_pd(m, x, y_nan)
    }

    /// Sign flip — identical to scalar negation on every f64.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_neg(x: __m256d) -> __m256d {
        _mm256_xor_pd(x, _mm256_set1_pd(-0.0))
    }

    /// Two separate roundings — never contracted to an FMA.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_mul_add(x: __m256d, y: __m256d, z: __m256d) -> __m256d {
        _mm256_add_pd(_mm256_mul_pd(x, y), z)
    }

    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_mul_sub(x: __m256d, y: __m256d, z: __m256d) -> __m256d {
        _mm256_sub_pd(_mm256_mul_pd(x, y), z)
    }

    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_sub_mul(x: __m256d, y: __m256d, z: __m256d) -> __m256d {
        _mm256_sub_pd(x, _mm256_mul_pd(y, z))
    }

    /// Vector `fast_exp` — operation-for-operation the scalar
    /// [`crate::fastmath::fast_exp`], so each lane is bit-identical to
    /// the scalar fallback. Relaxed fidelity only.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_exp(x0: __m256d) -> __m256d {
        let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(x0, x0);
        let x = _mm256_max_pd(
            _mm256_min_pd(x0, _mm256_set1_pd(EXP_CLAMP)),
            _mm256_set1_pd(-EXP_CLAMP),
        );
        let n = _mm256_floor_pd(_mm256_fmadd_pd(
            x,
            _mm256_set1_pd(LOG2E),
            _mm256_set1_pd(0.5),
        ));
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(EXP_C1), x);
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(EXP_C2), r);
        let rr = _mm256_mul_pd(r, r);
        let p = _mm256_fmadd_pd(_mm256_set1_pd(EXP_P[0]), rr, _mm256_set1_pd(EXP_P[1]));
        let p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(EXP_P[2]));
        let p = _mm256_mul_pd(p, r);
        let q = _mm256_fmadd_pd(_mm256_set1_pd(EXP_Q[0]), rr, _mm256_set1_pd(EXP_Q[1]));
        let q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(EXP_Q[2]));
        let q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(EXP_Q[3]));
        let e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
        let y = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));
        // 2^n via the exponent field; |n| ≤ 73 keeps it normal.
        let ni = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
        let bits = _mm256_slli_epi64::<52>(_mm256_add_epi64(ni, _mm256_set1_epi64x(1023)));
        let y = _mm256_mul_pd(y, _mm256_castsi256_pd(bits));
        _mm256_blendv_pd(y, x0, nan)
    }

    /// Vector `fast_log`; see [`e_exp`] for the mirroring contract.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_log(x0: __m256d) -> __m256d {
        let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(x0, x0);
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let x = _mm256_max_pd(_mm256_and_pd(x0, absmask), _mm256_set1_pd(LOG_EPS));
        let inf = _mm256_cmp_pd::<_CMP_EQ_OQ>(x, _mm256_set1_pd(f64::INFINITY));
        let bits = _mm256_castpd_si256(x);
        // Biased exponent as f64 via the 2^52 magic-number trick.
        let eb = _mm256_and_si256(_mm256_srli_epi64::<52>(bits), _mm256_set1_epi64x(0x7ff));
        let magic = _mm256_set1_epi64x(0x4330_0000_0000_0000);
        let ef = _mm256_sub_pd(
            _mm256_castsi256_pd(_mm256_or_si256(eb, magic)),
            _mm256_castsi256_pd(magic),
        );
        let ef = _mm256_sub_pd(ef, _mm256_set1_pd(1022.0));
        let mant = _mm256_set1_epi64x(0x000f_ffff_ffff_ffff);
        let m = _mm256_castsi256_pd(_mm256_or_si256(
            _mm256_and_si256(bits, mant),
            _mm256_set1_epi64x(0x3fe0_0000_0000_0000),
        ));
        let small = _mm256_cmp_pd::<_CMP_LT_OQ>(m, _mm256_set1_pd(SQRT_HALF));
        let ef = _mm256_sub_pd(ef, _mm256_and_pd(small, _mm256_set1_pd(1.0)));
        let m = _mm256_blendv_pd(
            _mm256_sub_pd(m, _mm256_set1_pd(1.0)),
            _mm256_fmadd_pd(m, _mm256_set1_pd(2.0), _mm256_set1_pd(-1.0)),
            small,
        );
        let z = _mm256_mul_pd(m, m);
        let p = _mm256_fmadd_pd(_mm256_set1_pd(LOG_P[0]), m, _mm256_set1_pd(LOG_P[1]));
        let p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(LOG_P[2]));
        let p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(LOG_P[3]));
        let p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(LOG_P[4]));
        let p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(LOG_P[5]));
        let q = _mm256_add_pd(m, _mm256_set1_pd(LOG_Q[0]));
        let q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(LOG_Q[1]));
        let q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(LOG_Q[2]));
        let q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(LOG_Q[3]));
        let q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(LOG_Q[4]));
        let y = _mm256_mul_pd(_mm256_mul_pd(m, z), _mm256_div_pd(p, q));
        let y = _mm256_fmadd_pd(ef, _mm256_set1_pd(LOG_LN2_LO), y);
        let y = _mm256_fnmadd_pd(z, _mm256_set1_pd(0.5), y);
        let res = _mm256_fmadd_pd(ef, _mm256_set1_pd(LOG_LN2_HI), _mm256_add_pd(m, y));
        let res = _mm256_blendv_pd(res, _mm256_set1_pd(f64::INFINITY), inf);
        _mm256_blendv_pd(res, x0, nan)
    }

    /// Vector `fast_pow`: `exp(y · log(x))`, relaxed fidelity only.
    // SAFETY: `unsafe` only for `target_feature`; register-only math
    // (no memory access) — see the element-helpers note above.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn e_pow(x: __m256d, y: __m256d) -> __m256d {
        // SAFETY: register-only helpers under the same target features.
        unsafe { e_exp(_mm256_mul_pd(y, e_log(x))) }
    }

    // ---- stripe kernels --------------------------------------------------

    kern2!(add_rr, add_cl, add_cr, e_add);
    kern2!(sub_rr, sub_cl, sub_cr, e_sub);
    kern2!(mul_rr, mul_cl, mul_cr, e_mul);
    kern2!(div_rr, div_cl, div_cr, e_div_p);
    kern2!(min_rr, min_cl, min_cr, e_min_p);
    kern2!(max_rr, max_cl, max_cr, e_max_p);
    kern2!(pow_rr, pow_cl, pow_cr, e_pow);
    // Gathered-operand variants for the `VarBinL`/`VarBinR` row sweep,
    // where the variable side differs per lane (consecutive rows) and is
    // gathered into a stack array at the call site. Only the protected
    // division (whose guard branch defeats auto-vectorization) and the
    // relaxed pow (a function call per lane otherwise) pay for explicit
    // kernels; the remaining ops auto-vectorize fine as scalar loops.
    kern2v!(div_vl, div_vr, e_div_p);
    kern2v!(pow_vl, pow_vr, e_pow);
    kern1!(neg_k, e_neg);
    kern1!(exp_k, e_exp);
    kern1!(log_k, e_log);
    kern3!(mul_add_k, e_mul_add);
    kern3!(mul_sub_k, e_mul_sub);
    kern3!(sub_mul_k, e_sub_mul);

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::eval::{protected_div, protected_log};
        use crate::fastmath::{fast_exp, fast_log, fast_pow};

        fn feq(a: f64, b: f64) -> bool {
            (a.is_nan() && b.is_nan()) || a == b
        }

        /// Drive a 1-in 1-out kernel over a 2-stripe file.
        fn run1(k: unsafe fn(&mut [f64], usize, usize), input: &[f64; LANES]) -> Vec<f64> {
            let mut regs = vec![0.0; 2 * LANES];
            regs[LANES..].copy_from_slice(input);
            assert!(active(), "test host must have avx2+fma");
            // SAFETY: stripes 0 and 1 of a 2-stripe buffer; avx2+fma
            // asserted above.
            unsafe { k(&mut regs, 0, LANES) };
            regs[..LANES].to_vec()
        }

        #[test]
        fn vector_exp_log_bit_match_scalar_fastmath() {
            let mut xs = [0.0; LANES];
            for (i, x) in xs.iter_mut().enumerate() {
                *x = (i as f64 - 15.0) * 3.7 + 0.123;
            }
            xs[0] = f64::NAN;
            xs[1] = f64::INFINITY;
            xs[2] = -1e300;
            xs[3] = 0.0;
            xs[4] = 1e-13;
            let got = run1(exp_k, &xs);
            for (l, &x) in xs.iter().enumerate() {
                assert!(feq(got[l], fast_exp(x)), "exp lane {l}: x={x}");
            }
            let got = run1(log_k, &xs);
            for (l, &x) in xs.iter().enumerate() {
                assert!(feq(got[l], fast_log(x)), "log lane {l}: x={x}");
            }
        }

        #[test]
        fn bit_exact_kernels_match_protected_ops() {
            let mut a = [0.0; LANES];
            let mut b = [0.0; LANES];
            for i in 0..LANES {
                a[i] = (i as f64 * 1.37 - 20.0) * 1e3;
                b[i] = (i as f64 * 0.73 - 10.0) * 1e-8;
            }
            a[0] = f64::NAN;
            b[1] = f64::NAN;
            b[2] = 0.0;
            b[3] = 1e-13;
            a[4] = f64::INFINITY;
            b[5] = f64::NEG_INFINITY;
            let mut regs = vec![0.0; 3 * LANES];
            regs[LANES..2 * LANES].copy_from_slice(&a);
            regs[2 * LANES..].copy_from_slice(&b);
            assert!(active(), "test host must have avx2+fma");
            type K2 = unsafe fn(&mut [f64], usize, usize, usize);
            #[allow(clippy::type_complexity)]
            let cases: [(K2, fn(f64, f64) -> f64); 4] = [
                (div_rr, protected_div),
                (min_rr, f64::min),
                (max_rr, f64::max),
                (sub_rr, |x, y| x - y),
            ];
            for (k, f) in cases {
                // SAFETY: stripes 0..3 of a 3-stripe buffer; avx2+fma
                // asserted above.
                unsafe { k(&mut regs, 0, LANES, 2 * LANES) };
                for l in 0..LANES {
                    assert!(
                        feq(regs[l], f(a[l], b[l])),
                        "lane {l}: {} vs {}",
                        regs[l],
                        f(a[l], b[l])
                    );
                }
            }
            let _ = protected_log; // silence unused when cfg combinations shift
        }

        #[test]
        fn gathered_operand_kernels_match_scalar() {
            let mut v = [0.0; LANES];
            let mut b = [0.0; LANES];
            for i in 0..LANES {
                v[i] = (i as f64 * 1.37 - 20.0) * 1e2;
                b[i] = i as f64 * 0.31 - 4.0;
            }
            v[0] = f64::NAN;
            b[1] = 0.0;
            b[2] = 1e-13;
            v[3] = f64::INFINITY;
            v[4] = 0.0;
            let mut regs = vec![0.0; 2 * LANES];
            regs[LANES..].copy_from_slice(&b);
            assert!(active(), "test host must have avx2+fma");
            // SAFETY (all four calls): stripes 0 and 1 of a 2-stripe
            // buffer plus a stack-owned gathered operand; avx2+fma
            // asserted above. Stripe 1 (the register operand) is never a
            // destination, so each call sees the same inputs.
            unsafe { div_vl(&mut regs, 0, &v, LANES) };
            for l in 0..LANES {
                assert!(feq(regs[l], protected_div(v[l], b[l])), "div_vl lane {l}");
            }
            // SAFETY: see above.
            unsafe { div_vr(&mut regs, 0, LANES, &v) };
            for l in 0..LANES {
                assert!(feq(regs[l], protected_div(b[l], v[l])), "div_vr lane {l}");
            }
            // SAFETY: see above.
            unsafe { pow_vl(&mut regs, 0, &v, LANES) };
            for l in 0..LANES {
                assert!(feq(regs[l], fast_pow(v[l], b[l])), "pow_vl lane {l}");
            }
            // SAFETY: see above.
            unsafe { pow_vr(&mut regs, 0, LANES, &v) };
            for l in 0..LANES {
                assert!(feq(regs[l], fast_pow(b[l], v[l])), "pow_vr lane {l}");
            }
        }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod fallback {
    /// SIMD unavailable (feature off or non-x86-64): the relaxed tier
    /// degrades to the bit-exact threaded tier.
    pub fn active() -> bool {
        false
    }
}
