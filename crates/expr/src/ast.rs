//! The expression AST and basic structural operations.

/// Binary operators available to process equations.
///
/// `Min`/`Max` appear in the expert model (Liebig's law of the minimum for
/// nutrient limitation, and the two-optimum temperature response); the
/// remaining four are the arithmetic connectives the revision grammar offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Pow,
}

impl BinOp {
    /// Whether `a op b == b op a`, used by simplification to canonicalise
    /// operand order (raising fitness-cache hit rates).
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }

    /// All binary operators, in a stable order.
    pub const ALL: [BinOp; 7] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Min,
        BinOp::Max,
        BinOp::Pow,
    ];

    /// Symbol used by the pretty-printer and parser.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Pow => "pow",
        }
    }
}

/// Unary operators. `Log` and `Exp` are the two transcendental extenders the
/// paper's Table II allows; `Neg` arises from simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    Neg,
    Log,
    Exp,
}

impl UnOp {
    /// All unary operators, in a stable order.
    pub const ALL: [UnOp; 3] = [UnOp::Neg, UnOp::Log, UnOp::Exp];

    /// Name used by the pretty-printer and parser.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Log => "log",
            UnOp::Exp => "exp",
        }
    }
}

/// A mutable constant parameter embedded in an expression.
///
/// `kind` indexes a parameter-specification table owned by the domain layer
/// (for the river model: Table III of the paper, which gives each constant a
/// mean and an exploration range). `value` is the current, evolved value —
/// Gaussian mutation walks the tree and perturbs these in place, with the
/// current value acting as the mean of the next draw, exactly as §III-B3
/// describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSlot {
    /// Index into the domain layer's parameter-spec table. Anonymous "R"
    /// constants introduced by revision use a dedicated kind.
    pub kind: u16,
    /// Current value of the constant.
    pub value: f64,
}

/// An expression tree over parameters, temporal variables and state
/// variables. This is the *phenotype* representation: TAG derivation trees
/// (the genotype) lower to `Expr` for fitness evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A plain numeric literal (not subject to Gaussian mutation).
    Num(f64),
    /// A mutable constant parameter (physiological rate or an evolved "R").
    Param(ParamSlot),
    /// A temporal variable, indexed into the per-step forcing vector.
    Var(u8),
    /// A state variable, indexed into the integrated state vector
    /// (for the river model: 0 = B_Phy, 1 = B_Zoo).
    State(u8),
    /// Unary application.
    Unary(UnOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for unary nodes.
    pub fn un(op: UnOp, inner: Expr) -> Expr {
        Expr::Unary(op, Box::new(inner))
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Param(_) | Expr::Var(_) | Expr::State(_) => 1,
            Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Height of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Param(_) | Expr::Var(_) | Expr::State(_) => 1,
            Expr::Unary(_, a) => 1 + a.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Visit every node (preorder).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary(_, a) => a.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Visit every node mutably (preorder). The callback must not change the
    /// node's variant arity (it may rewrite values in place).
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Unary(_, a) => a.visit_mut(f),
            Expr::Binary(_, a, b) => {
                a.visit_mut(f);
                b.visit_mut(f);
            }
            _ => {}
        }
    }

    /// Collect mutable references to every parameter slot in the tree —
    /// the unit Gaussian mutation operates on.
    pub fn param_slots_mut(&mut self) -> Vec<&mut ParamSlot> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a mut Expr, out: &mut Vec<&'a mut ParamSlot>) {
            match e {
                Expr::Param(p) => out.push(p),
                Expr::Unary(_, a) => go(a, out),
                Expr::Binary(_, a, b) => {
                    go(a, out);
                    go(b, out);
                }
                _ => {}
            }
        }
        go(self, &mut out);
        out
    }

    /// Indices of every distinct temporal variable referenced by the tree,
    /// sorted ascending. Used by the selectivity analysis (Fig. 9).
    pub fn variables(&self) -> Vec<u8> {
        let mut vars = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        });
        vars.sort_unstable();
        vars
    }

    /// True when the tree contains no variables or state references, i.e.
    /// it folds to a single number.
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(e, Expr::Var(_) | Expr::State(_)) {
                constant = false;
            }
        });
        constant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // BPhy * (mu - 1.5)  with mu as a parameter slot
        Expr::bin(
            BinOp::Mul,
            Expr::State(0),
            Expr::bin(
                BinOp::Sub,
                Expr::Param(ParamSlot {
                    kind: 3,
                    value: 1.89,
                }),
                Expr::Num(1.5),
            ),
        )
    }

    #[test]
    fn size_and_depth() {
        let e = sample();
        assert_eq!(e.size(), 5);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn leaf_size_is_one() {
        assert_eq!(Expr::Num(2.0).size(), 1);
        assert_eq!(Expr::Var(0).size(), 1);
        assert_eq!(Expr::Num(2.0).depth(), 1);
    }

    #[test]
    fn param_slots_are_found() {
        let mut e = sample();
        let slots = e.param_slots_mut();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].kind, 3);
    }

    #[test]
    fn param_slot_mutation_sticks() {
        let mut e = sample();
        for s in e.param_slots_mut() {
            s.value = 2.5;
        }
        let mut seen = 0.0;
        e.visit(&mut |n| {
            if let Expr::Param(p) = n {
                seen = p.value;
            }
        });
        assert_eq!(seen, 2.5);
    }

    #[test]
    fn variables_deduplicated_and_sorted() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Var(4), Expr::Var(1)),
            Expr::Var(4),
        );
        assert_eq!(e.variables(), vec![1, 4]);
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::bin(BinOp::Add, Expr::Num(1.0), Expr::Num(2.0)).is_constant());
        assert!(!sample().is_constant());
        // Parameters count as constants: they do not vary within a simulation.
        assert!(Expr::Param(ParamSlot {
            kind: 0,
            value: 1.0
        })
        .is_constant());
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.commutative());
        assert!(BinOp::Mul.commutative());
        assert!(BinOp::Min.commutative());
        assert!(BinOp::Max.commutative());
        assert!(!BinOp::Sub.commutative());
        assert!(!BinOp::Div.commutative());
        assert!(!BinOp::Pow.commutative());
    }

    #[test]
    fn visit_counts_every_node() {
        let e = sample();
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, e.size());
    }
}
