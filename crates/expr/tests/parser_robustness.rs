//! Parser robustness: arbitrary input must never panic, and error spans
//! must stay within the source.

use gmr_expr::{parse, NameTable};
use proptest::prelude::*;

fn names() -> NameTable {
    NameTable::new(&["Vlgt", "Vtmp"], &["BPhy", "BZoo"], &["CUA", "CBRA", "R"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,64}") {
        let _ = parse(&src, &names(), |_| 0.5);
    }

    #[test]
    fn arbitrary_expression_like_strings_never_panic(
        src in "[ 0-9a-zA-Z_+*/().,\\[\\]-]{0,80}"
    ) {
        match parse(&src, &names(), |_| 0.5) {
            Ok(e) => prop_assert!(e.size() >= 1),
            Err(err) => prop_assert!(err.at <= src.len(), "error span out of range"),
        }
    }

    #[test]
    fn valid_prefix_with_garbage_suffix_errors(
        garbage in "[#$%&@^~]{1,8}"
    ) {
        let src = format!("BPhy + 1 {garbage}");
        prop_assert!(parse(&src, &names(), |_| 0.5).is_err());
    }
}

#[test]
fn deeply_nested_parens_hit_the_depth_limit_not_the_stack() {
    // Within the limit: parses fine.
    let ok = 100;
    let src = format!("{}1{}", "(".repeat(ok), ")".repeat(ok));
    assert_eq!(
        parse(&src, &names(), |_| 0.5).expect("shallow nesting parses"),
        gmr_expr::Expr::Num(1.0)
    );
    // Far beyond the limit: a clean error, never a stack overflow.
    let deep = 50_000;
    let src = format!("{}1{}", "(".repeat(deep), ")".repeat(deep));
    let err = parse(&src, &names(), |_| 0.5).expect_err("depth limit enforced");
    assert!(err.msg.contains("deep"), "{err}");
}

#[test]
fn pathological_numbers() {
    let n = names();
    assert!(parse("1e309", &n, |_| 0.0).unwrap().size() == 1); // inf literal is a value
    assert!(parse("1e-400", &n, |_| 0.0).is_ok()); // subnormal underflow to 0
    assert!(parse(".", &n, |_| 0.0).is_err());
    assert!(parse("..1", &n, |_| 0.0).is_err());
    assert!(parse("1.2.3", &n, |_| 0.0).is_err());
}
