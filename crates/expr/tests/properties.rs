//! Property-based tests for the expression substrate.
//!
//! The two load-bearing invariants of the whole GMR system live here:
//!
//! 1. `simplify` never changes the value of a tree on any input (otherwise
//!    the fitness cache would silently return fitnesses of *different*
//!    models);
//! 2. the bytecode VM agrees with the interpreter bit-for-bit (otherwise the
//!    runtime-compilation speedup would change search trajectories).

use gmr_expr::ast::{BinOp, Expr, ParamSlot, UnOp};
use gmr_expr::{simplify, CompiledExpr, CompiledSystem, EvalContext, NameTable, OptOptions};
use proptest::prelude::*;

/// Strategy for arbitrary expressions over 4 vars, 2 states, 3 param kinds.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1e3_f64..1e3).prop_map(Expr::Num),
        (0u8..4).prop_map(Expr::Var),
        (0u8..2).prop_map(Expr::State),
        ((0u16..3), -10.0_f64..10.0)
            .prop_map(|(kind, value)| Expr::Param(ParamSlot { kind, value })),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Min),
                    Just(BinOp::Max),
                    Just(BinOp::Pow),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Log), Just(UnOp::Exp)],
                inner
            )
                .prop_map(|(op, a)| Expr::un(op, a)),
        ]
    })
}

fn arb_ctx() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(-1e3_f64..1e3, 4),
        prop::collection::vec(-1e3_f64..1e3, 2),
    )
}

/// Like [`arb_expr`] but with non-finite literals mixed into the leaves, so
/// the optimizer's NaN/±inf paths get exercised too.
fn arb_wild_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1e3_f64..1e3).prop_map(Expr::Num),
        prop_oneof![
            Just(Expr::Num(f64::NAN)),
            Just(Expr::Num(f64::INFINITY)),
            Just(Expr::Num(f64::NEG_INFINITY)),
            Just(Expr::Num(0.0)),
            Just(Expr::Num(-0.0)),
        ],
        (0u8..4).prop_map(Expr::Var),
        (0u8..2).prop_map(Expr::State),
    ];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Min),
                    Just(BinOp::Max),
                    Just(BinOp::Pow),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Log), Just(UnOp::Exp)],
                inner
            )
                .prop_map(|(op, a)| Expr::un(op, a)),
        ]
    })
}

/// Contexts whose forcings/states may be non-finite.
fn arb_wild_ctx() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let wild = prop_oneof![
        4 => -1e3_f64..1e3,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
    ];
    (
        prop::collection::vec(wild.clone(), 4),
        prop::collection::vec(wild, 2),
    )
}

/// Shift every mutable parameter slot by `delta`, leaving structure intact —
/// the shape of a local-search parameter mutation.
fn shift_params(e: &Expr, delta: f64) -> Expr {
    match e {
        Expr::Param(p) => Expr::Param(ParamSlot {
            kind: p.kind,
            value: p.value + delta,
        }),
        Expr::Num(_) | Expr::Var(_) | Expr::State(_) => e.clone(),
        Expr::Unary(op, a) => Expr::un(*op, shift_params(a, delta)),
        Expr::Binary(op, a, b) => Expr::bin(*op, shift_params(a, delta), shift_params(b, delta)),
    }
}

/// Bitwise equality that treats any-NaN == any-NaN (the protected operators
/// make NaN unreachable from finite inputs, but proptest should not rely on
/// that while testing it).
fn feq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

/// Every tier whose contract is bit-exactness vs the interpreter. The
/// threaded tier is always bit-exact; the simd tier is bit-exact exactly
/// when its vector kernels are dormant (feature off, or no AVX2+FMA at
/// runtime) and it falls back to the threaded thunks.
fn exact_tiers() -> Vec<OptOptions> {
    let mut tiers = vec![
        OptOptions::register(),
        OptOptions::fused(),
        OptOptions::full(),
        OptOptions::threaded(),
    ];
    if !gmr_expr::simd::active() {
        tiers.push(OptOptions::simd());
    }
    tiers
}

/// Relative closeness for the relaxed-simd fidelity class: the vector
/// transcendentals are allowed to differ from libm in the last few ulps.
#[cfg(feature = "simd")]
fn close(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= 1e-12 + 1e-9 * a.abs().max(b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn simplify_preserves_semantics(e in arb_expr(), (vars, state) in arb_ctx()) {
        let ctx = EvalContext { vars: &vars, state: &state };
        let s = simplify(&e);
        prop_assert!(feq(e.eval(&ctx), s.eval(&ctx)),
            "simplify changed value: {} vs {}", e.eval(&ctx), s.eval(&ctx));
    }

    #[test]
    fn simplify_never_grows(e in arb_expr()) {
        prop_assert!(simplify(&e).size() <= e.size());
    }

    #[test]
    fn simplify_is_idempotent(e in arb_expr()) {
        let once = simplify(&e);
        prop_assert_eq!(simplify(&once), once);
    }

    #[test]
    fn compiled_matches_interpreter(e in arb_expr(), (vars, state) in arb_ctx()) {
        let ctx = EvalContext { vars: &vars, state: &state };
        let c = CompiledExpr::compile(&e);
        prop_assert!(feq(c.eval(&ctx), e.eval(&ctx)));
    }

    #[test]
    fn compiled_simplified_matches_too(e in arb_expr(), (vars, state) in arb_ctx()) {
        // The production path: simplify, then compile, then evaluate.
        let ctx = EvalContext { vars: &vars, state: &state };
        let c = CompiledExpr::compile(&simplify(&e));
        prop_assert!(feq(c.eval(&ctx), e.eval(&ctx)));
    }

    #[test]
    fn protected_eval_of_finite_inputs_is_not_nan(e in arb_expr(), (vars, state) in arb_ctx()) {
        // Protected operators keep NaN unreachable from finite forcings
        // except through inf-inf style cancellation; verify the common case
        // that the magnitude stays bounded for bounded inputs of bounded depth.
        let ctx = EvalContext { vars: &vars, state: &state };
        let v = e.eval(&ctx);
        // Depth <= 7 with |leaf| <= 1e3 and protected exp clamp cannot reach
        // f64::MAX-scale products that overflow to inf.
        prop_assert!(v.is_finite(), "non-finite value {v}");
    }

    #[test]
    fn structural_hash_equal_for_clones(e in arb_expr()) {
        prop_assert_eq!(e.clone().structural_hash(), e.structural_hash());
    }

    #[test]
    fn canonicalisation_merges_commuted_operands(a in arb_expr(), b in arb_expr()) {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max] {
            let x = simplify(&Expr::bin(op, a.clone(), b.clone()));
            let y = simplify(&Expr::bin(op, b.clone(), a.clone()));
            prop_assert_eq!(x.structural_hash(), y.structural_hash());
        }
    }

    #[test]
    fn optimized_system_matches_interpreter_at_every_tier(
        eqs in prop::collection::vec(arb_expr(), 1..3),
        (vars, state) in arb_ctx(),
    ) {
        // The tentpole invariant: constant folding, peephole rewrites,
        // cross-equation CSE, register allocation, fusion, the prefix
        // split, and the threaded-code thunks must all be bit-exact under
        // protected semantics (the simd tier too, whenever its vector
        // kernels are dormant and it runs the scalar fallback).
        let ctx = EvalContext { vars: &vars, state: &state };
        let expect: Vec<f64> = eqs.iter().map(|e| e.eval(&ctx)).collect();
        for opts in exact_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);
            let mut scratch = sys.scratch();
            let mut out = vec![0.0; sys.n_eqs()];
            sys.eval_step(&ctx, &mut scratch, &mut out);
            for (i, (&want, &got)) in expect.iter().zip(&out).enumerate() {
                prop_assert!(feq(want, got),
                    "tier {opts:?} eq {i}: interpreter {want} vs VM {got}");
            }
        }
    }

    #[test]
    fn optimized_system_matches_on_non_finite_inputs(
        eqs in prop::collection::vec(arb_wild_expr(), 1..3),
        (vars, state) in arb_wild_ctx(),
    ) {
        // NaN / ±inf forcings and literals: the peepholes and CSE must not
        // assume finiteness anywhere (this is why x*0 → 0 is NOT a rewrite).
        let ctx = EvalContext { vars: &vars, state: &state };
        let expect: Vec<f64> = eqs.iter().map(|e| e.eval(&ctx)).collect();
        for opts in exact_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);
            let mut scratch = sys.scratch();
            let mut out = vec![0.0; sys.n_eqs()];
            sys.eval_step(&ctx, &mut scratch, &mut out);
            for (i, (&want, &got)) in expect.iter().zip(&out).enumerate() {
                prop_assert!(feq(want, got),
                    "tier {opts:?} eq {i}: interpreter {want} vs VM {got}");
            }
        }
    }

    #[test]
    fn split_session_matches_interpreter_over_forcing_rows(
        eqs in prop::collection::vec(arb_expr(), 2..3),
        rows in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 4), 1..80),
        states in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 2), 1..4),
    ) {
        // The columnar prefix sweep: a session over up to 80 rows (crossing
        // the 32-lane chunk boundary twice) must agree with per-row
        // interpretation at every (row, state) pair, including revisits of
        // the same row with a different state. Holds for every tier with a
        // split prefix: interpreted split, threaded thunks, and the simd
        // tier on its scalar fallback.
        let mut tiers = vec![OptOptions::full(), OptOptions::threaded()];
        if !gmr_expr::simd::active() {
            tiers.push(OptOptions::simd());
        }
        for opts in tiers {
            let sys = CompiledSystem::compile(&eqs, opts);
            let mut session = sys.session(&rows);
            let mut out = vec![0.0; sys.n_eqs()];
            for (t, row) in rows.iter().enumerate() {
                for state in &states {
                    let ctx = EvalContext { vars: row, state };
                    session.step(t, state, &mut out);
                    for (i, (eq, &got)) in eqs.iter().zip(&out).enumerate() {
                        let want = eq.eval(&ctx);
                        prop_assert!(feq(want, got),
                            "tier {opts:?} row {t} eq {i}: interpreter {want} vs session {got}");
                    }
                }
            }
        }
    }

    #[test]
    fn multi_session_lanes_match_solo_sessions(
        eqs in prop::collection::vec(arb_expr(), 1..3),
        rows in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 4), 1..80),
        inits in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 2), 1..6),
    ) {
        // Lock-step lane stepping (the batching server's and the SIMD
        // backend's execution shape) is bit-identical to running each
        // trajectory through its own solo session — for every tier,
        // including an *active* simd tier, where both sides take the same
        // vector paths. Rows cross the 32-lane chunk boundary twice.
        let k = inits.len();
        for opts in [OptOptions::full(), OptOptions::threaded(), OptOptions::simd()] {
            let sys = CompiledSystem::compile(&eqs, opts);
            let n_eqs = sys.n_eqs();
            let mut want = vec![0.0; k * n_eqs];
            let mut solo: Vec<_> = (0..k).map(|_| sys.session(&rows)).collect();
            let mut multi = sys.multi_session(&rows, k);
            let states: Vec<f64> = inits.iter().flatten().copied().collect();
            let mut out = vec![0.0; k * n_eqs];
            for t in 0..rows.len() {
                for (l, session) in solo.iter_mut().enumerate() {
                    session.step(t, &states[l * 2..l * 2 + 2], &mut want[l * n_eqs..(l + 1) * n_eqs]);
                }
                multi.step(t, &states, &mut out);
                for l in 0..k {
                    for e in 0..n_eqs {
                        prop_assert!(feq(out[l * n_eqs + e], want[l * n_eqs + e]),
                            "tier {opts:?} lane {l} eq {e} at t={t}: solo {} vs multi {}",
                            want[l * n_eqs + e], out[l * n_eqs + e]);
                    }
                }
            }
        }
    }

    #[test]
    #[cfg(feature = "simd")]
    fn simd_session_stays_within_relaxed_tolerance(
        eqs in prop::collection::vec(arb_expr(), 2..3),
        rows in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 4), 1..80),
        states in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 2), 1..4),
    ) {
        // With the vector kernels live, the simd tier's fidelity class is
        // relaxed-simd: outputs may differ from libm in the last ulps of
        // the vector transcendentals but must stay relatively close, and
        // finite inputs must never produce NaN the interpreter doesn't.
        let sys = CompiledSystem::compile(&eqs, OptOptions::simd());
        let mut session = sys.session(&rows);
        let mut out = vec![0.0; sys.n_eqs()];
        for (t, row) in rows.iter().enumerate() {
            for state in &states {
                let ctx = EvalContext { vars: row, state };
                session.step(t, state, &mut out);
                for (i, (eq, &got)) in eqs.iter().zip(&out).enumerate() {
                    let want = eq.eval(&ctx);
                    prop_assert!(close(want, got),
                        "row {t} eq {i}: interpreter {want} vs simd session {got}");
                }
            }
        }
    }

    #[test]
    fn var_operand_pow_div_prefix_matches_interpreter(
        rows in prop::collection::vec(prop::collection::vec(0.1_f64..50.0, 4), 33..80),
        states in prop::collection::vec(prop::collection::vec(-1e2_f64..1e2, 2), 1..3),
    ) {
        // VarBinL/VarBinR pow and div inside the state-independent prefix
        // — the shapes the gathered-operand vector kernels cover. Rows
        // cross the 32-lane chunk boundary so both the full-stripe and
        // ragged-tail paths run. Bit-exact whenever the vector kernels
        // are dormant; with them live, div stays bit-exact (protected
        // kernel) and pow is relaxed to relative closeness.
        let inner = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Var(2), Expr::Num(0.05)),
            Expr::Num(1.25),
        );
        let eqs = vec![
            // pow: var base (VarBinL), var exponent (VarBinR)
            Expr::bin(BinOp::Mul, Expr::bin(BinOp::Pow, Expr::Var(0), inner.clone()), Expr::State(0)),
            Expr::bin(BinOp::Add, Expr::bin(BinOp::Pow, inner.clone(), Expr::Var(3)), Expr::State(1)),
            // div: var numerator (VarBinL), var divisor (VarBinR)
            Expr::bin(BinOp::Mul, Expr::bin(BinOp::Div, Expr::Var(0), inner.clone()), Expr::State(0)),
            Expr::bin(BinOp::Add, Expr::bin(BinOp::Div, inner, Expr::Var(1)), Expr::State(1)),
        ];
        for opts in exact_tiers() {
            let sys = CompiledSystem::compile(&eqs, opts);
            let mut session = sys.session(&rows);
            let mut out = vec![0.0; sys.n_eqs()];
            for (t, row) in rows.iter().enumerate() {
                for state in &states {
                    let ctx = EvalContext { vars: row, state };
                    session.step(t, state, &mut out);
                    for (i, (eq, &got)) in eqs.iter().zip(&out).enumerate() {
                        let want = eq.eval(&ctx);
                        prop_assert!(feq(want, got),
                            "tier {opts:?} row {t} eq {i}: interpreter {want} vs session {got}");
                    }
                }
            }
        }
        #[cfg(feature = "simd")]
        if gmr_expr::simd::active() {
            let sys = CompiledSystem::compile(&eqs, OptOptions::simd());
            let mut session = sys.session(&rows);
            let mut out = vec![0.0; sys.n_eqs()];
            for (t, row) in rows.iter().enumerate() {
                for state in &states {
                    let ctx = EvalContext { vars: row, state };
                    session.step(t, state, &mut out);
                    for (i, (eq, &got)) in eqs.iter().zip(&out).enumerate() {
                        let want = eq.eval(&ctx);
                        // eqs 0/1 are the relaxed pow shapes; 2/3 divide.
                        let ok = if i < 2 { close(want, got) } else { feq(want, got) };
                        prop_assert!(ok,
                            "live simd row {t} eq {i}: interpreter {want} vs session {got}");
                    }
                }
            }
        }
    }

    #[test]
    fn shared_prefix_table_matches_on_demand_sweep(
        eqs in prop::collection::vec(arb_expr(), 1..3),
        rows in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 4), 2..80),
        inits in prop::collection::vec(prop::collection::vec(-1e3_f64..1e3, 2), 1..4),
        take in 0.1_f64..1.0,
    ) {
        // A cached `PrefixTable` swept once over the full forcing table
        // must reproduce the on-demand sweep bit-for-bit — including for
        // sessions over a *prefix* of the table (the serving shape: one
        // cached table per (model, forcing table), arbitrary per-request
        // horizons), where the on-demand sweep ends in a ragged tail
        // chunk the full-table sweep computed as part of a full stripe.
        let k = inits.len();
        let days = ((rows.len() as f64 * take).ceil() as usize).clamp(1, rows.len());
        for opts in [OptOptions::full(), OptOptions::threaded(), OptOptions::simd()] {
            let sys = CompiledSystem::compile(&eqs, opts);
            let table = sys.sweep_prefix(&rows);
            let states: Vec<f64> = inits.iter().flatten().copied().collect();
            let head = &rows[..days];
            let mut on_demand = sys.multi_session(head, k);
            let mut shared = sys.multi_session_with_prefix(head, k, &table);
            let mut out_a = vec![0.0; k * sys.n_eqs()];
            let mut out_b = vec![0.0; k * sys.n_eqs()];
            for t in 0..days {
                on_demand.step(t, &states, &mut out_a);
                shared.step(t, &states, &mut out_b);
                for (i, (&x, &y)) in out_a.iter().zip(&out_b).enumerate() {
                    prop_assert!(feq(x, y),
                        "tier {opts:?} t={t} slot {i}: on-demand {x} vs shared {y}");
                }
            }
        }
    }

    #[test]
    fn param_mutation_plus_recompile_tracks_interpreter(
        eqs in prop::collection::vec(arb_expr(), 1..3),
        (vars, state) in arb_ctx(),
        delta in -5.0_f64..5.0,
    ) {
        // The local-search loop: mutate every parameter slot, recompile,
        // and the new programs must track the mutated interpreter exactly
        // (compiled constants are frozen at compile time, so recompilation
        // is the only legal way to observe a mutation).
        let mutated: Vec<Expr> = eqs.iter().map(|e| shift_params(e, delta)).collect();
        let ctx = EvalContext { vars: &vars, state: &state };
        let sys = CompiledSystem::compile(&mutated, OptOptions::full());
        let mut scratch = sys.scratch();
        let mut out = vec![0.0; sys.n_eqs()];
        sys.eval_step(&ctx, &mut scratch, &mut out);
        for (i, (eq, &got)) in mutated.iter().zip(&out).enumerate() {
            let want = eq.eval(&ctx);
            prop_assert!(feq(want, got),
                "eq {i} after mutation: interpreter {want} vs VM {got}");
        }
    }

    #[test]
    fn display_parse_round_trip(e in arb_expr()) {
        let names = NameTable::new(
            &["Va", "Vb", "Vc", "Vd"],
            &["BPhy", "BZoo"],
            &["C0", "C1", "C2"],
        );
        let shown = e.display(&names).to_string();
        let parsed = gmr_expr::parse(&shown, &names, |_| 0.0)
            .unwrap_or_else(|err| panic!("reparse of '{shown}' failed: {err}"));
        // Values may print with full precision; require structural equality
        // under bit-accurate f64 formatting (Rust's Display is round-trip).
        prop_assert_eq!(parsed, e);
    }
}
