//! Cluster-serving tests: real backend processes behind the gateway.
//!
//! Three contracts from the cluster design, pinned end to end:
//!
//! * **Bit-identity** — a `/simulate` answered through the gateway is
//!   byte-identical to the same request against a solo in-process server
//!   hosting the same tables (the gateway forwards bodies untouched, and
//!   every backend computes the same trajectories).
//! * **Deterministic routing** — one (model, table) pair lands on exactly
//!   one live backend, every time.
//! * **Failover** — killing a backend mid-load never hangs a client:
//!   requests drain on surviving backends (or shed with an explicit
//!   status), and the supervisor restarts the victim.
//! * **Traceability** — journals written by a real `gmr-serve cluster`
//!   run stitch into one cross-process Chrome trace in which every
//!   gateway `/simulate` hop resolves to exactly one backend span.
//!
//! Backends are the crate's own binary (`CARGO_BIN_EXE_gmr-serve`), so
//! these tests exercise the same process-supervision path `gmr-serve
//! cluster` ships.

use gmr_hydro::{generate, SyntheticConfig};
use gmr_json::Value;
use gmr_serve::batch::{HostedTable, NetStation, Tables};
use gmr_serve::gateway::BackendSlot;
use gmr_serve::server::{http_request, read_response_full, write_request};
use gmr_serve::{
    Cluster, ClusterConfig, Gateway, GatewayConfig, ModelArtifact, ModelRegistry, Server,
    ServerConfig,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DAYS: usize = 150;

fn exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_gmr-serve"))
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gmr-cluster-test-{tag}-{}", std::process::id()))
}

/// The same hosted tables `gmr-serve serve --days DAYS` builds (default
/// seed), for the solo reference server.
fn reference_tables() -> Tables {
    let ds = generate(&SyntheticConfig::default());
    let cut = DAYS.min(ds.days);
    let mut tables = Tables::new();
    tables.insert(
        "target",
        HostedTable::Single(ds.target_series().vars[..cut].to_vec()),
    );
    tables.insert(
        "network",
        HostedTable::Network(
            ds.stations
                .iter()
                .map(|s| NetStation {
                    vars: s.vars[..cut].to_vec(),
                    flow: s.flow[..cut].to_vec(),
                })
                .collect(),
        ),
    );
    tables
}

fn start_cluster(tag: &str, backends: usize, tweak: impl FnOnce(&mut ClusterConfig)) -> Cluster {
    let mut config = ClusterConfig::new(backends, exe(), scratch(tag));
    // Capacity rule (see `cmd_cluster`): backend workers must exceed the
    // gateway's, or idle pooled connections park every backend worker.
    let workers = GatewayConfig::default().workers + 2;
    config.backend_args.extend([
        "--days".into(),
        DAYS.to_string(),
        "--workers".into(),
        workers.to_string(),
    ]);
    tweak(&mut config);
    Cluster::start(config).expect("cluster must start")
}

fn sim_body(model: &str) -> String {
    format!(r#"{{"model": "{model}", "forcings_ref": "target"}}"#)
}

/// Per-backend `/simulate` counts from the gateway's rollup view: the
/// `serve.batch_size` histogram only records when a simulation ran.
fn sim_counts(gateway_addr: SocketAddr) -> Vec<u64> {
    let (status, bytes) = http_request(gateway_addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    v.get("backends")
        .and_then(Value::as_arr)
        .expect("rollup carries a backends array")
        .iter()
        .map(|b| {
            b.get("metrics")
                .and_then(|m| m.get("serve.batch_size"))
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        })
        .collect()
}

#[test]
fn gateway_is_bit_identical_to_solo_and_routes_deterministically() {
    let cluster = start_cluster("bitident", 2, |_| {});
    let gateway = Gateway::new(GatewayConfig::default(), cluster.slots())
        .start()
        .unwrap();

    // Solo reference: same model, same hosted tables, in-process.
    let mut registry = ModelRegistry::new();
    registry.insert(ModelArtifact::builtin_manual()).unwrap();
    let solo = Server::new(ServerConfig::default(), registry, reference_tables())
        .start()
        .unwrap();

    let body = sim_body("table5-manual");
    let (solo_status, solo_bytes) =
        http_request(solo.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    assert_eq!(solo_status, 200, "{}", String::from_utf8_lossy(&solo_bytes));

    let before = sim_counts(gateway.addr());
    const N: u64 = 6;
    for _ in 0..N {
        let (status, bytes) =
            http_request(gateway.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        assert_eq!(
            bytes, solo_bytes,
            "gateway response must be byte-identical to the solo server"
        );
    }

    // Deterministic routing: all N simulations on exactly one backend.
    let after = sim_counts(gateway.addr());
    let deltas: Vec<u64> = after
        .iter()
        .zip(&before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    assert_eq!(deltas.iter().sum::<u64>(), N, "deltas: {deltas:?}");
    assert_eq!(
        deltas.iter().filter(|&&d| d > 0).count(),
        1,
        "one (model, table) pair must pin to one backend: {deltas:?}"
    );

    // `/models` through the gateway reflects the replicated registry.
    let (status, bytes) = http_request(gateway.addr(), "GET", "/models", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let names: Vec<&str> = v
        .get("models")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter_map(|m| m.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names, ["table5-manual"]);

    solo.shutdown();
    gateway.shutdown();
    cluster.shutdown();
}

#[test]
fn failover_drains_requests_and_supervisor_restarts_the_victim() {
    let cluster = start_cluster("failover", 2, |c| {
        c.health_interval = Duration::from_millis(100);
    });
    let gateway = Gateway::new(GatewayConfig::default(), cluster.slots())
        .start()
        .unwrap();
    let body = sim_body("table5-manual");

    // Find the owner of this key, then kill it.
    let before = sim_counts(gateway.addr());
    let (status, _) = http_request(gateway.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let after = sim_counts(gateway.addr());
    let owner = (0..after.len())
        .find(|&i| after[i] > before[i])
        .expect("some backend served the probe");
    cluster.kill_backend(owner);

    // Mid-failure requests must complete promptly — drained by the
    // surviving backend or shed with an explicit status, never hung.
    let t0 = Instant::now();
    for _ in 0..5 {
        let (status, bytes) =
            http_request(gateway.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
        assert!(
            status == 200 || status == 429 || status == 503,
            "unexpected status {status}: {}",
            String::from_utf8_lossy(&bytes)
        );
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "failover requests must not park behind a dead backend"
    );
    // With one backend dead the walk lands on the survivor — requests
    // keep draining.
    let (status, _) = http_request(gateway.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    assert_eq!(status, 200, "survivor must absorb the orphaned keyspace");

    // The supervisor restarts the victim and the gateway sees 2 live
    // backends again.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, bytes) = http_request(gateway.addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        let v = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        if v.get("alive").and_then(Value::as_u64) == Some(2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend was not restarted: {}",
            String::from_utf8_lossy(&bytes)
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // And the restarted backend serves its keyspace again.
    let (status, _) = http_request(gateway.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    assert_eq!(status, 200);

    gateway.shutdown();
    cluster.shutdown();
}

/// The tentpole's end-to-end contract: real traffic through the shipped
/// `gmr-serve cluster` subcommand with journals on, then an in-process
/// stitch of the gateway + backend journals. The resulting Chrome trace
/// must strict-reparse, span all three processes, and resolve every
/// gateway `/simulate` hop to exactly one backend access span — the same
/// check `gmr-trace stitch` enforces with a non-zero exit.
#[test]
fn cluster_journals_stitch_into_one_trace_with_no_orphans() {
    use gmr_obsv::json::Value as J;

    let dir = scratch("stitch");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let port_file = dir.join("gateway.port");
    let gw_journal = dir.join("gateway.jsonl");
    let mut child = std::process::Command::new(exe())
        .args(["cluster", "--backends", "2", "--days", &DAYS.to_string()])
        .arg("--dir")
        .arg(&dir)
        .arg("--port-file")
        .arg(&port_file)
        .arg("--journal")
        .arg(&gw_journal)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn gmr-serve cluster");

    let deadline = Instant::now() + Duration::from_secs(60);
    let addr: SocketAddr = loop {
        if let Some(a) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|t| t.trim().parse().ok())
        {
            break a;
        }
        assert!(
            Instant::now() < deadline,
            "gateway port file never appeared"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // Traced traffic: every response must echo an `X-Gmr-Trace` context.
    const N: usize = 8;
    let body = sim_body("table5-manual");
    let mut client = gmr_serve::server::Client::new(addr);
    for _ in 0..N {
        let resp = client
            .request("POST", "/simulate", body.as_bytes())
            .expect("simulate through the cluster");
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let trace = resp.trace.expect("response must carry X-Gmr-Trace");
        assert!(
            trace.split_once('-').is_some(),
            "trace header must be trace-span: {trace}"
        );
    }

    // Graceful drain: the gateway process and every backend write their
    // journals on SIGTERM.
    assert!(gmr_serve::sig::terminate_pid(child.id()));
    let status = child.wait().expect("cluster exit");
    assert!(status.success(), "cluster must drain cleanly");

    let read = |p: &std::path::Path| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("journal {}: {e}", p.display()))
    };
    let inputs = vec![
        ("gateway".to_string(), read(&gw_journal)),
        ("backend-0".to_string(), read(&dir.join("backend-0.jsonl"))),
        ("backend-1".to_string(), read(&dir.join("backend-1.jsonl"))),
    ];
    let stitched = gmr_obsv::trace::stitch(&inputs).expect("journals must stitch");
    assert!(
        stitched.hops >= N,
        "every proxied /simulate is a hop: {} < {N}",
        stitched.hops
    );
    assert_eq!(
        stitched.orphans,
        Vec::<String>::new(),
        "every gateway hop must resolve to a backend span"
    );
    assert_eq!(stitched.resolved, stitched.hops);

    // The merged trace strict-reparses, carries one track per process,
    // and the gateway→backend flows survived the merge.
    let v = gmr_obsv::json::parse(&stitched.chrome).expect("stitched trace must be strict JSON");
    let events = v
        .get("traceEvents")
        .and_then(J::as_arr)
        .expect("traceEvents array");
    let pids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(J::as_u64))
        .collect();
    assert!(
        pids.len() >= 3,
        "gateway + 2 backends must each own a track: {pids:?}"
    );
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(J::as_str) == Some("s")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(J::as_str) == Some("f")));

    std::fs::remove_dir_all(&dir).ok();
}

/// A hand-rolled backend that always sheds with `Retry-After: 7` — pins
/// the gateway's 429 propagation contract: backend 429s are final
/// (no failover) and the retry hint passes through verbatim.
#[test]
fn gateway_propagates_backend_429_and_retry_after() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                while gmr_serve::http::read_request(&mut reader)
                    .ok()
                    .flatten()
                    .is_some()
                {
                    let body = br#"{"error": "backend saturated"}"#;
                    let head = format!(
                        "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nRetry-After: 7\r\n\r\n",
                        body.len()
                    );
                    use std::io::Write;
                    if stream
                        .write_all(head.as_bytes())
                        .and_then(|()| stream.write_all(body))
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
    });

    let slots: Arc<Vec<BackendSlot>> = Arc::new(vec![BackendSlot::default()]);
    slots[0].set_addr(addr);
    let gateway = Gateway::new(GatewayConfig::default(), Arc::clone(&slots))
        .start()
        .unwrap();

    let mut stream = TcpStream::connect(gateway.addr()).unwrap();
    write_request(
        &mut stream,
        "POST",
        "/simulate",
        sim_body("table5-manual").as_bytes(),
        true,
    )
    .unwrap();
    let resp = read_response_full(&mut BufReader::new(stream)).unwrap();
    assert_eq!(resp.status, 429, "backend 429 must propagate");
    assert_eq!(
        resp.retry_after,
        Some(7),
        "the backend's Retry-After must pass through verbatim"
    );
    assert!(String::from_utf8_lossy(&resp.body).contains("backend saturated"));
    gateway.shutdown();
}

/// Scenario serving at cluster scale: `POST /scenarios` broadcasts to
/// every backend (any backend may later be asked to resolve the
/// scenario), `/sweep` routes by (model, scenario) through the ring, and
/// a sweep summary answered through the gateway is bit-identical to the
/// summary reduced from a solo `/simulate` of the same `scn:` ref —
/// which itself hashes to a *different* ring key and may land on the
/// other backend.
#[test]
fn scenario_sweep_through_gateway_matches_solo_refs() {
    let cluster = start_cluster("scenario", 2, |_| {});
    let gateway = Gateway::new(GatewayConfig::default(), cluster.slots())
        .start()
        .unwrap();
    let addr = gateway.addr();

    let spec = r#"{"schema": "gmr-scenario/v1", "name": "cluster-wet", "seed": 31,
                   "topology": {"kind": "tributaries", "stations": 10},
                   "years": 1,
                   "climate": [{"kind": "heatwave", "start_day": 170, "length": 20, "amp": 2.5}],
                   "spread": 0.3}"#;
    let (status, bytes) = http_request(addr, "POST", "/scenarios", spec.as_bytes()).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));

    // Both backends host it: the gateway's own listing (forwarded to one
    // backend) and a direct probe of each backend agree.
    for slot in cluster.slots().iter() {
        let backend = slot.addr().expect("backend alive");
        let (status, bytes) = http_request(backend, "GET", "/scenarios", b"").unwrap();
        assert_eq!(status, 200);
        assert!(
            String::from_utf8_lossy(&bytes).contains("cluster-wet"),
            "scenario admission must broadcast to every backend"
        );
    }

    // Re-admission through the gateway is an idempotent broadcast...
    let (status, _) = http_request(addr, "POST", "/scenarios", spec.as_bytes()).unwrap();
    assert_eq!(status, 200);
    // ...and a mutated spec under the same name is refused by the fleet.
    let mutated = spec.replace("\"seed\": 31", "\"seed\": 32");
    let (status, _) = http_request(addr, "POST", "/scenarios", mutated.as_bytes()).unwrap();
    assert_eq!(status, 409, "scenario names are immutable cluster-wide");

    let threshold = 24.0;
    let sweep = format!(
        r#"{{"scenario": "cluster-wet", "model": "table5-manual", "variants": 4,
             "reduce": {{"threshold": {threshold}}}}}"#
    );
    let (status, bytes) = http_request(addr, "POST", "/sweep", sweep.as_bytes()).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
    let v = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let summaries = v.get("summaries").and_then(Value::as_arr).unwrap();
    assert_eq!(summaries.len(), 4);

    let reduce = gmr_scenario::ReduceSpec { threshold };
    for (i, s) in summaries.iter().enumerate() {
        let got = gmr_scenario::SweepSummary::from_value(s).expect("well-formed summary");
        let body =
            format!(r#"{{"model": "table5-manual", "forcings_ref": "scn:cluster-wet/{i}"}}"#);
        let (status, bytes) = http_request(addr, "POST", "/simulate", body.as_bytes()).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
        let solo = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let series = |key: &str| -> Vec<f64> {
            solo.get(key)
                .and_then(Value::as_arr)
                .unwrap()
                .iter()
                .map(|x| x.as_f64().unwrap())
                .collect()
        };
        let want = gmr_scenario::reduce_series(i as u32, &reduce, &series("bphy"), &series("bzoo"));
        assert_eq!(
            got, want,
            "variant {i}: gateway sweep summary != gateway solo-reduced"
        );
    }

    gateway.shutdown();
    cluster.shutdown();
}
