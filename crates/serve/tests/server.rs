//! End-to-end serving-stack tests over real sockets.
//!
//! The load-bearing contract: a `/simulate` response — batched or not —
//! carries trajectories *bit-identical* to in-process evaluation of the
//! same compiled system. JSON is a text protocol, so this only holds
//! because `gmr_json::push_f64` renders shortest-round-trip floats; these
//! tests pin the whole chain (artifact → registry → HTTP → batcher → VM →
//! JSON → parse) end to end.

use gmr_bio::{RiverProblem, SimOptions};
use gmr_core::Gmr;
use gmr_expr::{CompiledSystem, OptOptions};
use gmr_gp::GpConfig;
use gmr_hydro::{generate, SyntheticConfig, NUM_VARS};
use gmr_json::{push_f64, Value};
use gmr_serve::batch::{simulate_single, HostedTable, Tables};
use gmr_serve::server::{http_request, read_response, write_request};
use gmr_serve::{ModelArtifact, ModelRegistry, Server, ServerConfig, ServerHandle};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

fn rows(n: usize) -> Vec<[f64; NUM_VARS]> {
    (0..n)
        .map(|t| {
            let mut r = [0.0; NUM_VARS];
            for (j, cell) in r.iter_mut().enumerate() {
                *cell = ((t * 11 + j * 5) as f64 * 0.07).sin().abs() * 25.0 + 0.2;
            }
            r
        })
        .collect()
}

fn start(
    table_days: usize,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (ServerHandle, Vec<[f64; NUM_VARS]>) {
    let mut registry = ModelRegistry::new();
    registry.insert(ModelArtifact::builtin_manual()).unwrap();
    let table = rows(table_days);
    let mut tables = Tables::new();
    tables.insert("t", HostedTable::Single(table.clone()));
    let mut config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let handle = Server::new(config, registry, tables).start().unwrap();
    (handle, table)
}

fn json_series(v: &Value, key: &str) -> Vec<f64> {
    v.get(key)
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("response missing {key}: {v:?}"))
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect()
}

fn post_simulate(handle: &ServerHandle, body: &str) -> (u16, Value) {
    let (status, bytes) =
        http_request(handle.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    let text = String::from_utf8(bytes).unwrap();
    (
        status,
        gmr_json::parse(&text).expect("response must be strict JSON"),
    )
}

#[test]
fn simulate_is_bit_identical_to_in_process_evaluation() {
    let (handle, table) = start(140, |_| {});
    let opts = SimOptions::default();
    let problem = RiverProblem {
        forcings: table.clone(),
        observed: vec![0.0; table.len()],
        opts,
    };
    let reg = {
        let mut r = ModelRegistry::new();
        r.insert(ModelArtifact::builtin_manual()).unwrap();
        r
    };
    let system = reg.touch("table5-manual").unwrap().system.clone();
    let want_bphy = problem.simulate_compiled(&system);
    let (_, want_bzoo) = simulate_single(&system, &table, opts.init, opts.dt, opts.state_cap);

    // Via the hosted table.
    let (status, v) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "t"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(
        json_series(&v, "bphy"),
        want_bphy,
        "ref-table bphy must be bit-identical"
    );
    assert_eq!(json_series(&v, "bzoo"), want_bzoo);

    // And via inline forcings (floats round-tripped through JSON text).
    let mut body = String::from(r#"{"model": "table5-manual", "forcings": ["#);
    for (i, row) in table.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push('[');
        for (j, &x) in row.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            push_f64(&mut body, x);
        }
        body.push(']');
    }
    body.push_str("]}");
    let (status, v) = post_simulate(&handle, &body);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(
        json_series(&v, "bphy"),
        want_bphy,
        "inline bphy must be bit-identical"
    );
    assert_eq!(json_series(&v, "bzoo"), want_bzoo);
    handle.shutdown();
}

#[test]
fn concurrent_same_model_requests_coalesce_and_stay_exact() {
    let (handle, table) = start(200, |c| {
        c.batch_window = Duration::from_millis(50);
        c.workers = 8;
    });
    let reg = {
        let mut r = ModelRegistry::new();
        r.insert(ModelArtifact::builtin_manual()).unwrap();
        r
    };
    let system = reg.touch("table5-manual").unwrap().system.clone();
    let inits = [
        (8.0, 1.2),
        (2.0, 0.3),
        (12.5, 2.5),
        (0.5, 0.05),
        (30.0, 4.0),
        (5.0, 1.0),
    ];
    let addr = handle.addr();
    let threads: Vec<_> = inits
        .iter()
        .map(|&(p, z)| {
            std::thread::spawn(move || {
                let body = format!(
                    r#"{{"model": "table5-manual", "forcings_ref": "t", "init": [{p}, {z}]}}"#
                );
                let (status, bytes) =
                    http_request(addr, "POST", "/simulate", body.as_bytes()).unwrap();
                (status, String::from_utf8(bytes).unwrap())
            })
        })
        .collect();
    let mut max_batch = 0u64;
    for (t, &init) in threads.into_iter().zip(&inits) {
        let (status, text) = t.join().unwrap();
        assert_eq!(status, 200, "{text}");
        let v = gmr_json::parse(&text).unwrap();
        let want = simulate_single(&system, &table, init, 1.0, 1e9);
        assert_eq!(
            json_series(&v, "bphy"),
            want.0,
            "init {init:?} diverged under batching"
        );
        assert_eq!(json_series(&v, "bzoo"), want.1);
        max_batch = max_batch.max(v.get("batch").and_then(Value::as_u64).unwrap());
    }
    // Six concurrent requests inside a 50 ms window: at least two must
    // have shared a sweep (each still bit-exact, asserted above).
    assert!(
        max_batch >= 2,
        "no coalescing observed (max batch {max_batch})"
    );
    handle.shutdown();
}

#[test]
fn bad_inputs_get_4xx_and_the_server_stays_healthy() {
    let (handle, _) = start(30, |_| {});
    // NaN forcings arrive as JSON null under a strict parser: 400.
    let (status, v) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings": [[1,2,3,4,null,6,7,8,9,10]]}"#,
    );
    assert_eq!(status, 400, "{v:?}");
    // Wrong arity row: 400.
    let (status, _) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings": [[1,2]]}"#,
    );
    assert_eq!(status, 400);
    // Unknown model: 404.
    let (status, _) = post_simulate(&handle, r#"{"model": "nope", "forcings_ref": "t"}"#);
    assert_eq!(status, 404);
    // Unknown hosted table: 404.
    let (status, _) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "x"}"#,
    );
    assert_eq!(status, 404);
    // days beyond the table: 400.
    let (status, _) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "t", "days": 4000}"#,
    );
    assert_eq!(status, 400);
    // Garbage body: 400.
    let (status, bytes) = http_request(handle.addr(), "POST", "/simulate", b"{not json").unwrap();
    assert_eq!(status, 400);
    gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).expect("error body is strict JSON");
    // Unknown endpoint / wrong method.
    let (status, _) = http_request(handle.addr(), "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(handle.addr(), "POST", "/healthz", b"").unwrap();
    assert_eq!(status, 405);
    let (status, _) = http_request(handle.addr(), "GET", "/simulate", b"").unwrap();
    assert_eq!(status, 405);
    // After all of that, a good request still succeeds: nothing poisoned.
    let (status, v) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "t", "mode": "summary"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert!(v.get("final").is_some());
    handle.shutdown();
}

#[test]
fn full_connection_queue_sheds_429_and_recovers() {
    // One worker and a one-slot queue make the shed path deterministic:
    // park the worker on a silent connection, queue a second, and the
    // third must be answered 429 at the door — never hung, never dropped.
    let (handle, _) = start(30, |c| {
        c.workers = 1;
        c.conn_queue = 1;
    });
    let addr = handle.addr();
    let holder = TcpStream::connect(addr).unwrap(); // worker parks here
    std::thread::sleep(Duration::from_millis(150));
    let queued = TcpStream::connect(addr).unwrap(); // fills the queue
    std::thread::sleep(Duration::from_millis(150));
    let mut shed = TcpStream::connect(addr).unwrap(); // must be shed
    let (status, body) = read_response(&mut BufReader::new(&mut shed)).unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    // Release the worker; the queued connection must then be served.
    drop(holder);
    let mut queued_w = queued.try_clone().unwrap();
    write_request(&mut queued_w, "GET", "/healthz", b"", true).unwrap();
    let (status, _) = read_response(&mut BufReader::new(queued)).unwrap();
    assert_eq!(status, 200);
    // The shed shows up in the metrics.
    let m = gmr_json::parse(&handle.metrics_json()).unwrap();
    let shed_total = m.get("serve.shed_total").and_then(Value::as_u64).unwrap();
    assert!(shed_total >= 1, "shed counter: {shed_total}");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_work_then_refuses() {
    let (handle, _) = start(400, |_| {});
    let addr = handle.addr();
    let worker = std::thread::spawn(move || {
        http_request(
            addr,
            "POST",
            "/simulate",
            br#"{"model": "table5-manual", "forcings_ref": "t"}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown(); // joins acceptor, workers, batcher
    let (status, _) = worker
        .join()
        .unwrap()
        .expect("in-flight request must be answered");
    assert_eq!(status, 200, "drain must not abort in-flight work");
    // After the drain the port is closed.
    assert!(http_request(addr, "GET", "/healthz", b"").is_err());
}

#[test]
fn introspection_endpoints_are_strict_json() {
    let (handle, _) = start(30, |_| {});
    let (status, body) = http_request(handle.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    let (status, body) = http_request(handle.addr(), "GET", "/models", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let names: Vec<&str> = v
        .get("models")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter_map(|m| m.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names, ["table5-manual"]);
    let _ = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "t"}"#,
    );
    let (status, body) = http_request(handle.addr(), "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let served = v
        .get("serve.requests_total")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(served >= 3, "requests_total: {served}");
    handle.shutdown();
}

/// Satellite (b): a *searched* champion — not just the built-in expert
/// model — survives export → reload → re-lint → recompile with its
/// trajectories bit-identical to in-process evaluation, both at the
/// registry level and through the full HTTP path.
#[test]
fn champion_export_round_trip_is_bit_identical() {
    let dataset = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1998,
        train_end_year: 1997,
        ..SyntheticConfig::default()
    });
    let gmr = Gmr::new(&dataset);
    let gp = GpConfig {
        pop_size: 10,
        max_gen: 2,
        local_search_steps: 1,
        threads: 1,
        seed: 17,
        ..GpConfig::default()
    };
    let result = gmr.run_with_lint(&gp, false);
    let artifact = ModelArtifact::from_gmr("champion", &result, gp.seed);
    assert_eq!(artifact.provenance.source, "search");
    assert_eq!(artifact.provenance.fitness, result.report.best.fitness);

    // Disk round trip.
    let dir = std::env::temp_dir().join(format!("gmr-serve-champ-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("champion.json");
    artifact.save(&path).unwrap();
    let reloaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(reloaded, artifact, "artifact must round-trip exactly");

    // Registry admission (re-parse + lint + recompile) of the reloaded
    // artifact, vs compiling the champion equations in-process.
    let mut registry = ModelRegistry::new();
    registry.insert(reloaded).unwrap();
    let served = registry.touch("champion").unwrap();
    let inproc =
        CompiledSystem::compile_checked(&result.equations, NUM_VARS, 2, OptOptions::full())
            .unwrap();
    let want = gmr.train.simulate_compiled(&inproc);
    let got = gmr.train.simulate_compiled(&served.system);
    assert_eq!(
        got, want,
        "reloaded champion must reproduce training trajectories bitwise"
    );

    // And through the server: inline forcings (the training split's rows,
    // round-tripped through JSON) with the problem's own init must come
    // back bit-identical to simulate_compiled.
    let mut tables = Tables::new();
    tables.insert("train", HostedTable::Single(gmr.train.forcings.clone()));
    let handle = Server::new(ServerConfig::default(), registry, tables)
        .start()
        .unwrap();
    let opts = gmr.train.opts;
    let mut body = r#"{"model": "champion", "forcings_ref": "train", "init": ["#.to_string();
    push_f64(&mut body, opts.init.0);
    body.push_str(", ");
    push_f64(&mut body, opts.init.1);
    body.push_str("], \"dt\": ");
    push_f64(&mut body, opts.dt);
    body.push_str(", \"state_cap\": ");
    push_f64(&mut body, opts.state_cap);
    body.push('}');
    let (status, bytes) =
        http_request(handle.addr(), "POST", "/simulate", body.as_bytes()).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&bytes));
    let v = gmr_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(
        json_series(&v, "bphy"),
        want,
        "served champion trajectories must be bit-identical to in-process evaluation"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A small braided what-if scenario: the `POST /scenarios` body the
/// scenario tests admit.
fn scenario_spec(name: &str, seed: u64) -> String {
    format!(
        r#"{{"schema": "gmr-scenario/v1", "name": "{name}", "seed": {seed},
            "topology": {{"kind": "braided", "stations": 12}},
            "years": 1,
            "climate": [{{"kind": "monsoon_shift", "days": 12}},
                        {{"kind": "drought", "scale": 0.8}}],
            "spread": 0.3}}"#
    )
}

/// The whole scenario surface over one live server: admission (fresh,
/// idempotent, 409 on mutation), listing, solo `/simulate` of `scn:` refs
/// through the normal batcher, and a `/sweep` whose per-variant summaries
/// are bit-identical to summaries reduced from those solo responses —
/// floats having round-tripped through JSON text both ways.
#[test]
fn scenario_admission_sweep_and_solo_refs_agree() {
    let (handle, _) = start(40, |_| {});
    let addr = handle.addr();
    let spec = scenario_spec("wet-year", 21);

    // Fresh admission, then an idempotent re-admission.
    let (status, body) = http_request(addr, "POST", "/scenarios", spec.as_bytes()).unwrap();
    let v = gmr_json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("fresh").and_then(Value::as_bool), Some(true));
    let (status, body) = http_request(addr, "POST", "/scenarios", spec.as_bytes()).unwrap();
    let v = gmr_json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(v.get("fresh").and_then(Value::as_bool), Some(false));

    // Same name, different spec: refused, nothing changed.
    let mutated = scenario_spec("wet-year", 22);
    let (status, _) = http_request(addr, "POST", "/scenarios", mutated.as_bytes()).unwrap();
    assert_eq!(status, 409);

    // A garbage spec is rejected by the admission gate.
    let (status, _) = http_request(addr, "POST", "/scenarios", b"{\"schema\": \"x\"}").unwrap();
    assert_eq!(status, 400);

    // Listing is strict JSON and carries the canonical spec.
    let (status, body) = http_request(addr, "GET", "/scenarios", b"").unwrap();
    assert_eq!(status, 200);
    let v = gmr_json::parse(&String::from_utf8(body).unwrap()).unwrap();
    let listed = v.get("scenarios").and_then(Value::as_arr).unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(
        listed[0].get("name").and_then(Value::as_str),
        Some("wet-year")
    );
    let days = listed[0].get("days").and_then(Value::as_u64).unwrap() as usize;
    assert!(days >= 365);

    // Sweep a handful of variants...
    let threshold = 22.5;
    let sweep_body = format!(
        r#"{{"scenario": "wet-year", "model": "table5-manual", "variants": 5,
             "reduce": {{"threshold": {threshold}}}}}"#
    );
    let (status, body) = http_request(addr, "POST", "/sweep", sweep_body.as_bytes()).unwrap();
    let v = gmr_json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("days").and_then(Value::as_u64), Some(days as u64));
    let summaries = v.get("summaries").and_then(Value::as_arr).unwrap();
    assert_eq!(summaries.len(), 5);

    // ...then re-derive each variant's summary from a solo `/simulate` of
    // its `scn:` ref (served through the ordinary batcher path) and
    // demand bitwise agreement.
    let reduce = gmr_scenario::ReduceSpec { threshold };
    for (i, s) in summaries.iter().enumerate() {
        let got = gmr_scenario::SweepSummary::from_value(s).expect("well-formed summary");
        let (status, v) = post_simulate(
            &handle,
            &format!(r#"{{"model": "table5-manual", "forcings_ref": "scn:wet-year/{i}"}}"#),
        );
        assert_eq!(status, 200, "{v:?}");
        let bphy = json_series(&v, "bphy");
        let bzoo = json_series(&v, "bzoo");
        let want = gmr_scenario::reduce_series(i as u32, &reduce, &bphy, &bzoo);
        assert_eq!(got, want, "variant {i}: sweep summary != solo-reduced");
    }

    // Unknown refs and scenarios still 404.
    let (status, _) = post_simulate(
        &handle,
        r#"{"model": "table5-manual", "forcings_ref": "scn:nope/0"}"#,
    );
    assert_eq!(status, 404);
    let sweep_404 = r#"{"scenario": "nope", "model": "table5-manual", "variants": 2}"#.as_bytes();
    let (status, _) = http_request(addr, "POST", "/sweep", sweep_404).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "GET", "/sweep", b"").unwrap();
    assert_eq!(status, 405);

    // Per-route latency histograms saw the new endpoints (the old
    // fall-through would have dumped them all into `(other)`), and the
    // scenario counters moved.
    let metrics = gmr_json::parse(&handle.metrics_json()).unwrap();
    for route in ["/scenarios", "/sweep", "/simulate"] {
        let count = metrics
            .get(&format!("serve.route.{route}.latency_us"))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert!(count > 0, "no per-route latency recorded for {route}");
    }
    assert_eq!(
        metrics.get("scn.admitted_total").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        metrics.get("scn.sweeps_total").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        metrics
            .get("scn.sweep_variants_total")
            .and_then(Value::as_u64),
        Some(5)
    );
    handle.shutdown();
}
