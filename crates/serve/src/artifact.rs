//! The `gmr-model/v1` artifact format.
//!
//! A revised river model's deployable form is tiny: two equations with
//! every calibrated constant embedded in the text (`CUA[1.73]`), plus the
//! variable/state/parameter schema those equations were written against
//! and enough provenance to trace the artifact back to the run that
//! produced it. This module defines that interchange format as versioned
//! JSON, with a save/load round trip through the `gmr-expr` parser that
//! preserves every constant bit-for-bit (the pretty-printer renders `f64`s
//! shortest-round-trip, and the parser reads them back with correctly
//! rounded `f64` parsing).
//!
//! Network models additionally carry the station topology (names, kinds,
//! retention ratios, edges with travel delays) so a server can route
//! water bodies between stations without access to the training dataset.

use gmr_expr::{parse, Expr, NameTable, ParseError};
use gmr_hydro::network::{Edge, RiverNetwork, Station, StationId, StationKind};
use gmr_json::{parse as parse_json, push_escaped, push_f64, Value};
use std::fmt;
use std::path::Path;

/// Schema tag required in every artifact file.
pub const SCHEMA: &str = "gmr-model/v1";

/// Canonical labels for the two river equations, in artifact order.
pub const EQUATION_LABELS: [&str; 2] = ["dBPhy/dt", "dBZoo/dt"];

/// Where an artifact came from: the run identity and champion scores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// What produced the artifact: `"search"` for a GP champion,
    /// `"builtin"` for the hand-written expert model, free-form otherwise.
    pub source: String,
    /// Engine master seed of the producing run (0 for builtins).
    pub seed: u64,
    /// Generation at which the champion last improved.
    pub generation: u64,
    /// Champion training fitness (RMSE).
    pub fitness: f64,
    /// Train RMSE, when the producer scored the model.
    pub train_rmse: Option<f64>,
    /// Test RMSE, when the producer scored the model.
    pub test_rmse: Option<f64>,
    /// FNV-1a hash of the producing run's journal JSONL (`fnv1a:<hex>`),
    /// when a journal was live at export time.
    pub journal_hash: Option<String>,
}

/// A loadable model: equations as canonical text plus their schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Registry key (also the default file stem).
    pub name: String,
    /// Canonical expression text, one entry per equation, in
    /// [`EQUATION_LABELS`] order.
    pub equations: Vec<String>,
    /// Forcing-variable names the equations index (Table IV order).
    pub vars: Vec<String>,
    /// State-variable names (`BPhy`, `BZoo`).
    pub states: Vec<String>,
    /// Parameter names (Table III order). Constants are embedded in the
    /// equation text, so these exist to resolve identifiers, not values.
    pub params: Vec<String>,
    /// Station topology, for network models.
    pub topology: Option<RiverNetwork>,
    /// Run identity and scores.
    pub provenance: Provenance,
}

/// Failures while reading or writing an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Json(gmr_json::ParseError),
    /// The JSON is well-formed but not a `gmr-model/v1` document.
    Schema(String),
    /// An equation failed to re-parse against the embedded name table.
    Equation {
        /// Which equation (artifact order).
        index: usize,
        /// The parser's complaint.
        err: ParseError,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "io error: {e}"),
            ArtifactError::Json(e) => write!(f, "invalid JSON: {e}"),
            ArtifactError::Schema(msg) => write!(f, "not a {SCHEMA} artifact: {msg}"),
            ArtifactError::Equation { index, err } => {
                write!(f, "equation {index} does not parse: {err}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a over a byte string, rendered as the artifact's journal-hash form.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("fnv1a:{h:016x}")
}

impl ModelArtifact {
    /// Build an artifact from lowered equations using the canonical river
    /// name table. The expression text is rendered with every constant
    /// embedded, so the artifact is self-contained.
    pub fn from_equations(name: &str, eqs: &[Expr], provenance: Provenance) -> ModelArtifact {
        let names = gmr_bio::name_table();
        ModelArtifact {
            name: name.to_string(),
            equations: eqs.iter().map(|e| e.display(&names).to_string()).collect(),
            vars: names.vars.clone(),
            states: names.states.clone(),
            params: names.params.clone(),
            topology: None,
            provenance,
        }
    }

    /// Build an artifact from a finished GMR run: the champion equations
    /// plus scores, seed and champion generation from its [`RunReport`]
    /// (`gmr_gp::RunReport`), and the live journal's hash when
    /// observability is on.
    pub fn from_gmr(name: &str, result: &gmr_core::GmrResult, seed: u64) -> ModelArtifact {
        let provenance = Provenance {
            source: "search".into(),
            seed,
            generation: result.report.champion_generation(),
            fitness: result.report.best.fitness,
            train_rmse: Some(result.train_rmse),
            test_rmse: Some(result.test_rmse),
            journal_hash: gmr_obsv::global().map(|j| fnv1a_hex(j.to_jsonl().as_bytes())),
        };
        Self::from_equations(name, &result.equations, provenance)
    }

    /// The Table V expert model (M ANUAL) as a `builtin` artifact carrying
    /// the Nakdong station topology — the seed model every revision starts
    /// from, and the model the serving benchmarks run.
    pub fn builtin_manual() -> ModelArtifact {
        let eqs = gmr_bio::manual_system();
        let mut a = Self::from_equations(
            "table5-manual",
            &eqs,
            Provenance {
                source: "builtin".into(),
                ..Provenance::default()
            },
        );
        a.topology = Some(RiverNetwork::nakdong());
        a
    }

    /// The name table embedded in this artifact.
    pub fn name_table(&self) -> NameTable {
        NameTable {
            vars: self.vars.clone(),
            states: self.states.clone(),
            params: self.params.clone(),
        }
    }

    /// Re-parse the equation text into expression trees. Bare parameter
    /// names (no embedded `[value]`) fall back to the river prior means;
    /// the artifact writer always embeds values, so that path only fires
    /// on hand-edited files.
    pub fn parse_equations(&self) -> Result<Vec<Expr>, ArtifactError> {
        let names = self.name_table();
        self.equations
            .iter()
            .enumerate()
            .map(|(index, text)| {
                parse(text, &names, |k| gmr_bio::params::spec(k).mean)
                    .map_err(|err| ArtifactError::Equation { index, err })
            })
            .collect()
    }

    /// Serialize to a `gmr-model/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n  \"schema\": \"");
        o.push_str(SCHEMA);
        o.push_str("\",\n  \"name\": ");
        push_escaped(&mut o, &self.name);
        o.push_str(",\n  \"equations\": [");
        for (i, (label, text)) in EQUATION_LABELS.iter().zip(&self.equations).enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n    {\"label\": ");
            push_escaped(&mut o, label);
            o.push_str(", \"text\": ");
            push_escaped(&mut o, text);
            o.push('}');
        }
        o.push_str("\n  ],\n");
        for (key, list) in [
            ("vars", &self.vars),
            ("states", &self.states),
            ("params", &self.params),
        ] {
            o.push_str(&format!("  \"{key}\": ["));
            for (i, name) in list.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                push_escaped(&mut o, name);
            }
            o.push_str("],\n");
        }
        if let Some(net) = &self.topology {
            o.push_str("  \"topology\": {\"stations\": [");
            for (i, (_, st)) in net.stations().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("\n    {\"name\": ");
                push_escaped(&mut o, &st.name);
                o.push_str(&format!(
                    ", \"kind\": \"{}\", \"retention\": ",
                    match st.kind {
                        StationKind::Measuring => "measuring",
                        StationKind::Virtual => "virtual",
                    }
                ));
                push_f64(&mut o, st.retention);
                o.push('}');
            }
            o.push_str("\n  ], \"edges\": [");
            for (i, e) in net.edges().iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("\n    {\"from\": ");
                push_escaped(&mut o, &net.station(e.from).name);
                o.push_str(", \"to\": ");
                push_escaped(&mut o, &net.station(e.to).name);
                o.push_str(", \"distance_km\": ");
                push_f64(&mut o, e.distance_km);
                o.push_str(&format!(", \"delay_days\": {}}}", e.delay_days));
            }
            o.push_str("\n  ]},\n");
        }
        let p = &self.provenance;
        o.push_str("  \"provenance\": {\"source\": ");
        push_escaped(&mut o, &p.source);
        o.push_str(&format!(
            ", \"seed\": {}, \"generation\": {}, \"fitness\": ",
            p.seed, p.generation
        ));
        push_f64(&mut o, p.fitness);
        if let Some(v) = p.train_rmse {
            o.push_str(", \"train_rmse\": ");
            push_f64(&mut o, v);
        }
        if let Some(v) = p.test_rmse {
            o.push_str(", \"test_rmse\": ");
            push_f64(&mut o, v);
        }
        if let Some(h) = &p.journal_hash {
            o.push_str(", \"journal_hash\": ");
            push_escaped(&mut o, h);
        }
        o.push_str("}\n}\n");
        o
    }

    /// Parse a `gmr-model/v1` document.
    pub fn from_json(text: &str) -> Result<ModelArtifact, ArtifactError> {
        let v = parse_json(text).map_err(ArtifactError::Json)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(ArtifactError::Schema(format!(
                "schema tag is {schema:?}, expected {SCHEMA:?}"
            )));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ArtifactError::Schema("missing \"name\"".into()))?
            .to_string();
        let equations: Vec<String> = v
            .get("equations")
            .and_then(Value::as_arr)
            .ok_or_else(|| ArtifactError::Schema("missing \"equations\"".into()))?
            .iter()
            .map(|eq| {
                eq.get("text")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ArtifactError::Schema("equation without \"text\"".into()))
            })
            .collect::<Result<_, _>>()?;
        if equations.is_empty() {
            return Err(ArtifactError::Schema("no equations".into()));
        }
        let str_list = |key: &str| -> Result<Vec<String>, ArtifactError> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| ArtifactError::Schema(format!("missing {key:?}")))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ArtifactError::Schema(format!("non-string in {key:?}")))
                })
                .collect()
        };
        let topology = match v.get("topology") {
            None => None,
            Some(t) => Some(parse_topology(t)?),
        };
        let p = v
            .get("provenance")
            .ok_or_else(|| ArtifactError::Schema("missing \"provenance\"".into()))?;
        let provenance = Provenance {
            source: p
                .get("source")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: p.get("seed").and_then(Value::as_u64).unwrap_or(0),
            generation: p.get("generation").and_then(Value::as_u64).unwrap_or(0),
            fitness: p.get("fitness").and_then(Value::as_f64).unwrap_or(f64::NAN),
            train_rmse: p.get("train_rmse").and_then(Value::as_f64),
            test_rmse: p.get("test_rmse").and_then(Value::as_f64),
            journal_hash: p
                .get("journal_hash")
                .and_then(Value::as_str)
                .map(str::to_string),
        };
        Ok(ModelArtifact {
            name,
            equations,
            vars: str_list("vars")?,
            states: str_list("states")?,
            params: str_list("params")?,
            topology,
            provenance,
        })
    }

    /// Write the artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Read an artifact from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

fn parse_topology(t: &Value) -> Result<RiverNetwork, ArtifactError> {
    let bad = |msg: &str| ArtifactError::Schema(format!("topology: {msg}"));
    let st_arr = t
        .get("stations")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing stations"))?;
    let mut stations = Vec::with_capacity(st_arr.len());
    let mut index = std::collections::BTreeMap::new();
    for (i, s) in st_arr.iter().enumerate() {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("station without name"))?;
        let kind = match s.get("kind").and_then(Value::as_str) {
            Some("measuring") => StationKind::Measuring,
            Some("virtual") => StationKind::Virtual,
            other => return Err(bad(&format!("station kind {other:?}"))),
        };
        let retention = s
            .get("retention")
            .and_then(Value::as_f64)
            .ok_or_else(|| bad("station without retention"))?;
        index.insert(name.to_string(), StationId(i));
        stations.push(Station {
            name: name.to_string(),
            kind,
            retention,
        });
    }
    let edge_arr = t
        .get("edges")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing edges"))?;
    let mut edges = Vec::with_capacity(edge_arr.len());
    for e in edge_arr {
        let endpoint = |key: &str| -> Result<StationId, ArtifactError> {
            let name = e
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| bad(&format!("edge without {key:?}")))?;
            index
                .get(name)
                .copied()
                .ok_or_else(|| bad(&format!("edge references unknown station {name:?}")))
        };
        edges.push(Edge {
            from: endpoint("from")?,
            to: endpoint("to")?,
            distance_km: e.get("distance_km").and_then(Value::as_f64).unwrap_or(0.0),
            delay_days: e
                .get("delay_days")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("edge without delay_days"))? as usize,
        });
    }
    RiverNetwork::new(stations, edges).map_err(|e| bad(&format!("invalid network: {e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips_bit_identically() {
        let a = ModelArtifact::builtin_manual();
        let text = a.to_json();
        let b = ModelArtifact::from_json(&text).expect("parses");
        assert_eq!(a.name, b.name);
        assert_eq!(a.equations, b.equations);
        assert_eq!(a.vars, b.vars);
        assert_eq!(a.states, b.states);
        assert_eq!(a.params, b.params);
        assert_eq!(a.provenance, b.provenance);
        // Equations re-parse to exactly the expert system.
        let eqs = b.parse_equations().expect("equations parse");
        let manual = gmr_bio::manual_system();
        assert_eq!(eqs[0], manual[0]);
        assert_eq!(eqs[1], manual[1]);
        // Topology survives: same station count, edges, delays.
        let net = b.topology.expect("topology present");
        let nak = RiverNetwork::nakdong();
        assert_eq!(net.len(), nak.len());
        assert_eq!(net.edges().len(), nak.edges().len());
        for (a, b) in net.edges().iter().zip(nak.edges()) {
            assert_eq!((a.from, a.to, a.delay_days), (b.from, b.to, b.delay_days));
        }
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(matches!(
            ModelArtifact::from_json("{\"schema\": \"gmr-model/v0\"}"),
            Err(ArtifactError::Schema(_))
        ));
        assert!(matches!(
            ModelArtifact::from_json("not json"),
            Err(ArtifactError::Json(_))
        ));
        let a = ModelArtifact::builtin_manual();
        let broken = a.to_json().replace("BPhy *", "BPhy ***");
        let parsed = ModelArtifact::from_json(&broken).expect("still valid JSON");
        assert!(matches!(
            parsed.parse_equations(),
            Err(ArtifactError::Equation { index: 0, .. })
        ));
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a_hex(b""), "fnv1a:cbf29ce484222325");
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }
}
