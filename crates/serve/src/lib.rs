//! `gmr-serve` — the serving subsystem: model artifacts, a lint-gated
//! registry, and a batching HTTP inference server.
//!
//! Four PRs of this reproduction can *train* revised river models; this
//! crate is the layer that cashes in on the result. Symbolic-regression
//! models' cheap evaluation is their key operational advantage (Kronberger
//! et al., arXiv:2107.06131) — a calibrated champion is two short
//! equations, so a prediction query is microseconds of register-VM work.
//! The stack has three layers:
//!
//! * [`artifact`] — the versioned `gmr-model/v1` JSON interchange format:
//!   equations as canonical re-parseable expression text (constants
//!   embedded), the variable/state/parameter schema, optional station
//!   topology for network models, and provenance (seed, generation,
//!   fitness, journal hash). Round-trips through the `gmr-expr` parser
//!   bit-identically.
//! * [`registry`] — loads artifacts from disk, re-lints them with the
//!   `gmr-lint` battery (Error-severity findings reject the artifact),
//!   recompiles through `CompiledSystem::compile_checked`, and memoises
//!   the compiled system behind an `Arc` exactly like `gp::Phenotype`.
//! * [`server`] — an HTTP/1.1 server hand-rolled on `std::net` (the
//!   build environment has no crates.io access — same constraint that
//!   produced `compat/`): a fixed worker pool, bounded accept/simulation
//!   queues with explicit `429` load-shedding, request batching that
//!   coalesces concurrent simulations of one model into a single columnar
//!   sweep (see [`batch`]), graceful drain on SIGTERM, and the
//!   `/healthz`, `/models`, `/simulate`, `/metrics` endpoints.
//!
//! Everything is `std`-only; JSON goes through the shared [`gmr_json`]
//! crate, whose shortest-round-trip float rendering is what makes the
//! "served responses are bit-identical to in-process evaluation" contract
//! (pinned by `tests/server.rs`) possible over a text protocol.

//! A fourth layer shards the stack horizontally:
//!
//! * [`cluster`] + [`gateway`] — `gmr-serve cluster` supervises N backend
//!   server processes (health-checked restarts, graceful drain) behind a
//!   consistent-hash routing gateway that keeps each (model, table) pair
//!   pinned to one backend — so every backend's hot tier and prefix
//!   caches only hold its shard — while preserving the bounded-queue/429
//!   discipline end to end.
//!
//! And a fifth serves what-if studies instead of single trajectories:
//!
//! * [`scenario`] — `POST /scenarios` admits a `gmr-scenario/v1` spec
//!   (lint-gated, append-only, name-immutable), after which every variant
//!   of the compiled scenario is addressable as a virtual forcing table
//!   `scn:<name>/<variant>`, and `POST /sweep` fans one request into
//!   hundreds of jittered forcing variants executed through lock-step
//!   ensemble lanes and reduced online to per-variant summary statistics
//!   — bit-identical to solo `/simulate` runs of the same refs.

pub mod artifact;
pub mod batch;
pub mod cluster;
pub mod gateway;
pub mod http;
pub mod registry;
pub mod scenario;
pub mod server;
pub mod sig;
pub mod trace;

pub use artifact::{ModelArtifact, Provenance, SCHEMA};
pub use cluster::{Cluster, ClusterConfig};
pub use gateway::{BackendSlot, Gateway, GatewayConfig, GatewayHandle, Ring};
pub use registry::{ModelRegistry, RegistryError, ServableModel};
pub use scenario::{ScenarioStore, SweepRequest, MAX_VARIANTS, SCN_REF_PREFIX};
pub use server::{Server, ServerConfig, ServerHandle};
