//! Consistent-hash routing gateway for a sharded serving cluster.
//!
//! The gateway is a thin HTTP proxy in front of N backend `gmr-serve`
//! processes. `/simulate` requests are routed by **(model, table)**: the
//! pair is hashed onto a [`Ring`] of virtual nodes, so one backend owns
//! each pair and its hot tier / prefix caches only ever hold its shard.
//! That pinning is the whole scaling story — backends don't share memory,
//! they share *nothing*, and aggregate hot-cache capacity grows linearly
//! with the backend count (see DESIGN.md "Cluster serving").
//!
//! Discipline preserved end to end:
//!
//! * **Bounded queues** — the gateway has its own accept queue and sheds
//!   with `429` + `Retry-After` exactly like a backend; a backend's `429`
//!   (with its `Retry-After`) is propagated verbatim, never retried
//!   against a different backend (that would break pinning under the very
//!   overload that makes pinning matter).
//! * **Bit-identity** — `/simulate` bodies are forwarded untouched both
//!   ways; the response bytes are the backend's bytes.
//! * **Failover** — a transport error marks the backend dead and the
//!   request walks to the next live backend on the ring (at most once per
//!   candidate). The supervisor's health loop revives the primary, after
//!   which the pair routes back to it. Requests drain or shed; they never
//!   hang.

use crate::http::{self, HttpError, Request};
use crate::server::{read_response_full, write_request_traced, Response};
use crate::trace::TraceCtx;
use gmr_json::Value;
use gmr_obsv::journal::Event;
use gmr_obsv::metrics::{
    merge_buckets, quantile_from_buckets, snapshot_json, Counter, Histogram, Registry,
};
use std::collections::VecDeque;
use std::io::{self, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Virtual nodes per backend on the hash ring. Enough that the keyspace
/// splits evenly across a handful of backends (the paper-scale cluster);
/// cheap enough that ring construction is trivial.
pub const VNODES: usize = 64;

/// 64-bit FNV-1a — stable across processes and releases, which is what
/// makes routing deterministic for tests and cache-warm restarts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over backend *slot indexes*. The ring is built
/// once from the backend count: slot identities (not ephemeral ports) are
/// hashed, so a backend restarted on a new port keeps its keyspace.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(vnode hash, backend index)`, sorted by hash.
    points: Vec<(u64, u32)>,
    backends: usize,
}

impl Ring {
    /// Build the ring for `backends` slots.
    pub fn new(backends: usize) -> Ring {
        let mut points = Vec::with_capacity(backends * VNODES);
        for b in 0..backends {
            for v in 0..VNODES {
                points.push((fnv1a(format!("backend-{b}/vnode-{v}").as_bytes()), b as u32));
            }
        }
        points.sort_unstable();
        Ring { points, backends }
    }

    /// The routing key for a simulate request: model name and forcing
    /// table, NUL-joined (neither may contain NUL — model names come from
    /// artifact files, table names from the hosted-table map).
    pub fn key(model: &str, table: &str) -> String {
        format!("{model}\0{table}")
    }

    /// Backend preference order for `key`: the owner first (first vnode
    /// clockwise of the key's hash), then each distinct backend in ring
    /// order — the failover sequence.
    pub fn preference(&self, key: &str) -> Vec<u32> {
        let h = fnv1a(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut order = Vec::with_capacity(self.backends);
        let mut seen = vec![false; self.backends];
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if !seen[b as usize] {
                seen[b as usize] = true;
                order.push(b);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

/// One backend's routing state, shared between the gateway (which reads
/// the address and flips `alive` off on transport errors) and the
/// supervisor (which sets the address on spawn/restart and flips `alive`
/// both ways from health probes).
#[derive(Debug, Default)]
pub struct BackendSlot {
    addr: Mutex<Option<SocketAddr>>,
    alive: AtomicBool,
}

impl BackendSlot {
    /// Record a (re)spawned backend's bound address and mark it live.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().unwrap() = Some(addr);
        self.alive.store(true, Ordering::SeqCst);
    }

    /// The address, when the slot is believed live.
    pub fn addr(&self) -> Option<SocketAddr> {
        if !self.is_alive() {
            return None;
        }
        *self.addr.lock().unwrap()
    }

    /// The address regardless of liveness (health probes need it).
    pub fn addr_any(&self) -> Option<SocketAddr> {
        *self.addr.lock().unwrap()
    }

    /// Whether the slot is believed live.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Mark the slot dead (transport error or failed health probe).
    pub fn mark_down(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Mark the slot live again (health probe succeeded).
    pub fn mark_up(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }
}

/// Gateway tuning; same knobs and defaults as the backend server where
/// they overlap.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Proxy worker threads.
    pub workers: usize,
    /// Accepted-connection queue bound; beyond it the gateway sheds `429`.
    pub conn_queue: usize,
    /// Per-read socket timeout on client connections.
    pub read_timeout: Duration,
    /// Idle reads tolerated before a keep-alive client is closed (`408`).
    pub max_idle_reads: u32,
    /// Socket timeout for backend exchanges. Bounds how long a proxied
    /// request can hold a gateway worker — "drain or 429, never hang".
    pub backend_timeout: Duration,
    /// SLO latency target for proxied `/simulate` requests, milliseconds:
    /// a request is "good" when it returns 200 within this bound. Drives
    /// the `slo` section of the gateway's `/metrics`.
    pub slo_target_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            conn_queue: 64,
            read_timeout: Duration::from_millis(250),
            max_idle_reads: 40,
            backend_timeout: Duration::from_secs(30),
            slo_target_ms: 250,
        }
    }
}

/// Gateway metrics, exposed by its `/metrics` alongside the cluster
/// rollup.
struct GatewayMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    shed: Arc<Counter>,
    proxied: Arc<Counter>,
    failovers: Arc<Counter>,
    backend_down: Arc<Counter>,
    latency_us: Arc<Histogram>,
    /// Per-route latency, index-aligned with [`ROUTE_TAGS`].
    route_latency: Vec<Arc<Histogram>>,
    /// Per-backend proxied-exchange latency, index = slot.
    backend_latency: Vec<Arc<Histogram>>,
    /// Proxied `/simulate` requests answered 200 within the SLO target.
    slo_good: Arc<Counter>,
    /// All proxied `/simulate` requests (the SLO denominator).
    slo_total: Arc<Counter>,
}

/// Every endpoint tag [`endpoint_tag`] can return, in one fixed order so
/// per-route histograms are pre-registered rather than created per hit.
const ROUTE_TAGS: [&str; 7] = [
    "gw:/healthz",
    "gw:/models",
    "gw:/simulate",
    "gw:/scenarios",
    "gw:/sweep",
    "gw:/metrics",
    "gw:(other)",
];

impl GatewayMetrics {
    fn new(backends: usize) -> GatewayMetrics {
        let registry = Registry::new();
        GatewayMetrics {
            requests: registry.counter("gateway.requests_total"),
            shed: registry.counter("gateway.shed_total"),
            proxied: registry.counter("gateway.proxied_total"),
            failovers: registry.counter("gateway.failovers_total"),
            backend_down: registry.counter("gateway.backend_down_total"),
            latency_us: registry.histogram("gateway.latency_us"),
            route_latency: ROUTE_TAGS
                .iter()
                .map(|t| registry.histogram(&format!("gateway.route.{t}.latency_us")))
                .collect(),
            backend_latency: (0..backends)
                .map(|b| registry.histogram(&format!("gateway.backend.{b}.latency_us")))
                .collect(),
            slo_good: registry.counter("gateway.slo_good"),
            slo_total: registry.counter("gateway.slo_total"),
            registry,
        }
    }

    fn record_route(&self, tag: &str, dur_us: u64) {
        if let Some(i) = ROUTE_TAGS.iter().position(|t| *t == tag) {
            self.route_latency[i].record(dur_us);
        }
    }
}

struct GwShared {
    slots: Arc<Vec<BackendSlot>>,
    ring: Ring,
    metrics: GatewayMetrics,
    shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_ready: Condvar,
    config: GatewayConfig,
}

impl GwShared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A configured gateway, ready to start over a set of backend slots.
pub struct Gateway {
    config: GatewayConfig,
    slots: Arc<Vec<BackendSlot>>,
}

/// A running gateway.
pub struct GatewayHandle {
    addr: SocketAddr,
    shared: Arc<GwShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// A gateway routing over `slots` (one per supervised backend).
    pub fn new(config: GatewayConfig, slots: Arc<Vec<BackendSlot>>) -> Gateway {
        Gateway { config, slots }
    }

    /// Bind, spawn acceptor + workers, return a handle.
    pub fn start(self) -> io::Result<GatewayHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = self.config.workers.max(1);
        let ring = Ring::new(self.slots.len());
        let metrics = GatewayMetrics::new(self.slots.len());
        let shared = Arc::new(GwShared {
            slots: self.slots,
            ring,
            metrics,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conns_ready: Condvar::new(),
            config: self.config,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("gw-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("gw-acceptor".into())
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        gmr_obsv::emit(Event::Note {
            name: "gateway.listen",
            msg: format!("gateway listening on {addr}"),
        });
        Ok(GatewayHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl GatewayHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, finish queued connections, join.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.conns_ready.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &GwShared) {
    loop {
        if shared.draining() {
            shared.conns_ready.notify_all();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut q = shared.conns.lock().unwrap();
                if q.len() >= shared.config.conn_queue {
                    drop(q);
                    // The gateway's own bounded-queue discipline: shed at
                    // the door with 429 + Retry-After, like a backend.
                    shared.metrics.shed.inc();
                    shared.metrics.requests.inc();
                    let ctx = TraceCtx::mint();
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    let _ = http::write_response_traced(
                        &mut stream,
                        429,
                        "application/json",
                        &http::error_body("gateway connection queue full"),
                        true,
                        None,
                        Some(&ctx.header_value()),
                    );
                    gmr_obsv::emit(Event::Request {
                        endpoint: "gw:(accept)",
                        status: 429,
                        dur_us: 0,
                        batch: 0,
                    });
                    gmr_obsv::emit(Event::Access {
                        trace: ctx.trace,
                        span: ctx.span,
                        parent: ctx.parent,
                        method: "-".into(),
                        path: "gw:(accept)",
                        model: String::new(),
                        table: String::new(),
                        status: 429,
                        shed: true,
                        batched: false,
                        queue_us: 0,
                        sim_us: 0,
                        dur_us: 0,
                    });
                } else {
                    q.push_back(stream);
                    drop(q);
                    shared.conns_ready.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One pooled keep-alive backend connection per slot, owned by a single
/// gateway worker (no cross-thread contention on the sockets).
struct BackendPool {
    conns: Vec<Option<(SocketAddr, BufReader<TcpStream>)>>,
    timeout: Duration,
}

impl BackendPool {
    fn new(n: usize, timeout: Duration) -> BackendPool {
        BackendPool {
            conns: (0..n).map(|_| None).collect(),
            timeout,
        }
    }

    /// Issue one exchange against backend slot `b` at `addr`, reusing the
    /// pooled connection when it is still for the same address. A stale
    /// kept-alive connection gets one retry on a fresh socket.
    fn exchange(
        &mut self,
        b: usize,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        trace: Option<&str>,
    ) -> io::Result<Response> {
        let reused = matches!(&self.conns[b], Some((a, _)) if *a == addr);
        if !reused {
            self.conns[b] = Some((addr, self.connect(addr)?));
        }
        match self.try_exchange(b, method, path, body, trace) {
            // A 408 surfacing on a *reused* connection is the backend's
            // idle-close notice that raced our write, never an answer to
            // the request we just sent — replay on a fresh socket.
            Ok(resp) if reused && resp.status == 408 => {
                self.conns[b] = Some((addr, self.connect(addr)?));
                self.try_exchange(b, method, path, body, trace)
            }
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                self.conns[b] = Some((addr, self.connect(addr).map_err(|_| e)?));
                self.try_exchange(b, method, path, body, trace)
            }
            Err(e) => {
                self.conns[b] = None;
                Err(e)
            }
        }
    }

    fn connect(&self, addr: SocketAddr) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(BufReader::new(stream))
    }

    fn try_exchange(
        &mut self,
        b: usize,
        method: &str,
        path: &str,
        body: &[u8],
        trace: Option<&str>,
    ) -> io::Result<Response> {
        let (_, conn) = self.conns[b].as_mut().expect("connection just ensured");
        let r = write_request_traced(&mut conn.get_ref(), method, path, body, false, trace)
            .and_then(|()| read_response_full(conn));
        match r {
            Ok(resp) => {
                if resp.close {
                    self.conns[b] = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conns[b] = None;
                Err(e)
            }
        }
    }
}

fn worker_loop(shared: &GwShared) {
    let mut pool = BackendPool::new(shared.slots.len(), shared.config.backend_timeout);
    loop {
        let stream = {
            let mut q = shared.conns.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .conns_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(stream, shared, &mut pool);
    }
}

fn handle_connection(stream: TcpStream, shared: &GwShared, pool: &mut BackendPool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut idle = 0u32;
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => {
                idle = 0;
                let close = req.wants_close() || shared.draining();
                // The gateway is normally the trace root; adopting lets a
                // caller that already has a context (tests, another tier)
                // keep the chain intact.
                let ctx = TraceCtx::from_header(req.header("x-gmr-trace"));
                let tag = endpoint_tag(&req.path);
                let t0 = Instant::now();
                let served = dispatch(&req, shared, pool, ctx);
                let dur_us = t0.elapsed().as_micros() as u64;
                let status = served.status;
                shared.metrics.requests.inc();
                if status == 429 {
                    shared.metrics.shed.inc();
                }
                shared.metrics.latency_us.record(dur_us);
                shared.metrics.record_route(tag, dur_us);
                if let Some(b) = served.backend {
                    shared.metrics.backend_latency[b].record(served.upstream_us);
                }
                if tag == "gw:/simulate" {
                    shared.metrics.slo_total.inc();
                    if status == 200 && dur_us <= shared.config.slo_target_ms * 1000 {
                        shared.metrics.slo_good.inc();
                    }
                }
                gmr_obsv::emit(Event::Request {
                    endpoint: tag,
                    status,
                    dur_us,
                    batch: 0,
                });
                gmr_obsv::emit(Event::Access {
                    trace: ctx.trace,
                    span: ctx.span,
                    parent: ctx.parent,
                    method: req.method.clone(),
                    path: tag,
                    model: served.model,
                    table: served.table,
                    status,
                    // A 429 here is a backend's shed relayed verbatim; the
                    // gateway's own sheds happen in the accept loop.
                    shed: false,
                    batched: false,
                    queue_us: 0,
                    sim_us: served.upstream_us,
                    dur_us,
                });
                if http::write_response_traced(
                    &mut writer,
                    status,
                    "application/json",
                    &served.body,
                    close,
                    served.retry_after,
                    Some(&ctx.header_value()),
                )
                .is_err()
                    || close
                {
                    return;
                }
            }
            Err(HttpError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                idle += 1;
                if shared.draining() {
                    return;
                }
                if idle >= shared.config.max_idle_reads {
                    let _ = http::write_response(
                        &mut writer,
                        408,
                        "application/json",
                        &http::error_body("idle timeout"),
                        true,
                    );
                    return;
                }
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(msg)) => {
                shared.metrics.requests.inc();
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "application/json",
                    &http::error_body(msg),
                    true,
                );
                return;
            }
        }
    }
}

fn endpoint_tag(path: &str) -> &'static str {
    let bare = path.split('?').next().unwrap_or(path);
    match bare {
        "/healthz" => "gw:/healthz",
        "/models" => "gw:/models",
        "/simulate" => "gw:/simulate",
        "/scenarios" => "gw:/scenarios",
        "/sweep" => "gw:/sweep",
        "/metrics" => "gw:/metrics",
        _ => "gw:(other)",
    }
}

/// What one gateway dispatch produced: the response to relay plus the
/// attribution the `access` event and per-backend metrics record.
struct GwServed {
    status: u16,
    body: Vec<u8>,
    retry_after: Option<u64>,
    /// Model named by a `/simulate` body.
    model: String,
    /// Routing table name (`"(inline)"` for shipped rows).
    table: String,
    /// Backend slot that answered, when one did.
    backend: Option<usize>,
    /// Microseconds spent in the answering backend exchange.
    upstream_us: u64,
}

impl GwServed {
    fn plain(status: u16, body: Vec<u8>) -> GwServed {
        GwServed {
            status,
            body,
            retry_after: None,
            model: String::new(),
            table: String::new(),
            backend: None,
            upstream_us: 0,
        }
    }

    fn relayed(resp: Response, backend: usize, upstream_us: u64) -> GwServed {
        GwServed {
            status: resp.status,
            body: resp.body,
            retry_after: resp.retry_after,
            model: String::new(),
            table: String::new(),
            backend: Some(backend),
            upstream_us,
        }
    }
}

/// Route one request.
fn dispatch(req: &Request, shared: &GwShared, pool: &mut BackendPool, ctx: TraceCtx) -> GwServed {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let alive = shared.slots.iter().filter(|s| s.is_alive()).count();
            let body = format!(
                "{{\"ok\": {}, \"backends\": {}, \"alive\": {}, \"draining\": {}}}\n",
                alive > 0,
                shared.slots.len(),
                alive,
                shared.draining()
            );
            GwServed::plain(200, body.into_bytes())
        }
        ("GET", "/models") => forward_any(req, shared, pool, "GET", "/models", ctx),
        ("GET", "/metrics") => GwServed::plain(200, rollup_metrics(shared, pool)),
        ("POST", "/simulate") => proxy_simulate(req, shared, pool, ctx),
        ("POST", "/scenarios") => broadcast_scenarios(req, shared, pool, ctx),
        ("GET", "/scenarios") => forward_any(req, shared, pool, "GET", "/scenarios", ctx),
        ("POST", "/sweep") => proxy_sweep(req, shared, pool, ctx),
        ("GET", "/simulate" | "/sweep") | ("POST", "/healthz" | "/models" | "/metrics") => {
            GwServed::plain(
                405,
                http::error_body("method not allowed for this endpoint"),
            )
        }
        _ => GwServed::plain(404, http::error_body("no such endpoint")),
    }
}

/// Broadcast one `POST /scenarios` admission to *every* live backend.
/// Scenario refs are not pinned the way hosted tables are: a sweep for
/// `(model, scn:name)` and a solo `/simulate` of `scn:name/<v>` hash to
/// different ring keys, so any backend may be asked to resolve the
/// scenario — all of them must host it. Admission is idempotent on the
/// backends, so re-broadcasting after a restart is harmless. The relayed
/// response is the worst one observed (any backend's rejection wins over
/// the successes — the caller must not believe a partially-admitted
/// scenario is servable).
fn broadcast_scenarios(
    req: &Request,
    shared: &GwShared,
    pool: &mut BackendPool,
    ctx: TraceCtx,
) -> GwServed {
    let header = ctx.header_value();
    let mut worst: Option<(usize, Response, u64)> = None;
    let mut reached = 0usize;
    for (b, slot) in shared.slots.iter().enumerate() {
        let Some(addr) = slot.addr() else { continue };
        let t0 = Instant::now();
        match pool.exchange(b, addr, "POST", "/scenarios", &req.body, Some(&header)) {
            Ok(resp) => {
                reached += 1;
                let strictly_worse = match &worst {
                    None => true,
                    Some((_, held, _)) => resp.status >= 400 && resp.status > held.status,
                };
                if strictly_worse {
                    worst = Some((b, resp, t0.elapsed().as_micros() as u64));
                }
            }
            Err(_) => mark_backend_down(shared, b),
        }
    }
    match worst {
        Some((b, resp, upstream_us)) if reached > 0 => GwServed::relayed(resp, b, upstream_us),
        _ => GwServed::plain(503, http::error_body("no live backend")),
    }
}

/// Proxy one `/sweep` by (model, `scn:<scenario>`) consistent hashing —
/// the same ring walk and 429-is-final discipline as [`proxy_simulate`],
/// so repeated sweeps of one scenario land on the backend whose hot tier
/// and prefix caches already hold it.
fn proxy_sweep(
    req: &Request,
    shared: &GwShared,
    pool: &mut BackendPool,
    ctx: TraceCtx,
) -> GwServed {
    let _sp = gmr_obsv::span!("gateway.route", ctx.trace);
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return GwServed::plain(400, http::error_body("body is not UTF-8"));
    };
    let value = match gmr_json::parse(body) {
        Ok(v) => v,
        Err(e) => return GwServed::plain(400, http::error_body(&format!("invalid JSON: {e}"))),
    };
    let Some(model) = value.get("model").and_then(Value::as_str) else {
        return GwServed::plain(400, http::error_body("missing \"model\""));
    };
    let Some(scenario) = value.get("scenario").and_then(Value::as_str) else {
        return GwServed::plain(400, http::error_body("missing \"scenario\""));
    };
    let table = format!("{}{scenario}", crate::scenario::SCN_REF_PREFIX);
    let key = Ring::key(model, &table);
    let header = ctx.header_value();
    let mut tried = 0u32;
    for b in shared.ring.preference(&key) {
        let b = b as usize;
        let Some(addr) = shared.slots[b].addr() else {
            continue;
        };
        if tried > 0 {
            shared.metrics.failovers.inc();
        }
        tried += 1;
        let t0 = Instant::now();
        match pool.exchange(b, addr, "POST", "/sweep", &req.body, Some(&header)) {
            Ok(resp) => {
                shared.metrics.proxied.inc();
                let mut served = GwServed::relayed(resp, b, t0.elapsed().as_micros() as u64);
                served.model = model.to_string();
                served.table = table;
                return served;
            }
            Err(_) => mark_backend_down(shared, b),
        }
    }
    let mut served = GwServed::plain(503, http::error_body("no live backend"));
    served.model = model.to_string();
    served.table = table;
    served
}

/// Forward a request to the first live backend (all backends host the
/// same replicated artifacts, so any will do for `/models`).
fn forward_any(
    _req: &Request,
    shared: &GwShared,
    pool: &mut BackendPool,
    method: &str,
    path: &str,
    ctx: TraceCtx,
) -> GwServed {
    let header = ctx.header_value();
    for (b, slot) in shared.slots.iter().enumerate() {
        let Some(addr) = slot.addr() else { continue };
        let t0 = Instant::now();
        match pool.exchange(b, addr, method, path, b"", Some(&header)) {
            Ok(resp) => return GwServed::relayed(resp, b, t0.elapsed().as_micros() as u64),
            Err(_) => mark_backend_down(shared, b),
        }
    }
    GwServed::plain(503, http::error_body("no live backend"))
}

/// Proxy one `/simulate` by (model, table) consistent hashing, walking
/// the ring past dead backends. A backend's `429` is final (propagated,
/// not failed over): under overload, spilling a pinned key onto other
/// backends would evict *their* hot shards and collapse the very cache
/// locality the ring exists to protect.
fn proxy_simulate(
    req: &Request,
    shared: &GwShared,
    pool: &mut BackendPool,
    ctx: TraceCtx,
) -> GwServed {
    let _sp = gmr_obsv::span!("gateway.route", ctx.trace);
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return GwServed::plain(400, http::error_body("body is not UTF-8"));
    };
    let value = match gmr_json::parse(body) {
        Ok(v) => v,
        Err(e) => return GwServed::plain(400, http::error_body(&format!("invalid JSON: {e}"))),
    };
    let Some(model) = value.get("model").and_then(Value::as_str) else {
        return GwServed::plain(400, http::error_body("missing \"model\""));
    };
    // Inline-forcings requests have no table name; they hash by model
    // alone so repeats still pin to one backend's hot tier.
    let table = value
        .get("forcings_ref")
        .and_then(Value::as_str)
        .unwrap_or("(inline)");
    let key = Ring::key(model, table);
    let header = ctx.header_value();
    let mut tried = 0u32;
    for b in shared.ring.preference(&key) {
        let b = b as usize;
        let Some(addr) = shared.slots[b].addr() else {
            continue;
        };
        if tried > 0 {
            shared.metrics.failovers.inc();
        }
        tried += 1;
        let t0 = Instant::now();
        match pool.exchange(b, addr, "POST", "/simulate", &req.body, Some(&header)) {
            Ok(resp) => {
                shared.metrics.proxied.inc();
                let mut served = GwServed::relayed(resp, b, t0.elapsed().as_micros() as u64);
                served.model = model.to_string();
                served.table = table.to_string();
                return served;
            }
            Err(_) => mark_backend_down(shared, b),
        }
    }
    let mut served = GwServed::plain(503, http::error_body("no live backend"));
    served.model = model.to_string();
    served.table = table.to_string();
    served
}

fn mark_backend_down(shared: &GwShared, b: usize) {
    shared.slots[b].mark_down();
    shared.metrics.backend_down.inc();
    gmr_obsv::emit(Event::Backend {
        idx: b as u32,
        addr: shared.slots[b]
            .addr_any()
            .map(|a| a.to_string())
            .unwrap_or_default(),
        state: "down",
        restarts: 0,
    });
}

/// The availability objective behind the `/metrics` burn rate: 99% of
/// proxied `/simulate` requests good. A burn rate of 1.0 means the error
/// budget is being consumed exactly as fast as it accrues; above 1.0 the
/// SLO will eventually be violated.
const SLO_OBJECTIVE: f64 = 0.99;

/// `{count, p50_us, p90_us, p99_us, max_us}` over sparse histogram
/// buckets — all quantiles are bucket upper edges (see
/// [`quantile_from_buckets`]), consistent within one bucket of the exact
/// sample quantile.
fn quantile_summary(buckets: &[(usize, u64)], count: u64) -> String {
    format!(
        "{{\"count\": {count}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        quantile_from_buckets(buckets, 0.5),
        quantile_from_buckets(buckets, 0.9),
        quantile_from_buckets(buckets, 0.99),
        quantile_from_buckets(buckets, 1.0),
    )
}

fn histogram_summary(h: &Histogram) -> String {
    let sparse: Vec<(usize, u64)> = h
        .bucket_counts()
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    quantile_summary(&sparse, h.count())
}

/// The cluster `/metrics` view: the gateway's own registry under
/// `"gateway"` (kept distinct from the fleet so its counters can't be
/// conflated with summed backend ones), a `"rollup"` object summing every
/// backend's numeric fields ([`gmr_json::sum_numeric`]), a `"latency"`
/// section with per-route/per-backend quantiles plus the fleet-merged
/// `serve.latency_us` (bucket-level merge — `sum_numeric` skips nested
/// objects by design, so histograms are merged here explicitly), an
/// `"slo"` section, and a `"backends"` array with each backend's liveness
/// and verbatim snapshot.
fn rollup_metrics(shared: &GwShared, pool: &mut BackendPool) -> Vec<u8> {
    let mut body = String::from("{\"gateway\": ");
    body.push_str(&snapshot_json(&shared.metrics.registry.snapshot()));
    body.push_str(", ");
    let mut snapshots: Vec<Option<Value>> = Vec::with_capacity(shared.slots.len());
    for (b, slot) in shared.slots.iter().enumerate() {
        let snap = slot.addr().and_then(|addr| {
            let resp = pool.exchange(b, addr, "GET", "/metrics", b"", None).ok()?;
            gmr_json::parse(std::str::from_utf8(&resp.body).ok()?).ok()
        });
        snapshots.push(snap);
    }
    let rollup = gmr_json::sum_numeric(snapshots.iter().flatten());
    body.push_str("\"rollup\": ");
    gmr_json::push_value(&mut body, &rollup);

    body.push_str(", \"latency\": {\"routes\": {");
    for (i, tag) in ROUTE_TAGS.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        gmr_json::push_escaped(&mut body, tag);
        body.push_str(": ");
        body.push_str(&histogram_summary(&shared.metrics.route_latency[i]));
    }
    body.push_str("}, \"backends\": {");
    for (b, h) in shared.metrics.backend_latency.iter().enumerate() {
        if b > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("\"{b}\": "));
        body.push_str(&histogram_summary(h));
    }
    // Fleet view of backend service latency: merge each backend's
    // `serve.latency_us` buckets, then take quantiles over the merge.
    let mut fleet: Vec<(usize, u64)> = Vec::new();
    let mut fleet_count = 0u64;
    for snap in snapshots.iter().flatten() {
        let Some(h) = snap.get("serve.latency_us") else {
            continue;
        };
        fleet_count += h.get("count").and_then(Value::as_u64).unwrap_or(0);
        let pairs: Vec<(usize, u64)> = h
            .get("buckets")
            .and_then(Value::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|p| {
                        let p = p.as_arr()?;
                        Some((p.first()?.as_u64()? as usize, p.get(1)?.as_u64()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        merge_buckets(&mut fleet, &pairs);
    }
    body.push_str("}, \"fleet\": ");
    body.push_str(&quantile_summary(&fleet, fleet_count));
    body.push('}');

    let good = shared.metrics.slo_good.get();
    let total = shared.metrics.slo_total.get();
    let bad_frac = if total == 0 {
        0.0
    } else {
        (total - good) as f64 / total as f64
    };
    body.push_str(&format!(
        ", \"slo\": {{\"target_ms\": {}, \"good\": {good}, \"total\": {total}, \"burn_rate\": ",
        shared.config.slo_target_ms
    ));
    gmr_json::push_f64(&mut body, bad_frac / (1.0 - SLO_OBJECTIVE));
    body.push('}');

    body.push_str(", \"backends\": [");
    for (b, slot) in shared.slots.iter().enumerate() {
        if b > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!(
            "{{\"idx\": {b}, \"alive\": {}, \"addr\": ",
            slot.is_alive()
        ));
        gmr_json::push_escaped(
            &mut body,
            &slot.addr_any().map(|a| a.to_string()).unwrap_or_default(),
        );
        body.push_str(", \"metrics\": ");
        match &snapshots[b] {
            Some(v) => gmr_json::push_value(&mut body, v),
            None => body.push_str("null"),
        }
        body.push('}');
    }
    body.push_str("]}");
    body.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routing_is_deterministic_and_balanced() {
        let ring = Ring::new(4);
        let ring2 = Ring::new(4);
        let mut owners = [0usize; 4];
        for m in 0..200 {
            let key = Ring::key(&format!("model-{m}"), "target");
            let pref = ring.preference(&key);
            assert_eq!(pref, ring2.preference(&key), "ring must be stable");
            assert_eq!(pref.len(), 4, "preference covers every backend");
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "each backend appears once");
            owners[pref[0] as usize] += 1;
        }
        for (b, &n) in owners.iter().enumerate() {
            assert!(
                (20..=80).contains(&n),
                "backend {b} owns {n}/200 keys — ring is badly unbalanced: {owners:?}"
            );
        }
    }

    #[test]
    fn ring_failover_preserves_other_assignments() {
        // Consistent hashing's point: removing one backend only moves the
        // keys it owned; every other key keeps its owner.
        let ring = Ring::new(4);
        for m in 0..100 {
            let key = Ring::key(&format!("model-{m}"), "t");
            let pref = ring.preference(&key);
            let after: Vec<u32> = pref.iter().copied().filter(|&b| b != 2).collect();
            if pref[0] != 2 {
                assert_eq!(
                    after[0], pref[0],
                    "dropping backend 2 must not move keys it never owned"
                );
            } else {
                assert_eq!(after[0], pref[1], "orphaned keys go to the next vnode");
            }
        }
    }

    #[test]
    fn slot_liveness_gates_addr() {
        let slot = BackendSlot::default();
        assert_eq!(slot.addr(), None);
        let a: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        slot.set_addr(a);
        assert_eq!(slot.addr(), Some(a));
        slot.mark_down();
        assert_eq!(slot.addr(), None, "a dead slot routes nothing");
        assert_eq!(slot.addr_any(), Some(a), "but health probes still can");
        slot.mark_up();
        assert_eq!(slot.addr(), Some(a));
    }
}
