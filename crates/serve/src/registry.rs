//! The in-process model registry: artifact → linted, compiled, memoised.
//!
//! Loading a `gmr-model/v1` artifact is the serving stack's trust
//! boundary, so admission is gated exactly like the training stack's own
//! acceptance path: the equations must re-parse, pass the `gmr-lint`
//! battery without Error-severity findings (arity errors, malformed
//! structure — under [`Policy::Revision`] a dimensional mismatch a GP
//! champion legitimately carries is a warning, not a rejection), and
//! compile through [`CompiledSystem::compile_checked`]. The compiled
//! system is memoised behind an `Arc` exactly like the GP engine's
//! phenotype cache, so every request for a model shares one compilation.

use crate::artifact::{ArtifactError, ModelArtifact};
use gmr_expr::{CompiledSystem, OptOptions};
use gmr_lint::{EquationLinter, Policy, Severity};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// A model admitted to serving: its artifact plus the shared compilation.
#[derive(Debug)]
pub struct ServableModel {
    /// The artifact as loaded.
    pub artifact: ModelArtifact,
    /// The register-VM compilation every request shares.
    pub system: Arc<CompiledSystem>,
    /// Human-readable lint findings below Error severity (empty = clean).
    pub lint_warnings: String,
}

/// Why an artifact was refused admission.
#[derive(Debug)]
pub enum RegistryError {
    /// The file failed to load or its equations failed to re-parse.
    Artifact(ArtifactError),
    /// The lint battery found Error-severity problems.
    Lint {
        /// Model name.
        model: String,
        /// Error-severity findings.
        errors: usize,
        /// Human rendering of the report.
        report: String,
    },
    /// The equations reference indices outside the artifact's own schema.
    Compile(String),
    /// A different artifact already holds this name.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Artifact(e) => write!(f, "{e}"),
            RegistryError::Lint { model, errors, .. } => {
                write!(f, "model {model:?} rejected by lint: {errors} error(s)")
            }
            RegistryError::Compile(msg) => write!(f, "compile failed: {msg}"),
            RegistryError::Duplicate(name) => write!(f, "model {name:?} already registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}

/// The registry: admitted models by name.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ServableModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Admit one artifact: re-parse, lint (Error severity rejects),
    /// compile, memoise.
    pub fn insert(&mut self, artifact: ModelArtifact) -> Result<(), RegistryError> {
        if self.models.contains_key(&artifact.name) {
            return Err(RegistryError::Duplicate(artifact.name.clone()));
        }
        let _sp = gmr_obsv::span!("serve.admit");
        let eqs = artifact.parse_equations()?;
        let report = EquationLinter::river(Policy::Revision).lint(&eqs);
        let errors = report.count(Severity::Error);
        if errors > 0 {
            return Err(RegistryError::Lint {
                model: artifact.name.clone(),
                errors,
                report: report.render_human(),
            });
        }
        let lint_warnings = if report.count(Severity::Warn) > 0 {
            report.render_human()
        } else {
            String::new()
        };
        let system = CompiledSystem::compile_checked(
            &eqs,
            artifact.vars.len(),
            artifact.states.len(),
            OptOptions::full(),
        )
        .map_err(|e| RegistryError::Compile(format!("{e:?}")))?;
        let name = artifact.name.clone();
        self.models.insert(
            name,
            Arc::new(ServableModel {
                artifact,
                system: Arc::new(system),
                lint_warnings,
            }),
        );
        Ok(())
    }

    /// Load every `*.json` artifact in a directory (sorted by file name so
    /// admission order — and therefore duplicate resolution — is
    /// deterministic). Returns how many were admitted; the first failure
    /// aborts the load.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<usize, RegistryError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Artifact(ArtifactError::Io(e)))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut admitted = 0;
        for p in paths {
            self.insert(ModelArtifact::load(&p)?)?;
            admitted += 1;
        }
        Ok(admitted)
    }

    /// The admitted model under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models.get(name).cloned()
    }

    /// Admitted model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of admitted models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is admitted.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The `/models` endpoint body: a JSON array of model summaries.
    pub fn render_json(&self) -> String {
        use gmr_json::{push_escaped, push_f64};
        let mut o = String::from("{\"models\": [");
        for (i, (name, m)) in self.models.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n  {\"name\": ");
            push_escaped(&mut o, name);
            o.push_str(", \"source\": ");
            push_escaped(&mut o, &m.artifact.provenance.source);
            o.push_str(", \"fitness\": ");
            push_f64(&mut o, m.artifact.provenance.fitness);
            o.push_str(&format!(
                ", \"equations\": {}, \"network\": {}}}",
                m.artifact.equations.len(),
                m.artifact.topology.is_some()
            ));
        }
        o.push_str("\n]}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_is_admitted_and_memoised() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert_eq!(reg.names(), ["table5-manual"]);
        let a = reg.get("table5-manual").unwrap();
        let b = reg.get("table5-manual").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one admission, one Arc");
        assert!(Arc::ptr_eq(&a.system, &b.system));
        assert_eq!(a.system.n_eqs(), 2);
        assert!(a.lint_warnings.is_empty(), "{}", a.lint_warnings);
    }

    #[test]
    fn duplicate_names_are_refused() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert!(matches!(
            reg.insert(ModelArtifact::builtin_manual()),
            Err(RegistryError::Duplicate(_))
        ));
    }

    #[test]
    fn lint_error_rejects_admission() {
        // An equation indexing Var(99) is an arity Error under every
        // policy: parse succeeds (we hand-author the text), lint rejects.
        let mut a = ModelArtifact::builtin_manual();
        a.name = "broken".into();
        // A var name that exists in the table but with a state index out
        // of range is hard to author via text, so instead reference an
        // undefined identifier — that fails at parse, which surfaces as
        // an Artifact error; admission must refuse either way.
        a.equations[0] = "NoSuchVar * BPhy".into();
        let mut reg = ModelRegistry::new();
        assert!(matches!(
            reg.insert(a),
            Err(RegistryError::Artifact(ArtifactError::Equation { .. }))
        ));
        // And a schema whose var list is too short makes a *valid* parse
        // lint/compile-fail: drop the last var names so indices overflow.
        let mut b = ModelArtifact::builtin_manual();
        b.name = "short-schema".into();
        b.vars.truncate(2);
        let err = reg.insert(b);
        assert!(
            matches!(
                err,
                Err(RegistryError::Artifact(_)) | Err(RegistryError::Lint { .. })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("gmr-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let art = ModelArtifact::builtin_manual();
        art.save(dir.join("table5-manual.json")).unwrap();
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        let mut reg = ModelRegistry::new();
        assert_eq!(reg.load_dir(&dir).unwrap(), 1);
        assert!(reg.get("table5-manual").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
