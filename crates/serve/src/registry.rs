//! The in-process model registry: artifact → linted, compiled, memoised.
//!
//! Loading a `gmr-model/v1` artifact is the serving stack's trust
//! boundary, so admission is gated exactly like the training stack's own
//! acceptance path: the equations must re-parse, pass the `gmr-lint`
//! battery without Error-severity findings (arity errors, malformed
//! structure — under [`Policy::Revision`] a dimensional mismatch a GP
//! champion legitimately carries is a warning, not a rejection), compile
//! through [`CompiledSystem::compile_checked`], and the *compiled
//! bytecode itself* must pass the abstract interpreter
//! ([`gmr_lint::analyze_system`]): register bounds proved for the VM's
//! unchecked accesses, the split prefix proved state-independent, no dead
//! or uninitialized code. Every verification is journaled as a
//! `serve.lint` note, pass or fail. The compiled system is memoised
//! behind an `Arc` exactly like the GP engine's phenotype cache, so every
//! request for a model shares one compilation.

use crate::artifact::{ArtifactError, ModelArtifact};
use gmr_expr::{CompiledSystem, FidelityPolicy, Tier};
use gmr_lint::{analyze_system, env_for_arity, EquationLinter, Policy, Severity};
use gmr_obsv::Event;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// A model admitted to serving: its artifact plus the shared compilation.
#[derive(Debug)]
pub struct ServableModel {
    /// The artifact as loaded.
    pub artifact: ModelArtifact,
    /// The register-VM compilation every request shares.
    pub system: Arc<CompiledSystem>,
    /// Human-readable lint findings below Error severity (empty = clean).
    pub lint_warnings: String,
    /// Warning-severity findings from bytecode verification (the compiled
    /// system was still admitted; Error findings refuse admission).
    pub bytecode_warnings: usize,
}

/// Why an artifact was refused admission.
#[derive(Debug)]
pub enum RegistryError {
    /// The file failed to load or its equations failed to re-parse.
    Artifact(ArtifactError),
    /// The lint battery found Error-severity problems.
    Lint {
        /// Model name.
        model: String,
        /// Error-severity findings.
        errors: usize,
        /// Human rendering of the report.
        report: String,
    },
    /// The equations reference indices outside the artifact's own schema.
    Compile(String),
    /// The compiled bytecode failed abstract-interpretation verification
    /// (unprovable register bounds, a state-dependent prefix instruction,
    /// uninitialized reads — anything the VM's `unsafe` fast path must
    /// never execute).
    Bytecode {
        /// Model name.
        model: String,
        /// Error-severity findings.
        errors: usize,
        /// Human rendering of the analyzer report.
        report: String,
    },
    /// The compiled system's numeric fidelity is outside the registry's
    /// policy — e.g. a relaxed-SIMD compilation offered to a registry
    /// serving bit-exact results.
    Fidelity {
        /// Model name.
        model: String,
        /// The offered system's fidelity ([`gmr_expr::Fidelity::name`]).
        fidelity: &'static str,
    },
    /// A different artifact already holds this name.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Artifact(e) => write!(f, "{e}"),
            RegistryError::Lint { model, errors, .. } => {
                write!(f, "model {model:?} rejected by lint: {errors} error(s)")
            }
            RegistryError::Compile(msg) => write!(f, "compile failed: {msg}"),
            RegistryError::Bytecode { model, errors, .. } => {
                write!(
                    f,
                    "model {model:?} rejected by bytecode verification: {errors} error(s)"
                )
            }
            RegistryError::Fidelity { model, fidelity } => {
                write!(
                    f,
                    "model {model:?} rejected: {fidelity} results are outside \
                     the registry's fidelity policy"
                )
            }
            RegistryError::Duplicate(name) => write!(f, "model {name:?} already registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}

/// The registry: admitted models by name, compiled at the fastest tier
/// the registry's [`FidelityPolicy`] allows.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ServableModel>>,
    policy: FidelityPolicy,
}

impl ModelRegistry {
    /// An empty registry serving bit-exact results
    /// ([`FidelityPolicy::BitExact`], the default).
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// An empty registry under an explicit fidelity policy. Admission
    /// compiles at [`Tier::fastest`] for the policy, and any pre-compiled
    /// system offered through the test-only gate is checked against it.
    pub fn with_policy(policy: FidelityPolicy) -> ModelRegistry {
        ModelRegistry {
            models: BTreeMap::new(),
            policy,
        }
    }

    /// The fidelity policy admissions are gated on.
    pub fn policy(&self) -> FidelityPolicy {
        self.policy
    }

    /// Admit one artifact: re-parse, lint (Error severity rejects),
    /// compile, memoise.
    pub fn insert(&mut self, artifact: ModelArtifact) -> Result<(), RegistryError> {
        if self.models.contains_key(&artifact.name) {
            return Err(RegistryError::Duplicate(artifact.name.clone()));
        }
        let _sp = gmr_obsv::span!("serve.admit");
        let eqs = artifact.parse_equations()?;
        let report = EquationLinter::river(Policy::Revision).lint(&eqs);
        let errors = report.count(Severity::Error);
        if errors > 0 {
            return Err(RegistryError::Lint {
                model: artifact.name.clone(),
                errors,
                report: report.render_human(),
            });
        }
        let lint_warnings = if report.count(Severity::Warn) > 0 {
            report.render_human()
        } else {
            String::new()
        };
        let system = CompiledSystem::compile_checked(
            &eqs,
            artifact.vars.len(),
            artifact.states.len(),
            Tier::fastest(self.policy).options(),
        )
        .map_err(|e| RegistryError::Compile(format!("{e:?}")))?;
        self.admit(artifact, system, lint_warnings)
    }

    /// Admit a pre-compiled system through the bytecode verification gate,
    /// skipping the AST-level path. Exists so tests can prove that a
    /// corrupted [`CompiledSystem`] — one the pipeline can never produce —
    /// is refused at this trust boundary; production admission always goes
    /// through [`insert`](Self::insert).
    #[doc(hidden)]
    pub fn insert_prepared(
        &mut self,
        artifact: ModelArtifact,
        system: CompiledSystem,
    ) -> Result<(), RegistryError> {
        self.admit(artifact, system, String::new())
    }

    /// The shared bytecode-verification gate: analyze the compiled
    /// programs, journal the verdict as a `serve.lint` note, refuse on any
    /// Error-severity finding, memoise otherwise.
    fn admit(
        &mut self,
        artifact: ModelArtifact,
        system: CompiledSystem,
        lint_warnings: String,
    ) -> Result<(), RegistryError> {
        if self.models.contains_key(&artifact.name) {
            return Err(RegistryError::Duplicate(artifact.name.clone()));
        }
        if !self.policy.allows(system.fidelity()) {
            return Err(RegistryError::Fidelity {
                model: artifact.name.clone(),
                fidelity: system.fidelity().name(),
            });
        }
        let env = env_for_arity(artifact.vars.len(), artifact.states.len());
        let analysis = analyze_system(&system, &env, &artifact.name);
        let errors = analysis.report.count(Severity::Error);
        let bytecode_warnings = analysis.report.count(Severity::Warn);
        gmr_obsv::emit(Event::Note {
            name: "serve.lint",
            msg: format!(
                "model {:?}: bytecode verification {} — {} error(s), {} warning(s), \
                 unsafe bounds {}",
                artifact.name,
                if errors == 0 { "passed" } else { "failed" },
                errors,
                bytecode_warnings,
                if analysis.safety.proved() {
                    "proved"
                } else {
                    "UNPROVED"
                },
            ),
        });
        if errors > 0 {
            return Err(RegistryError::Bytecode {
                model: artifact.name.clone(),
                errors,
                report: analysis.report.render_human(),
            });
        }
        let name = artifact.name.clone();
        self.models.insert(
            name,
            Arc::new(ServableModel {
                artifact,
                system: Arc::new(system),
                lint_warnings,
                bytecode_warnings,
            }),
        );
        Ok(())
    }

    /// Load every `*.json` artifact in a directory (sorted by file name so
    /// admission order — and therefore duplicate resolution — is
    /// deterministic). Returns how many were admitted; the first failure
    /// aborts the load.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<usize, RegistryError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Artifact(ArtifactError::Io(e)))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut admitted = 0;
        for p in paths {
            self.insert(ModelArtifact::load(&p)?)?;
            admitted += 1;
        }
        Ok(admitted)
    }

    /// The admitted model under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models.get(name).cloned()
    }

    /// Admitted model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of admitted models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is admitted.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The `/models` endpoint body: a JSON array of model summaries.
    pub fn render_json(&self) -> String {
        use gmr_json::{push_escaped, push_f64};
        let mut o = String::from("{\"models\": [");
        for (i, (name, m)) in self.models.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n  {\"name\": ");
            push_escaped(&mut o, name);
            o.push_str(", \"source\": ");
            push_escaped(&mut o, &m.artifact.provenance.source);
            o.push_str(", \"fitness\": ");
            push_f64(&mut o, m.artifact.provenance.fitness);
            o.push_str(&format!(
                ", \"equations\": {}, \"network\": {}, \"bytecode_warnings\": {}",
                m.artifact.equations.len(),
                m.artifact.topology.is_some(),
                m.bytecode_warnings
            ));
            o.push_str(", \"tier\": ");
            push_escaped(&mut o, m.system.tier().name());
            o.push_str(", \"fidelity\": ");
            push_escaped(&mut o, m.system.fidelity().name());
            o.push('}');
        }
        o.push_str("\n]}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_is_admitted_and_memoised() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert_eq!(reg.names(), ["table5-manual"]);
        let a = reg.get("table5-manual").unwrap();
        let b = reg.get("table5-manual").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one admission, one Arc");
        assert!(Arc::ptr_eq(&a.system, &b.system));
        assert_eq!(a.system.n_eqs(), 2);
        assert!(a.lint_warnings.is_empty(), "{}", a.lint_warnings);
        assert_eq!(a.bytecode_warnings, 0);
        assert!(reg.render_json().contains("\"bytecode_warnings\": 0"));
    }

    #[test]
    fn corrupted_bytecode_is_refused_and_journaled() {
        use gmr_expr::{OptOptions, RInstr, RegProgram};
        gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
        let good = ModelArtifact::builtin_manual();
        let eqs = good.parse_equations().unwrap();
        let sys = CompiledSystem::compile_checked(
            &eqs,
            good.vars.len(),
            good.states.len(),
            OptOptions::full(),
        )
        .unwrap();
        let mut reg = ModelRegistry::new();

        // Corruption 1: a state-dependent instruction moved into the
        // hoisted prefix — the columnar sweep would freeze its value.
        let mut code = sys.prefix().instructions().to_vec();
        let dst = code.last().expect("manual system hoists a prefix").dst();
        code.push(RInstr::LoadState { dst, idx: 0 });
        let corrupt_prefix = CompiledSystem::from_raw_parts(
            RegProgram::from_raw_unchecked(
                code,
                sys.prefix().consts().to_vec(),
                0,
                sys.prefix().n_regs() as u16,
                sys.prefix().outputs().to_vec(),
                sys.prefix().needs_vars(),
                0,
            ),
            sys.core().clone(),
            sys.n_eqs(),
            sys.options(),
        );
        let mut art = good.clone();
        art.name = "corrupt-prefix".into();
        let err = reg.insert_prepared(art, corrupt_prefix);
        assert!(
            matches!(err, Err(RegistryError::Bytecode { .. })),
            "{err:?}"
        );

        // Corruption 2: an out-of-bounds register index — exactly what the
        // VM's `get_unchecked` fast path must never see.
        let mut code = sys.core().instructions().to_vec();
        let oob = sys.core().n_regs() as u16 + 7;
        code[0] = RInstr::LoadVar { dst: oob, idx: 0 };
        let corrupt_core = CompiledSystem::from_raw_parts(
            sys.prefix().clone(),
            RegProgram::from_raw_unchecked(
                code,
                sys.core().consts().to_vec(),
                sys.core().n_pre() as u16,
                sys.core().n_regs() as u16,
                sys.core().outputs().to_vec(),
                sys.core().needs_vars(),
                sys.core().needs_states(),
            ),
            sys.n_eqs(),
            sys.options(),
        );
        let mut art = good.clone();
        art.name = "corrupt-oob".into();
        let err = reg.insert_prepared(art, corrupt_core);
        match err {
            Err(RegistryError::Bytecode { errors, report, .. }) => {
                assert!(errors > 0);
                assert!(report.contains("unsafe-bound-unproved"), "{report}");
            }
            other => panic!("expected Bytecode refusal, got {other:?}"),
        }
        assert!(reg.is_empty(), "no corrupted artifact may be admitted");

        // Both refusals are journaled as Error-carrying serve.lint notes.
        let notes: Vec<String> = gmr_obsv::global()
            .expect("journal installed")
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                gmr_obsv::Event::Note {
                    name: "serve.lint",
                    msg,
                } => Some(msg.clone()),
                _ => None,
            })
            .collect();
        for model in ["corrupt-prefix", "corrupt-oob"] {
            assert!(
                notes
                    .iter()
                    .any(|m| m.contains(model) && m.contains("failed")),
                "no failed serve.lint note for {model}: {notes:?}"
            );
        }

        // The untampered compilation still passes the same gate.
        reg.insert_prepared(good, sys).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn fidelity_policy_gates_admission_and_is_reported() {
        use gmr_expr::OptOptions;
        // Default registry: bit-exact; the served tier is the fastest
        // bit-exact tier and /models says so.
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let m = reg.get("table5-manual").unwrap();
        assert_eq!(m.system.tier(), Tier::fastest(FidelityPolicy::BitExact));
        assert_eq!(m.system.fidelity().name(), "bit-exact");
        let json = reg.render_json();
        assert!(json.contains("\"tier\": \"threaded\""), "{json}");
        assert!(json.contains("\"fidelity\": \"bit-exact\""), "{json}");

        // A relaxed-SIMD compilation is refused by a bit-exact registry —
        // but only where SIMD kernels are actually live; otherwise the
        // simd tier *is* bit-exact and admission is correct.
        let good = ModelArtifact::builtin_manual();
        let eqs = good.parse_equations().unwrap();
        let simd_sys = CompiledSystem::compile_checked(
            &eqs,
            good.vars.len(),
            good.states.len(),
            OptOptions::simd(),
        )
        .unwrap();
        let mut reg = ModelRegistry::new();
        let relaxed = simd_sys.fidelity() == gmr_expr::Fidelity::RelaxedSimd;
        let res = reg.insert_prepared(good, simd_sys);
        if relaxed {
            assert!(
                matches!(res, Err(RegistryError::Fidelity { .. })),
                "{res:?}"
            );
            assert!(reg.is_empty());
        } else {
            res.unwrap();
        }

        // An allow-relaxed registry admits it either way.
        let mut reg = ModelRegistry::with_policy(FidelityPolicy::AllowRelaxed);
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let m = reg.get("table5-manual").unwrap();
        assert_eq!(m.system.tier(), Tier::fastest(FidelityPolicy::AllowRelaxed));
    }

    #[test]
    fn duplicate_names_are_refused() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert!(matches!(
            reg.insert(ModelArtifact::builtin_manual()),
            Err(RegistryError::Duplicate(_))
        ));
    }

    #[test]
    fn lint_error_rejects_admission() {
        // An equation indexing Var(99) is an arity Error under every
        // policy: parse succeeds (we hand-author the text), lint rejects.
        let mut a = ModelArtifact::builtin_manual();
        a.name = "broken".into();
        // A var name that exists in the table but with a state index out
        // of range is hard to author via text, so instead reference an
        // undefined identifier — that fails at parse, which surfaces as
        // an Artifact error; admission must refuse either way.
        a.equations[0] = "NoSuchVar * BPhy".into();
        let mut reg = ModelRegistry::new();
        assert!(matches!(
            reg.insert(a),
            Err(RegistryError::Artifact(ArtifactError::Equation { .. }))
        ));
        // And a schema whose var list is too short makes a *valid* parse
        // lint/compile-fail: drop the last var names so indices overflow.
        let mut b = ModelArtifact::builtin_manual();
        b.name = "short-schema".into();
        b.vars.truncate(2);
        let err = reg.insert(b);
        assert!(
            matches!(
                err,
                Err(RegistryError::Artifact(_)) | Err(RegistryError::Lint { .. })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("gmr-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let art = ModelArtifact::builtin_manual();
        art.save(dir.join("table5-manual.json")).unwrap();
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        let mut reg = ModelRegistry::new();
        assert_eq!(reg.load_dir(&dir).unwrap(), 1);
        assert!(reg.get("table5-manual").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
