//! The in-process model registry: artifact → linted, compiled, memoised.
//!
//! Loading a `gmr-model/v1` artifact is the serving stack's trust
//! boundary, so admission is gated exactly like the training stack's own
//! acceptance path: the equations must re-parse, pass the `gmr-lint`
//! battery without Error-severity findings (arity errors, malformed
//! structure — under [`Policy::Revision`] a dimensional mismatch a GP
//! champion legitimately carries is a warning, not a rejection), compile
//! through [`CompiledSystem::compile_checked`], and the *compiled
//! bytecode itself* must pass the abstract interpreter
//! ([`gmr_lint::analyze_system`]): register bounds proved for the VM's
//! unchecked accesses, the split prefix proved state-independent, no dead
//! or uninitialized code. Every verification is journaled as a
//! `serve.lint` note, pass or fail. The compiled system is memoised
//! behind an `Arc` exactly like the GP engine's phenotype cache, so every
//! request for a model shares one compilation.
//!
//! Residency is two-tiered. The *cold* record — artifact, admission
//! verdicts, served tier — is always resident and cheap. The *hot*
//! record — the compiled system plus the materialized [`PrefixTable`]s
//! it has swept per forcing table — lives in a bounded LRU
//! ([`ModelRegistry::set_hot_cap`]): a [`touch`](ModelRegistry::touch)
//! of a cold model recompiles it (and re-verifies the bytecode; both are
//! deterministic replays of admission) and may evict the least-recently
//! touched hot model, dropping its compilation and prefix tables. The
//! cap bounds resident memory per backend; a cluster's gateway shards
//! models across backends so each backend's working set fits its cap.

use crate::artifact::{ArtifactError, ModelArtifact};
use gmr_expr::{CompiledSystem, FidelityPolicy, OptOptions, PrefixTable, Tier};
use gmr_lint::{analyze_system, env_for_arity, EquationLinter, Policy, Severity};
use gmr_obsv::Event;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A model admitted to serving: the always-resident cold record.
#[derive(Debug)]
pub struct ServableModel {
    /// The artifact as loaded.
    pub artifact: ModelArtifact,
    /// Human-readable lint findings below Error severity (empty = clean).
    pub lint_warnings: String,
    /// Warning-severity findings from bytecode verification (the compiled
    /// system was still admitted; Error findings refuse admission).
    pub bytecode_warnings: usize,
    /// Compile options admission used (a hot-tier miss replays them).
    opts: OptOptions,
    /// Served tier name, recorded at admission for `/models`.
    tier: &'static str,
    /// Served fidelity name, recorded at admission for `/models`.
    fidelity: &'static str,
}

/// A model resident in the hot tier: the shared compilation plus the
/// prefix tables it has materialized, one per forcing table. Evicting
/// the hot record drops both — the next touch pays recompilation and a
/// fresh columnar sweep.
#[derive(Debug)]
pub struct HotModel {
    /// The register-VM compilation every request shares.
    pub system: Arc<CompiledSystem>,
    /// Materialized prefix columns by forcing-table name.
    prefixes: Mutex<BTreeMap<String, Arc<PrefixTable>>>,
}

impl HotModel {
    /// The materialized prefix columns for `rows` (keyed by table name),
    /// swept on first use and reused while this model stays hot. The
    /// cached table covers the *full* hosted table, so any request
    /// horizon `days <= rows.len()` shares it.
    pub fn prefix_for<R: AsRef<[f64]>>(&self, table: &str, rows: &[R]) -> Arc<PrefixTable> {
        let mut map = self.prefixes.lock().unwrap();
        if let Some(p) = map.get(table) {
            if self.system.n_pre() == 0 || p.rows() >= rows.len() {
                return p.clone();
            }
        }
        let p = Arc::new(self.system.sweep_prefix(rows));
        map.insert(table.to_string(), p.clone());
        p
    }

    /// Resident bytes of all materialized prefix tables.
    pub fn prefix_bytes(&self) -> usize {
        self.prefixes
            .lock()
            .unwrap()
            .values()
            .map(|p| p.bytes())
            .sum()
    }
}

/// Hot-tier counters for `/metrics` (monotonic since startup).
#[derive(Debug, Clone, Copy, Default)]
pub struct HotStats {
    /// Touches served from the hot tier.
    pub hits: u64,
    /// Touches that recompiled a cold model.
    pub misses: u64,
    /// Hot records dropped to respect the cap.
    pub evictions: u64,
    /// Models currently resident in the hot tier.
    pub resident: u64,
    /// Resident bytes of materialized prefix tables across hot models.
    pub prefix_bytes: u64,
}

/// Why an artifact was refused admission.
#[derive(Debug)]
pub enum RegistryError {
    /// The file failed to load or its equations failed to re-parse.
    Artifact(ArtifactError),
    /// The lint battery found Error-severity problems.
    Lint {
        /// Model name.
        model: String,
        /// Error-severity findings.
        errors: usize,
        /// Human rendering of the report.
        report: String,
    },
    /// The equations reference indices outside the artifact's own schema.
    Compile(String),
    /// The compiled bytecode failed abstract-interpretation verification
    /// (unprovable register bounds, a state-dependent prefix instruction,
    /// uninitialized reads — anything the VM's `unsafe` fast path must
    /// never execute).
    Bytecode {
        /// Model name.
        model: String,
        /// Error-severity findings.
        errors: usize,
        /// Human rendering of the analyzer report.
        report: String,
    },
    /// The compiled system's numeric fidelity is outside the registry's
    /// policy — e.g. a relaxed-SIMD compilation offered to a registry
    /// serving bit-exact results.
    Fidelity {
        /// Model name.
        model: String,
        /// The offered system's fidelity ([`gmr_expr::Fidelity::name`]).
        fidelity: &'static str,
    },
    /// A different artifact already holds this name.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Artifact(e) => write!(f, "{e}"),
            RegistryError::Lint { model, errors, .. } => {
                write!(f, "model {model:?} rejected by lint: {errors} error(s)")
            }
            RegistryError::Compile(msg) => write!(f, "compile failed: {msg}"),
            RegistryError::Bytecode { model, errors, .. } => {
                write!(
                    f,
                    "model {model:?} rejected by bytecode verification: {errors} error(s)"
                )
            }
            RegistryError::Fidelity { model, fidelity } => {
                write!(
                    f,
                    "model {model:?} rejected: {fidelity} results are outside \
                     the registry's fidelity policy"
                )
            }
            RegistryError::Duplicate(name) => write!(f, "model {name:?} already registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}

/// The registry: admitted models by name, compiled at the fastest tier
/// the registry's [`FidelityPolicy`] allows, with compiled systems
/// resident in a bounded hot LRU (see the module docs).
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ServableModel>>,
    policy: FidelityPolicy,
    /// Max hot models; 0 = unbounded.
    hot_cap: usize,
    hot: Mutex<HotTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The LRU state behind [`ModelRegistry::touch`].
#[derive(Debug, Default)]
struct HotTier {
    entries: BTreeMap<String, (Arc<HotModel>, u64)>,
    clock: u64,
}

impl ModelRegistry {
    /// An empty registry serving bit-exact results
    /// ([`FidelityPolicy::BitExact`], the default).
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// An empty registry under an explicit fidelity policy. Admission
    /// compiles at [`Tier::fastest`] for the policy, and any pre-compiled
    /// system offered through the test-only gate is checked against it.
    pub fn with_policy(policy: FidelityPolicy) -> ModelRegistry {
        ModelRegistry {
            policy,
            ..ModelRegistry::default()
        }
    }

    /// The fidelity policy admissions are gated on.
    pub fn policy(&self) -> FidelityPolicy {
        self.policy
    }

    /// Bound the hot tier to `cap` resident compilations (0 = unbounded,
    /// the default). Shrinking below current residency evicts
    /// least-recently-touched models immediately.
    pub fn set_hot_cap(&mut self, cap: usize) {
        self.hot_cap = cap;
        let mut hot = self.hot.lock().unwrap();
        self.evict_over_cap(&mut hot);
    }

    /// The configured hot cap (0 = unbounded).
    pub fn hot_cap(&self) -> usize {
        self.hot_cap
    }

    fn evict_over_cap(&self, hot: &mut HotTier) {
        while self.hot_cap > 0 && hot.entries.len() > self.hot_cap {
            let coldest = hot
                .entries
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(name, _)| name.clone())
                .expect("non-empty over cap");
            hot.entries.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Admit one artifact: re-parse, lint (Error severity rejects),
    /// compile, memoise.
    pub fn insert(&mut self, artifact: ModelArtifact) -> Result<(), RegistryError> {
        if self.models.contains_key(&artifact.name) {
            return Err(RegistryError::Duplicate(artifact.name.clone()));
        }
        let _sp = gmr_obsv::span!("serve.admit");
        let eqs = artifact.parse_equations()?;
        let report = EquationLinter::river(Policy::Revision).lint(&eqs);
        let errors = report.count(Severity::Error);
        if errors > 0 {
            return Err(RegistryError::Lint {
                model: artifact.name.clone(),
                errors,
                report: report.render_human(),
            });
        }
        let lint_warnings = if report.count(Severity::Warn) > 0 {
            report.render_human()
        } else {
            String::new()
        };
        let system = CompiledSystem::compile_checked(
            &eqs,
            artifact.vars.len(),
            artifact.states.len(),
            Tier::fastest(self.policy).options(),
        )
        .map_err(|e| RegistryError::Compile(format!("{e:?}")))?;
        self.admit(artifact, system, lint_warnings)
    }

    /// Admit a pre-compiled system through the bytecode verification gate,
    /// skipping the AST-level path. Exists so tests can prove that a
    /// corrupted [`CompiledSystem`] — one the pipeline can never produce —
    /// is refused at this trust boundary; production admission always goes
    /// through [`insert`](Self::insert).
    #[doc(hidden)]
    pub fn insert_prepared(
        &mut self,
        artifact: ModelArtifact,
        system: CompiledSystem,
    ) -> Result<(), RegistryError> {
        self.admit(artifact, system, String::new())
    }

    /// The shared bytecode-verification gate: analyze the compiled
    /// programs, journal the verdict as a `serve.lint` note, refuse on any
    /// Error-severity finding, memoise otherwise.
    fn admit(
        &mut self,
        artifact: ModelArtifact,
        system: CompiledSystem,
        lint_warnings: String,
    ) -> Result<(), RegistryError> {
        if self.models.contains_key(&artifact.name) {
            return Err(RegistryError::Duplicate(artifact.name.clone()));
        }
        if !self.policy.allows(system.fidelity()) {
            return Err(RegistryError::Fidelity {
                model: artifact.name.clone(),
                fidelity: system.fidelity().name(),
            });
        }
        let env = env_for_arity(artifact.vars.len(), artifact.states.len());
        let analysis = analyze_system(&system, &env, &artifact.name);
        let errors = analysis.report.count(Severity::Error);
        let bytecode_warnings = analysis.report.count(Severity::Warn);
        gmr_obsv::emit(Event::Note {
            name: "serve.lint",
            msg: format!(
                "model {:?}: bytecode verification {} — {} error(s), {} warning(s), \
                 unsafe bounds {}",
                artifact.name,
                if errors == 0 { "passed" } else { "failed" },
                errors,
                bytecode_warnings,
                if analysis.safety.proved() {
                    "proved"
                } else {
                    "UNPROVED"
                },
            ),
        });
        if errors > 0 {
            return Err(RegistryError::Bytecode {
                model: artifact.name.clone(),
                errors,
                report: analysis.report.render_human(),
            });
        }
        let name = artifact.name.clone();
        self.models.insert(
            name.clone(),
            Arc::new(ServableModel {
                artifact,
                lint_warnings,
                bytecode_warnings,
                opts: system.options(),
                tier: system.tier().name(),
                fidelity: system.fidelity().name(),
            }),
        );
        // Admission's compilation seeds the hot tier (it counts as the
        // first touch), possibly evicting an older resident.
        let mut hot = self.hot.lock().unwrap();
        hot.clock += 1;
        let stamp = hot.clock;
        hot.entries.insert(
            name,
            (
                Arc::new(HotModel {
                    system: Arc::new(system),
                    prefixes: Mutex::new(BTreeMap::new()),
                }),
                stamp,
            ),
        );
        self.evict_over_cap(&mut hot);
        Ok(())
    }

    /// The hot-path lookup: the compiled system (and its prefix caches)
    /// for `name`, marking it most-recently used. A miss replays
    /// admission's deterministic compile + bytecode verification from the
    /// cold artifact — the cost an eviction deferred — and may evict the
    /// least-recently touched resident to stay under the cap.
    pub fn touch(&self, name: &str) -> Option<Arc<HotModel>> {
        let cold = self.models.get(name)?;
        let mut hot = self.hot.lock().unwrap();
        hot.clock += 1;
        let stamp = hot.clock;
        if let Some((model, touched)) = hot.entries.get_mut(name) {
            *touched = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(model.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let _sp = gmr_obsv::span!("serve.recompile");
        let eqs = cold
            .artifact
            .parse_equations()
            .expect("admitted artifact re-parses");
        let system = CompiledSystem::compile_checked(
            &eqs,
            cold.artifact.vars.len(),
            cold.artifact.states.len(),
            cold.opts,
        )
        .expect("admitted artifact recompiles");
        // Deterministic replay of the admission-time proof: the same
        // artifact and options produce the same bytecode, so this can
        // only fail if admission would have refused the model.
        let env = env_for_arity(cold.artifact.vars.len(), cold.artifact.states.len());
        let analysis = analyze_system(&system, &env, name);
        assert_eq!(
            analysis.report.count(Severity::Error),
            0,
            "recompiled bytecode must re-verify"
        );
        let model = Arc::new(HotModel {
            system: Arc::new(system),
            prefixes: Mutex::new(BTreeMap::new()),
        });
        hot.entries.insert(name.to_string(), (model.clone(), stamp));
        self.evict_over_cap(&mut hot);
        Some(model)
    }

    /// Hot-tier counters and residency for `/metrics`.
    pub fn stats(&self) -> HotStats {
        let hot = self.hot.lock().unwrap();
        HotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: hot.entries.len() as u64,
            prefix_bytes: hot
                .entries
                .values()
                .map(|(m, _)| m.prefix_bytes() as u64)
                .sum(),
        }
    }

    /// Load every `*.json` artifact in a directory (sorted by file name so
    /// admission order — and therefore duplicate resolution — is
    /// deterministic). Returns how many were admitted; the first failure
    /// aborts the load.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<usize, RegistryError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Artifact(ArtifactError::Io(e)))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut admitted = 0;
        for p in paths {
            self.insert(ModelArtifact::load(&p)?)?;
            admitted += 1;
        }
        Ok(admitted)
    }

    /// The admitted model under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models.get(name).cloned()
    }

    /// Admitted model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of admitted models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is admitted.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The `/models` endpoint body: a JSON array of model summaries.
    pub fn render_json(&self) -> String {
        use gmr_json::{push_escaped, push_f64};
        let mut o = String::from("{\"models\": [");
        for (i, (name, m)) in self.models.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n  {\"name\": ");
            push_escaped(&mut o, name);
            o.push_str(", \"source\": ");
            push_escaped(&mut o, &m.artifact.provenance.source);
            o.push_str(", \"fitness\": ");
            push_f64(&mut o, m.artifact.provenance.fitness);
            o.push_str(&format!(
                ", \"equations\": {}, \"network\": {}, \"bytecode_warnings\": {}",
                m.artifact.equations.len(),
                m.artifact.topology.is_some(),
                m.bytecode_warnings
            ));
            o.push_str(", \"tier\": ");
            push_escaped(&mut o, m.tier);
            o.push_str(", \"fidelity\": ");
            push_escaped(&mut o, m.fidelity);
            o.push('}');
        }
        o.push_str("\n]}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_is_admitted_and_memoised() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert_eq!(reg.names(), ["table5-manual"]);
        let a = reg.get("table5-manual").unwrap();
        let b = reg.get("table5-manual").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one admission, one Arc");
        let ha = reg.touch("table5-manual").unwrap();
        let hb = reg.touch("table5-manual").unwrap();
        assert!(Arc::ptr_eq(&ha, &hb), "hot hits share one Arc");
        assert!(Arc::ptr_eq(&ha.system, &hb.system));
        assert_eq!(ha.system.n_eqs(), 2);
        assert!(a.lint_warnings.is_empty(), "{}", a.lint_warnings);
        assert_eq!(a.bytecode_warnings, 0);
        assert!(reg.render_json().contains("\"bytecode_warnings\": 0"));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (2, 0, 1));
    }

    #[test]
    fn hot_tier_evicts_lru_and_recompiles_on_touch() {
        let mut reg = ModelRegistry::new();
        for i in 0..3 {
            let mut a = ModelArtifact::builtin_manual();
            a.name = format!("m{i}");
            reg.insert(a).unwrap();
        }
        reg.set_hot_cap(2);
        assert_eq!(reg.stats().resident, 2, "cap shrink evicts immediately");
        assert_eq!(reg.stats().evictions, 1);

        // m0 was the least recently touched (admission order) — gone.
        // Touching it again recompiles and evicts m1 in turn.
        let before = reg.stats().misses;
        let m0 = reg.touch("m0").unwrap();
        assert_eq!(m0.system.n_eqs(), 2, "recompiled system serves");
        assert_eq!(reg.stats().misses, before + 1);
        assert_eq!(reg.stats().resident, 2);

        // m0 is now hottest: touching it again is a hit on the same Arc.
        let again = reg.touch("m0").unwrap();
        assert!(Arc::ptr_eq(&m0, &again));

        // The cold records never leave.
        assert_eq!(reg.len(), 3);
        assert!(reg.get("m1").is_some());
    }

    #[test]
    fn hot_model_caches_prefix_tables_per_table() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let hot = reg.touch("table5-manual").unwrap();
        let rows: Vec<Vec<f64>> = (0..70)
            .map(|t| vec![t as f64, 20.0 + t as f64 * 0.01, 1.0, 8.0, 1.5, 0.2])
            .collect();
        let p1 = hot.prefix_for("target", &rows);
        let p2 = hot.prefix_for("target", &rows);
        assert!(Arc::ptr_eq(&p1, &p2), "same table reuses the sweep");
        if hot.system.n_pre() > 0 {
            assert_eq!(p1.rows(), rows.len());
            assert!(hot.prefix_bytes() > 0);
            // A shorter horizon shares the full-table sweep.
            let p3 = hot.prefix_for("target", &rows[..10]);
            assert!(Arc::ptr_eq(&p1, &p3));
        }
        // Eviction drops the prefix cache with the hot record.
        let mut a = ModelArtifact::builtin_manual();
        a.name = "other".into();
        reg.insert(a).unwrap();
        reg.set_hot_cap(1);
        let hot2 = reg.touch("table5-manual").unwrap();
        assert!(!Arc::ptr_eq(&hot, &hot2), "eviction forced a recompile");
        assert_eq!(hot2.prefix_bytes(), 0, "prefix cache did not survive");
    }

    #[test]
    fn corrupted_bytecode_is_refused_and_journaled() {
        use gmr_expr::{OptOptions, RInstr, RegProgram};
        gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
        let good = ModelArtifact::builtin_manual();
        let eqs = good.parse_equations().unwrap();
        let sys = CompiledSystem::compile_checked(
            &eqs,
            good.vars.len(),
            good.states.len(),
            OptOptions::full(),
        )
        .unwrap();
        let mut reg = ModelRegistry::new();

        // Corruption 1: a state-dependent instruction moved into the
        // hoisted prefix — the columnar sweep would freeze its value.
        let mut code = sys.prefix().instructions().to_vec();
        let dst = code.last().expect("manual system hoists a prefix").dst();
        code.push(RInstr::LoadState { dst, idx: 0 });
        let corrupt_prefix = CompiledSystem::from_raw_parts(
            RegProgram::from_raw_unchecked(
                code,
                sys.prefix().consts().to_vec(),
                0,
                sys.prefix().n_regs() as u16,
                sys.prefix().outputs().to_vec(),
                sys.prefix().needs_vars(),
                0,
            ),
            sys.core().clone(),
            sys.n_eqs(),
            sys.options(),
        );
        let mut art = good.clone();
        art.name = "corrupt-prefix".into();
        let err = reg.insert_prepared(art, corrupt_prefix);
        assert!(
            matches!(err, Err(RegistryError::Bytecode { .. })),
            "{err:?}"
        );

        // Corruption 2: an out-of-bounds register index — exactly what the
        // VM's `get_unchecked` fast path must never see.
        let mut code = sys.core().instructions().to_vec();
        let oob = sys.core().n_regs() as u16 + 7;
        code[0] = RInstr::LoadVar { dst: oob, idx: 0 };
        let corrupt_core = CompiledSystem::from_raw_parts(
            sys.prefix().clone(),
            RegProgram::from_raw_unchecked(
                code,
                sys.core().consts().to_vec(),
                sys.core().n_pre() as u16,
                sys.core().n_regs() as u16,
                sys.core().outputs().to_vec(),
                sys.core().needs_vars(),
                sys.core().needs_states(),
            ),
            sys.n_eqs(),
            sys.options(),
        );
        let mut art = good.clone();
        art.name = "corrupt-oob".into();
        let err = reg.insert_prepared(art, corrupt_core);
        match err {
            Err(RegistryError::Bytecode { errors, report, .. }) => {
                assert!(errors > 0);
                assert!(report.contains("unsafe-bound-unproved"), "{report}");
            }
            other => panic!("expected Bytecode refusal, got {other:?}"),
        }
        assert!(reg.is_empty(), "no corrupted artifact may be admitted");

        // Both refusals are journaled as Error-carrying serve.lint notes.
        let notes: Vec<String> = gmr_obsv::global()
            .expect("journal installed")
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                gmr_obsv::Event::Note {
                    name: "serve.lint",
                    msg,
                } => Some(msg.clone()),
                _ => None,
            })
            .collect();
        for model in ["corrupt-prefix", "corrupt-oob"] {
            assert!(
                notes
                    .iter()
                    .any(|m| m.contains(model) && m.contains("failed")),
                "no failed serve.lint note for {model}: {notes:?}"
            );
        }

        // The untampered compilation still passes the same gate.
        reg.insert_prepared(good, sys).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn fidelity_policy_gates_admission_and_is_reported() {
        use gmr_expr::OptOptions;
        // Default registry: bit-exact; the served tier is the fastest
        // bit-exact tier and /models says so.
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let m = reg.touch("table5-manual").unwrap();
        assert_eq!(m.system.tier(), Tier::fastest(FidelityPolicy::BitExact));
        assert_eq!(m.system.fidelity().name(), "bit-exact");
        let json = reg.render_json();
        assert!(json.contains("\"tier\": \"threaded\""), "{json}");
        assert!(json.contains("\"fidelity\": \"bit-exact\""), "{json}");

        // A relaxed-SIMD compilation is refused by a bit-exact registry —
        // but only where SIMD kernels are actually live; otherwise the
        // simd tier *is* bit-exact and admission is correct.
        let good = ModelArtifact::builtin_manual();
        let eqs = good.parse_equations().unwrap();
        let simd_sys = CompiledSystem::compile_checked(
            &eqs,
            good.vars.len(),
            good.states.len(),
            OptOptions::simd(),
        )
        .unwrap();
        let mut reg = ModelRegistry::new();
        let relaxed = simd_sys.fidelity() == gmr_expr::Fidelity::RelaxedSimd;
        let res = reg.insert_prepared(good, simd_sys);
        if relaxed {
            assert!(
                matches!(res, Err(RegistryError::Fidelity { .. })),
                "{res:?}"
            );
            assert!(reg.is_empty());
        } else {
            res.unwrap();
        }

        // An allow-relaxed registry admits it either way.
        let mut reg = ModelRegistry::with_policy(FidelityPolicy::AllowRelaxed);
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let m = reg.touch("table5-manual").unwrap();
        assert_eq!(m.system.tier(), Tier::fastest(FidelityPolicy::AllowRelaxed));
    }

    #[test]
    fn duplicate_names_are_refused() {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        assert!(matches!(
            reg.insert(ModelArtifact::builtin_manual()),
            Err(RegistryError::Duplicate(_))
        ));
    }

    #[test]
    fn lint_error_rejects_admission() {
        // An equation indexing Var(99) is an arity Error under every
        // policy: parse succeeds (we hand-author the text), lint rejects.
        let mut a = ModelArtifact::builtin_manual();
        a.name = "broken".into();
        // A var name that exists in the table but with a state index out
        // of range is hard to author via text, so instead reference an
        // undefined identifier — that fails at parse, which surfaces as
        // an Artifact error; admission must refuse either way.
        a.equations[0] = "NoSuchVar * BPhy".into();
        let mut reg = ModelRegistry::new();
        assert!(matches!(
            reg.insert(a),
            Err(RegistryError::Artifact(ArtifactError::Equation { .. }))
        ));
        // And a schema whose var list is too short makes a *valid* parse
        // lint/compile-fail: drop the last var names so indices overflow.
        let mut b = ModelArtifact::builtin_manual();
        b.name = "short-schema".into();
        b.vars.truncate(2);
        let err = reg.insert(b);
        assert!(
            matches!(
                err,
                Err(RegistryError::Artifact(_)) | Err(RegistryError::Lint { .. })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("gmr-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let art = ModelArtifact::builtin_manual();
        art.save(dir.join("table5-manual.json")).unwrap();
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        let mut reg = ModelRegistry::new();
        assert_eq!(reg.load_dir(&dir).unwrap(), 1);
        assert!(reg.get("table5-manual").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
