//! `gmr-serve` — run, probe and provision the model-serving stack.
//!
//! ```sh
//! # Serve the built-in Table V model plus any artifact directory:
//! gmr-serve serve [--addr 127.0.0.1:0] [--artifacts DIR] [--port-file P]
//!                 [--journal PATH] [--workers N] [--days N] [--seed S]
//!                 [--no-builtin]
//!
//! # Export the built-in expert model as a gmr-model/v1 artifact:
//! gmr-serve export --out models/table5-manual.json
//!
//! # One HTTP request from the shell (no curl in the CI container):
//! gmr-serve request 127.0.0.1:8080 GET /healthz
//! gmr-serve request 127.0.0.1:8080 POST /simulate --data '{...}'
//! ```
//!
//! `serve` hosts two forcing tables generated from the synthetic Nakdong
//! dataset: `"target"` (the S1 forcing rows, for single-trajectory
//! `forcings_ref` requests — these coalesce into batched sweeps) and
//! `"network"` (all stations' forcings + flows, for `"network": true`
//! requests against topology-carrying models).

use gmr_hydro::{generate, SyntheticConfig};
use gmr_serve::batch::{HostedTable, NetStation, Tables};
use gmr_serve::server::Client;
use gmr_serve::{
    sig, Cluster, ClusterConfig, Gateway, GatewayConfig, ModelArtifact, ModelRegistry, Server,
    ServerConfig,
};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gmr-serve serve [--addr A] [--artifacts DIR] [--port-file P] [--journal P]
                       [--workers N] [--conn-queue N] [--sim-queue N] [--window-ms MS]
                       [--days N] [--seed S] [--no-builtin] [--hot-models N]
                       [--fidelity bit-exact|allow-relaxed]
       gmr-serve cluster --backends N [--addr A] [--artifacts DIR] [--port-file P]
                         [--journal P] [--hot-models N] [serve flags forwarded to backends]
       gmr-serve export --out PATH
       gmr-serve scenario-spec [--name S] [--seed N] [--stations N] [--years N]
                               [--kind mainstem|tributaries|braided] [--spread X]
                               [--out PATH]
       gmr-serve request ADDR METHOD PATH [--data JSON | --body-file FILE]
                         [--repeat N] [-v]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("scenario-spec") => cmd_scenario_spec(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        _ => usage(),
    }
}

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

/// Build the hosted forcing tables from the synthetic Nakdong dataset.
fn hosted_tables(seed: u64, days: Option<usize>) -> Tables {
    let ds = generate(&SyntheticConfig {
        seed,
        ..SyntheticConfig::default()
    });
    let cut = days.map_or(ds.days, |d| d.min(ds.days)).max(1);
    let mut tables = Tables::new();
    tables.insert(
        "target",
        HostedTable::Single(ds.target_series().vars[..cut].to_vec()),
    );
    tables.insert(
        "network",
        HostedTable::Network(
            ds.stations
                .iter()
                .map(|s| NetStation {
                    vars: s.vars[..cut].to_vec(),
                    flow: s.flow[..cut].to_vec(),
                })
                .collect(),
        ),
    );
    tables
}

fn cmd_serve(args: &[String]) -> ExitCode {
    sig::install();
    gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    let policy = match flag(args, "--fidelity") {
        None => gmr_expr::FidelityPolicy::default(),
        Some(name) => match gmr_expr::FidelityPolicy::parse(&name) {
            Some(p) => p,
            None => {
                eprintln!("bad --fidelity: {name} (expected bit-exact|allow-relaxed)");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut registry = ModelRegistry::with_policy(policy);
    if !args.iter().any(|a| a == "--no-builtin") {
        if let Err(e) = registry.insert(ModelArtifact::builtin_manual()) {
            eprintln!("builtin model rejected: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = flag(args, "--artifacts") {
        match registry.load_dir(&dir) {
            Ok(n) => eprintln!("loaded {n} artifact(s) from {dir}"),
            Err(e) => {
                eprintln!("artifact load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (seed, days, workers, conn_queue, sim_queue, window_ms, hot_models) = match (|| {
        Ok::<_, String>((
            parse_flag(args, "--seed", SyntheticConfig::default().seed)?,
            flag(args, "--days")
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --days: {v}")))
                .transpose()?,
            parse_flag(args, "--workers", ServerConfig::default().workers)?,
            parse_flag(args, "--conn-queue", ServerConfig::default().conn_queue)?,
            parse_flag(args, "--sim-queue", ServerConfig::default().sim_queue)?,
            parse_flag(args, "--window-ms", 2u64)?,
            parse_flag(args, "--hot-models", 0usize)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let tables = hosted_tables(seed, days);
    let config = ServerConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        workers,
        conn_queue,
        sim_queue,
        batch_window: Duration::from_millis(window_ms),
        hot_models,
        ..ServerConfig::default()
    };
    let handle = match Server::new(config, registry, tables).start() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    if let Some(path) = flag(args, "--port-file") {
        // The port file is how ci.sh discovers the ephemeral port; write
        // it atomically (rename) so a polling reader never sees a prefix.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("cannot write port file {path}");
            return ExitCode::FAILURE;
        }
    }
    println!("gmr-serve listening on {addr}");
    while !sig::terminated() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("termination signal observed; draining");
    handle.shutdown();
    if let Some(path) = flag(args, "--journal") {
        if let Err(e) = gmr_obsv::write_jsonl(&path) {
            eprintln!("journal write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("drained cleanly");
    ExitCode::SUCCESS
}

/// Backend flags `cluster` forwards verbatim to every spawned `serve`
/// process: value-carrying flags first, then bare switches.
const FORWARDED_VALUE_FLAGS: &[&str] = &[
    "--artifacts",
    "--days",
    "--seed",
    "--workers",
    "--conn-queue",
    "--sim-queue",
    "--window-ms",
    "--fidelity",
    "--hot-models",
];
const FORWARDED_BARE_FLAGS: &[&str] = &["--no-builtin"];

fn cmd_cluster(args: &[String]) -> ExitCode {
    sig::install();
    gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    let backends = match parse_flag(args, "--backends", 0usize) {
        Ok(n) if n >= 1 => n,
        Ok(_) => {
            eprintln!("cluster needs --backends N (N >= 1)");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = flag(args, "--dir").map_or_else(
        || std::env::temp_dir().join(format!("gmr-cluster-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let mut config = ClusterConfig::new(backends, exe, dir);
    config.restart_budget = match parse_flag(args, "--restart-budget", config.restart_budget) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    for &name in FORWARDED_VALUE_FLAGS {
        if let Some(v) = flag(args, name) {
            config.backend_args.push(name.into());
            config.backend_args.push(v);
        }
    }
    for &name in FORWARDED_BARE_FLAGS {
        if args.iter().any(|a| a == name) {
            config.backend_args.push(name.into());
        }
    }
    let gw_workers = GatewayConfig::default().workers;
    if flag(args, "--workers").is_none() {
        // Capacity rule: every gateway worker can park one idle
        // keep-alive connection per backend, so a backend needs more
        // workers than the gateway has — otherwise health probes and
        // fresh requests queue behind idle connections.
        config.backend_args.push("--workers".into());
        config.backend_args.push((gw_workers + 2).to_string());
    }
    let cluster = match Cluster::start(config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gw_config = GatewayConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::new(gw_config, cluster.slots()).start() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("gateway bind failed: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    let addr = gateway.addr();
    if let Some(path) = flag(args, "--port-file") {
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("cannot write port file {path}");
            gateway.shutdown();
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    }
    println!("gmr-serve cluster: gateway on {addr}, {backends} backend(s)");
    while !sig::terminated() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("termination signal observed; draining cluster");
    gateway.shutdown();
    cluster.shutdown();
    if let Some(path) = flag(args, "--journal") {
        if let Err(e) = gmr_obsv::write_jsonl(&path) {
            eprintln!("journal write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("cluster drained cleanly");
    ExitCode::SUCCESS
}

fn cmd_export(args: &[String]) -> ExitCode {
    let Some(out) = flag(args, "--out") else {
        eprintln!("export needs --out PATH");
        return ExitCode::from(2);
    };
    let artifact = ModelArtifact::builtin_manual();
    match artifact.save(&out) {
        Ok(()) => {
            println!("wrote {} ({})", out, artifact.name);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Generate a well-formed `gmr-scenario/v1` spec (the `POST /scenarios`
/// body format): a climate-transform chain plus one dam placed on a
/// station the seeded topology is guaranteed to accept (physical,
/// upstream of the outlet). What CI feeds the scenario smoke test.
fn cmd_scenario_spec(args: &[String]) -> ExitCode {
    let (name, seed, stations, years, kind, spread) = match (|| {
        Ok::<_, String>((
            flag(args, "--name").unwrap_or_else(|| "ci-what-if".into()),
            parse_flag(args, "--seed", 7u64)?,
            parse_flag(args, "--stations", 24usize)?,
            parse_flag(args, "--years", 1usize)?,
            flag(args, "--kind").unwrap_or_else(|| "braided".into()),
            parse_flag(args, "--spread", 0.25f64)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Validate the damless skeleton through the real parser — every range
    // check the server's admission gate would apply runs here first.
    let skeleton = format!(
        r#"{{"schema": "{}", "name": "{name}", "seed": {seed},
  "topology": {{"kind": "{kind}", "stations": {stations}}},
  "years": {years},
  "climate": [{{"kind": "monsoon_shift", "days": 10}},
              {{"kind": "heatwave", "start_day": 185, "length": 15, "amp": 3}},
              {{"kind": "drought", "scale": 0.8}}],
  "spread": {spread}}}"#,
        gmr_scenario::SCHEMA
    );
    let mut spec = match gmr_scenario::parse_spec(&skeleton) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid spec parameters: {e}");
            return ExitCode::from(2);
        }
    };
    // Grow the topology this spec will compile to and site the dam on a
    // physical (non-confluence) station that is not the outlet — chosen
    // deterministically, so the emitted spec is a pure function of the
    // flags.
    let (net, _envs) = gmr_scenario::topology::build_topology(&spec);
    let outlet = net.outlet();
    let dam_station = net
        .stations()
        .filter(|(sid, st)| *sid != outlet && st.kind != gmr_hydro::StationKind::Virtual)
        .map(|(_, st)| st.name.clone())
        .last();
    if let Some(station) = dam_station {
        spec.transforms
            .push(gmr_scenario::Transform::Dam(gmr_scenario::DamSpec {
                station,
                capacity: 200_000.0,
                release: vec![0.6; 12],
                overflow: 0.75,
            }));
    }
    let rendered = format!("{}\n", gmr_scenario::render_spec(&spec));
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({name}: {stations} stations, {years} year(s))");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn cmd_request(args: &[String]) -> ExitCode {
    let (Some(addr), Some(method), Some(path)) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    let body = if let Some(data) = flag(args, "--data") {
        data.into_bytes()
    } else if let Some(file) = flag(args, "--body-file").or_else(|| flag(args, "--body")) {
        match std::fs::read(&file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };
    let addr = match addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("bad address {addr:?} (want HOST:PORT)");
            return ExitCode::from(2);
        }
    };
    let repeat = match parse_flag(args, "--repeat", 1usize) {
        Ok(n) => n.max(1),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    // One keep-alive connection for the whole sequence: `--repeat N`
    // rides a single TCP stream instead of paying a handshake per call.
    let mut client = Client::new(addr);
    let mut code = ExitCode::SUCCESS;
    for _ in 0..repeat {
        match client.request(method, path, &body) {
            Ok(resp) => {
                eprintln!("HTTP {}", resp.status);
                if verbose {
                    // The trace id the request was served under — grep the
                    // gateway/backend journals (or a stitched trace) for it.
                    match &resp.trace {
                        Some(t) => eprintln!("X-Gmr-Trace: {t}"),
                        None => eprintln!("X-Gmr-Trace: (none)"),
                    }
                }
                print!("{}", String::from_utf8_lossy(&resp.body));
                if !(200..300).contains(&resp.status) {
                    code = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    code
}
