//! The HTTP serving loop: acceptor, worker pool, bounded queues, drain.
//!
//! Threading model (all `std`, no async runtime):
//!
//! ```text
//!   acceptor ──► conn queue (bounded, Mutex+Condvar) ──► N workers
//!                                                         │ try_send
//!                                                         ▼
//!                                   sim queue (bounded, sync_channel)
//!                                                         │
//!                                                         ▼
//!                                              batcher (coalesces)
//! ```
//!
//! Backpressure is explicit at both queues: a full connection queue gets
//! an immediate `429` written by the acceptor itself, and a full
//! simulation queue turns into a `429` from the worker. The server sheds
//! load; it never silently drops or indefinitely parks a request.
//!
//! Graceful drain: [`ServerHandle::shutdown`] (or a SIGTERM observed by
//! the binary) flips one atomic. The acceptor stops accepting, workers
//! finish the connections already queued plus whatever request is
//! mid-flight, the batcher flushes its final batch once every worker has
//! dropped its queue handle, and `shutdown` joins every thread before
//! returning.

use crate::batch::{
    run_batcher, BatcherConfig, ForcingSource, Mode, SimJob, SimOutcome, SimOutput, Tables,
};
use crate::http::{self, HttpError, Request};
use crate::registry::ModelRegistry;
use crate::scenario::{parse_sweep_request, render_sweep, run_sweep, ScenarioStore};
use crate::trace::TraceCtx;
use gmr_json::{push_escaped, push_f64};
use gmr_obsv::journal::Event;
use gmr_obsv::metrics::{snapshot_json, Counter, Histogram, Registry};
use std::collections::VecDeque;
use std::io::{self, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning. The defaults suit the single-core CI boxes this repo
/// targets: a small worker pool (workers mostly block on I/O or on the
/// batcher, so they outnumber cores without thrashing) and a coalescing
/// window a couple of orders below human-visible latency.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted-connection queue bound; beyond it the acceptor sheds with
    /// an immediate `429`.
    pub conn_queue: usize,
    /// Simulation queue bound; a full queue turns the request into `429`.
    pub sim_queue: usize,
    /// Batcher coalescing window.
    pub batch_window: Duration,
    /// Per-read socket timeout. Bounds how long a worker can ignore the
    /// shutdown flag while parked on an idle keep-alive connection.
    pub read_timeout: Duration,
    /// Consecutive idle read timeouts tolerated on one connection before
    /// it is closed with `408`.
    pub max_idle_reads: u32,
    /// Hot-tier capacity: how many compiled models stay resident at once
    /// (`0` = unbounded). Cold records always remain; an evicted model is
    /// recompiled (and re-verified) on its next touch.
    pub hot_models: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            conn_queue: 64,
            sim_queue: 128,
            batch_window: Duration::from_millis(2),
            read_timeout: Duration::from_millis(250),
            max_idle_reads: 40,
            hot_models: 0,
        }
    }
}

/// Every endpoint tag [`endpoint_tag`] can return, in one fixed order so
/// per-route histograms are pre-registered rather than created per hit.
/// Adding a route means adding it here AND in `endpoint_tag` — the
/// `route_tags_cover_dispatch` test fails if the two drift, which is what
/// used to let new endpoints silently fall through to `(other)`.
pub const ROUTE_TAGS: [&str; 7] = [
    "/healthz",
    "/models",
    "/simulate",
    "/scenarios",
    "/sweep",
    "/metrics",
    "(other)",
];

/// Serving-stack metrics, exposed verbatim by `/metrics`.
pub struct ServeMetrics {
    /// The registry `/metrics` snapshots.
    pub registry: Registry,
    /// Total requests answered (any status).
    pub requests: Arc<Counter>,
    /// Requests shed with `429` (either queue).
    pub shed: Arc<Counter>,
    /// Coalesced sweep width per `/simulate` response.
    pub batch: Arc<Histogram>,
    /// End-to-end request service time, microseconds.
    pub latency_us: Arc<Histogram>,
    /// Per-route service time, index-aligned with [`ROUTE_TAGS`].
    pub route_latency: Vec<Arc<Histogram>>,
    /// Scenarios freshly admitted through `POST /scenarios`.
    pub scn_admitted: Arc<Counter>,
    /// `/sweep` requests executed.
    pub scn_sweeps: Arc<Counter>,
    /// Ensemble variants simulated across all sweeps.
    pub scn_variants: Arc<Counter>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = Registry::new();
        ServeMetrics {
            requests: registry.counter("serve.requests_total"),
            shed: registry.counter("serve.shed_total"),
            batch: registry.histogram("serve.batch_size"),
            latency_us: registry.histogram("serve.latency_us"),
            route_latency: ROUTE_TAGS
                .iter()
                .map(|t| registry.histogram(&format!("serve.route.{t}.latency_us")))
                .collect(),
            scn_admitted: registry.counter("scn.admitted_total"),
            scn_sweeps: registry.counter("scn.sweeps_total"),
            scn_variants: registry.counter("scn.sweep_variants_total"),
            registry,
        }
    }

    fn record_route(&self, tag: &str, dur_us: u64) {
        if let Some(i) = ROUTE_TAGS.iter().position(|t| *t == tag) {
            self.route_latency[i].record(dur_us);
        }
    }
}

/// Everything the worker threads share.
struct Shared {
    registry: Arc<ModelRegistry>,
    tables: Arc<Tables>,
    /// Runtime-admitted scenarios; the same store the tables resolve
    /// `scn:` forcing refs through.
    scenarios: Arc<ScenarioStore>,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_ready: Condvar,
    config: ServerConfig,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A configured server, ready to start.
pub struct Server {
    config: ServerConfig,
    registry: ModelRegistry,
    tables: Tables,
}

/// A running server: its bound address plus the join handles `shutdown`
/// drains.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bundle a registry and hosted tables under a config.
    pub fn new(config: ServerConfig, registry: ModelRegistry, tables: Tables) -> Server {
        Server {
            config,
            registry,
            tables,
        }
    }

    /// Bind, spawn the acceptor/worker/batcher threads, return a handle.
    pub fn start(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = self.config.workers.max(1);
        let mut registry = self.registry;
        registry.set_hot_cap(self.config.hot_models);
        // One scenario store serves both the dispatch path (admission,
        // listing, sweeps) and the batcher (solo `scn:` forcing refs) —
        // attach it to the tables before they freeze behind the Arc.
        let mut tables = self.tables;
        let scenarios = match tables.scenarios() {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(ScenarioStore::new());
                tables.attach_scenarios(Arc::clone(&s));
                s
            }
        };
        let shared = Arc::new(Shared {
            registry: Arc::new(registry),
            tables: Arc::new(tables),
            scenarios,
            metrics: ServeMetrics::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conns_ready: Condvar::new(),
            config: self.config,
        });
        let (sim_tx, sim_rx) = mpsc::sync_channel::<SimJob>(shared.config.sim_queue.max(1));
        let mut threads = Vec::with_capacity(workers + 2);

        let batcher_tables = Arc::clone(&shared.tables);
        let batcher_registry = Arc::clone(&shared.registry);
        let batcher_cfg = BatcherConfig {
            window: shared.config.batch_window,
            max_batch: 256,
        };
        threads.push(
            thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || {
                    run_batcher(sim_rx, batcher_tables, batcher_registry, batcher_cfg)
                })?,
        );
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let sim_tx = sim_tx.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, sim_tx))?,
            );
        }
        // `sim_tx` originals all live in workers now; dropping ours means
        // the batcher exits exactly when the last worker does.
        drop(sim_tx);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("serve-acceptor".into())
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        gmr_obsv::emit(Event::Note {
            name: "serve.listen",
            msg: format!("gmr-serve listening on {addr}"),
        });
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (real port even when config said `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the serving metrics as JSON (same body `/metrics` serves).
    pub fn metrics_json(&self) -> String {
        metrics_body(&self.shared.metrics, &self.shared.registry)
    }

    /// Begin a graceful drain and block until every thread has exited:
    /// stop accepting, serve what is queued and in flight, flush the
    /// batcher, join.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.conns_ready.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.draining() {
            // Wake every parked worker so they observe the flag.
            shared.conns_ready.notify_all();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut q = shared.conns.lock().unwrap();
                if q.len() >= shared.config.conn_queue {
                    drop(q);
                    // Shed at the door: an explicit 429, never a hang. The
                    // request is never read, so there is no header to
                    // adopt — mint a root trace and echo it anyway; the
                    // shed is attributable like any served request.
                    shared.metrics.shed.inc();
                    shared.metrics.requests.inc();
                    let ctx = TraceCtx::mint();
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    let _ = http::write_response_traced(
                        &mut stream,
                        429,
                        "application/json",
                        &http::error_body("connection queue full"),
                        true,
                        None,
                        Some(&ctx.header_value()),
                    );
                    gmr_obsv::emit(Event::Request {
                        endpoint: "(accept)",
                        status: 429,
                        dur_us: 0,
                        batch: 0,
                    });
                    gmr_obsv::emit(Event::Access {
                        trace: ctx.trace,
                        span: ctx.span,
                        parent: ctx.parent,
                        method: "-".into(),
                        path: "(accept)",
                        model: String::new(),
                        table: String::new(),
                        status: 429,
                        shed: true,
                        batched: false,
                        queue_us: 0,
                        sim_us: 0,
                        dur_us: 0,
                    });
                } else {
                    q.push_back(stream);
                    drop(q);
                    shared.conns_ready.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(shared: &Shared, sim_tx: SyncSender<SimJob>) {
    loop {
        let stream = {
            let mut q = shared.conns.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .conns_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(stream, shared, &sim_tx);
    }
}

/// Serve one (possibly keep-alive) connection to completion.
fn handle_connection(stream: TcpStream, shared: &Shared, sim_tx: &SyncSender<SimJob>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut idle = 0u32;
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => return, // clean close between requests
            Ok(Some(req)) => {
                idle = 0;
                let close = req.wants_close() || shared.draining();
                // Adopt the caller's trace context (the gateway's hop) or
                // mint a root when called directly.
                let ctx = TraceCtx::from_header(req.header("x-gmr-trace"));
                let tag = endpoint_tag(&req.path);
                let t0 = Instant::now();
                let served = dispatch(&req, shared, sim_tx, ctx);
                let dur_us = t0.elapsed().as_micros() as u64;
                let status = served.status;
                shared.metrics.requests.inc();
                if status == 429 {
                    shared.metrics.shed.inc();
                }
                shared.metrics.latency_us.record(dur_us);
                shared.metrics.record_route(tag, dur_us);
                if served.batch > 0 {
                    shared.metrics.batch.record(served.batch);
                }
                gmr_obsv::emit(Event::Request {
                    endpoint: tag,
                    status,
                    dur_us,
                    batch: served.batch,
                });
                gmr_obsv::emit(Event::Access {
                    trace: ctx.trace,
                    span: ctx.span,
                    parent: ctx.parent,
                    method: req.method.clone(),
                    path: tag,
                    model: served.model,
                    table: served.table,
                    status,
                    shed: status == 429,
                    batched: served.batch > 1,
                    queue_us: served.queue_us,
                    sim_us: served.sim_us,
                    dur_us,
                });
                if http::write_response_traced(
                    &mut writer,
                    status,
                    "application/json",
                    &served.body,
                    close,
                    None,
                    Some(&ctx.header_value()),
                )
                .is_err()
                    || close
                {
                    return;
                }
            }
            Err(HttpError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection. During a drain, or after the
                // idle budget, close it; a timeout that interrupted a
                // half-sent request will surface as a parse error on the
                // next round and be answered with 400.
                idle += 1;
                if shared.draining() {
                    return;
                }
                if idle >= shared.config.max_idle_reads {
                    let _ = http::write_response(
                        &mut writer,
                        408,
                        "application/json",
                        &http::error_body("idle timeout"),
                        true,
                    );
                    return;
                }
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(msg)) => {
                shared.metrics.requests.inc();
                gmr_obsv::emit(Event::Request {
                    endpoint: "(malformed)",
                    status: 400,
                    dur_us: 0,
                    batch: 0,
                });
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "application/json",
                    &http::error_body(msg),
                    true,
                );
                return;
            }
        }
    }
}

/// Stable endpoint label for journal events and per-route histograms.
/// Every arm must return a member of [`ROUTE_TAGS`] (pinned by test) —
/// a new route added to `dispatch` but not here would land in the
/// `(other)` bucket instead of its own histogram.
fn endpoint_tag(path: &str) -> &'static str {
    let bare = path.split('?').next().unwrap_or(path);
    match bare {
        "/healthz" => "/healthz",
        "/models" => "/models",
        "/simulate" => "/simulate",
        "/scenarios" => "/scenarios",
        "/sweep" => "/sweep",
        "/metrics" => "/metrics",
        _ => "(other)",
    }
}

/// What one dispatched request produced: the response plus the
/// attribution fields the `access` journal event records.
struct Served {
    status: u16,
    body: Vec<u8>,
    /// Coalesced sweep width (0 for non-simulation endpoints).
    batch: u64,
    /// Model name, when the request named one.
    model: String,
    /// Forcing-table name (`"(inline)"` for shipped rows).
    table: String,
    /// Microseconds the job waited in the simulation queue.
    queue_us: u64,
    /// Microseconds of simulation work.
    sim_us: u64,
}

impl Served {
    /// A response with no simulation attribution.
    fn plain(status: u16, body: Vec<u8>) -> Served {
        Served {
            status,
            body,
            batch: 0,
            model: String::new(),
            table: String::new(),
            queue_us: 0,
            sim_us: 0,
        }
    }

    /// A response attributed to a (model, table) pair.
    fn tagged(status: u16, body: Vec<u8>, model: &str, table: &str) -> Served {
        Served {
            model: model.to_string(),
            table: table.to_string(),
            ..Served::plain(status, body)
        }
    }
}

/// Route one request.
fn dispatch(req: &Request, shared: &Shared, sim_tx: &SyncSender<SimJob>, ctx: TraceCtx) -> Served {
    let _sp = gmr_obsv::span_fine!("serve.dispatch", ctx.trace);
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"ok\": true, \"models\": {}, \"draining\": {}}}\n",
                shared.registry.len(),
                shared.draining()
            );
            Served::plain(200, body.into_bytes())
        }
        ("GET", "/models") => Served::plain(200, shared.registry.render_json().into_bytes()),
        ("GET", "/metrics") => {
            let body = metrics_body(&shared.metrics, &shared.registry);
            Served::plain(200, body.into_bytes())
        }
        ("POST", "/simulate") => simulate(req, shared, sim_tx, ctx),
        ("POST", "/scenarios") => scenarios_admit(req, shared),
        ("GET", "/scenarios") => Served::plain(200, shared.scenarios.render_json().into_bytes()),
        ("POST", "/sweep") => sweep(req, shared, ctx),
        ("GET", "/simulate" | "/sweep") | ("POST", "/healthz" | "/models" | "/metrics") => {
            Served::plain(
                405,
                http::error_body("method not allowed for this endpoint"),
            )
        }
        _ => Served::plain(404, http::error_body("no such endpoint")),
    }
}

/// `POST /scenarios`: lint-gate and admit a `gmr-scenario/v1` spec. The
/// store is append-only and name-immutable — an identical spec re-admits
/// as a no-op (`"fresh": false`), a different spec under a taken name is
/// `409` — so `scn:` refs and the gateway's scenario routing stay stable.
fn scenarios_admit(req: &Request, shared: &Shared) -> Served {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Served::plain(400, http::error_body("body is not UTF-8")),
    };
    match shared.scenarios.admit(body) {
        Ok((scn, fresh)) => {
            if fresh {
                shared.metrics.scn_admitted.inc();
            }
            let mut o = String::from("{\"admitted\": true, \"fresh\": ");
            o.push_str(if fresh { "true" } else { "false" });
            o.push_str(", \"name\": ");
            push_escaped(&mut o, &scn.spec.name);
            o.push_str(&format!(
                ", \"stations\": {}, \"days\": {}, \"outlet\": ",
                scn.spec.stations, scn.days
            ));
            push_escaped(&mut o, &scn.outlet);
            o.push_str("}\n");
            Served::plain(200, o.into_bytes())
        }
        Err((status, msg)) => Served::plain(status, http::error_body(&msg)),
    }
}

/// `POST /sweep`: fan one request into `variants` jittered forcings of an
/// admitted scenario, execute them through lock-step ensemble lanes, and
/// answer with per-variant summary statistics. Runs inline on the worker
/// (a sweep IS a batch — it does not coalesce with `/simulate` jobs).
fn sweep(req: &Request, shared: &Shared, ctx: TraceCtx) -> Served {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Served::plain(400, http::error_body("body is not UTF-8")),
    };
    let value = match gmr_json::parse(body) {
        Ok(v) => v,
        Err(e) => return Served::plain(400, http::error_body(&format!("invalid JSON: {e}"))),
    };
    let sreq = match parse_sweep_request(&value) {
        Ok(r) => r,
        Err(msg) => return Served::plain(400, http::error_body(&msg)),
    };
    let table = format!("scn:{}", sreq.scenario);
    let Some(scn) = shared.scenarios.get(&sreq.scenario) else {
        return Served::tagged(
            404,
            http::error_body(&format!("no scenario {:?}", sreq.scenario)),
            &sreq.model,
            &table,
        );
    };
    let Some(hot) = shared.registry.touch(&sreq.model) else {
        return Served::tagged(
            404,
            http::error_body(&format!("no model {:?}", sreq.model)),
            &sreq.model,
            &table,
        );
    };
    let start_us = gmr_obsv::now_us();
    let t0 = Instant::now();
    let summaries = run_sweep(&scn, &hot.system, &sreq);
    let sim_us = t0.elapsed().as_micros() as u64;
    gmr_obsv::span::record_external("scn.sweep", start_us, sim_us, Some(ctx.trace));
    shared.metrics.scn_sweeps.inc();
    shared.metrics.scn_variants.add(sreq.variants as u64);
    let mut served = Served::tagged(
        200,
        render_sweep(&sreq, scn.days, &summaries),
        &sreq.model,
        &table,
    );
    served.batch = sreq.variants as u64;
    served.sim_us = sim_us;
    served
}

fn simulate(req: &Request, shared: &Shared, sim_tx: &SyncSender<SimJob>, ctx: TraceCtx) -> Served {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Served::plain(400, http::error_body("body is not UTF-8")),
    };
    let value = match gmr_json::parse(body) {
        Ok(v) => v,
        Err(e) => return Served::plain(400, http::error_body(&format!("invalid JSON: {e}"))),
    };
    let request = match crate::batch::parse_sim_request(&value) {
        Ok(r) => r,
        Err(msg) => return Served::plain(400, http::error_body(&msg)),
    };
    let model_name = request.model.clone();
    let table = match &request.source {
        ForcingSource::Ref(name) => name.clone(),
        ForcingSource::Inline(_) => "(inline)".to_string(),
    };
    let Some(model) = shared.registry.get(&request.model) else {
        return Served::tagged(
            404,
            http::error_body(&format!("no model {:?}", request.model)),
            &model_name,
            &table,
        );
    };
    let mode = request.mode;
    let (reply, outcome_rx) = mpsc::channel::<SimOutcome>();
    let job = SimJob {
        model,
        request,
        ctx,
        enqueued: Instant::now(),
        reply,
    };
    match sim_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            // Bounded queue full: shed explicitly rather than park the
            // client behind an unbounded backlog.
            return Served::tagged(
                429,
                http::error_body("simulation queue full"),
                &model_name,
                &table,
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return Served::tagged(
                503,
                http::error_body("simulator is shut down"),
                &model_name,
                &table,
            );
        }
    }
    match outcome_rx.recv() {
        Ok(SimOutcome {
            result,
            batch,
            queue_us,
            sim_us,
        }) => {
            let mut served = match result {
                Ok(output) => Served {
                    batch: batch as u64,
                    ..Served::tagged(
                        200,
                        render_output(&model_name, &output, mode, batch),
                        &model_name,
                        &table,
                    )
                },
                Err((status, msg)) => {
                    Served::tagged(status, http::error_body(&msg), &model_name, &table)
                }
            };
            served.queue_us = queue_us;
            served.sim_us = sim_us;
            served
        }
        Err(_) => Served::tagged(
            503,
            http::error_body("simulator dropped the job"),
            &model_name,
            &table,
        ),
    }
}

/// The `/metrics` body: the counter/histogram snapshot plus the model
/// registry's hot-tier statistics, one flat JSON object so the gateway
/// rollup (and `jq`-less shell checks) can sum fields across backends.
fn metrics_body(metrics: &ServeMetrics, registry: &ModelRegistry) -> String {
    let mut body = snapshot_json(&metrics.registry.snapshot());
    let stats = registry.stats();
    debug_assert!(body.ends_with('}'));
    body.pop();
    if body.len() > 1 {
        body.push_str(", ");
    }
    body.push_str(&format!(
        "\"registry.models\": {}, \"registry.hot_cap\": {}, \"registry.hot_resident\": {}, \
         \"registry.hot_hits\": {}, \"registry.hot_misses\": {}, \
         \"registry.hot_evictions\": {}, \"registry.prefix_bytes\": {}}}",
        registry.len(),
        registry.hot_cap(),
        stats.resident,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.prefix_bytes,
    ));
    body
}

fn push_series(o: &mut String, key: &str, xs: &[f64]) {
    o.push('"');
    o.push_str(key);
    o.push_str("\": [");
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        push_f64(o, x);
    }
    o.push(']');
}

fn push_summary(o: &mut String, bphy: &[f64], bzoo: &[f64]) {
    let n = bphy.len().max(1) as f64;
    let mean = bphy.iter().sum::<f64>() / n;
    let max = bphy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    o.push_str("\"final\": [");
    push_f64(o, bphy.last().copied().unwrap_or(f64::NAN));
    o.push_str(", ");
    push_f64(o, bzoo.last().copied().unwrap_or(f64::NAN));
    o.push_str("], \"mean_bphy\": ");
    push_f64(o, mean);
    o.push_str(", \"max_bphy\": ");
    push_f64(o, max);
}

/// Render the `/simulate` response body.
fn render_output(model: &str, output: &SimOutput, mode: Mode, batch: usize) -> Vec<u8> {
    let mut o = String::from("{\"model\": ");
    push_escaped(&mut o, model);
    o.push_str(&format!(", \"batch\": {batch}, "));
    match output {
        SimOutput::Single { bphy, bzoo } => {
            o.push_str(&format!("\"days\": {}, ", bphy.len()));
            match mode {
                Mode::Series => {
                    push_series(&mut o, "bphy", bphy);
                    o.push_str(", ");
                    push_series(&mut o, "bzoo", bzoo);
                }
                Mode::Summary => push_summary(&mut o, bphy, bzoo),
            }
        }
        SimOutput::Network {
            stations,
            bphy,
            bzoo,
        } => {
            let days = bphy.first().map(Vec::len).unwrap_or(0);
            o.push_str(&format!("\"days\": {days}, \"stations\": ["));
            for (i, name) in stations.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"name\": ");
                push_escaped(&mut o, name);
                o.push_str(", ");
                match mode {
                    Mode::Series => {
                        push_series(&mut o, "bphy", &bphy[i]);
                        o.push_str(", ");
                        push_series(&mut o, "bzoo", &bzoo[i]);
                    }
                    Mode::Summary => push_summary(&mut o, &bphy[i], &bzoo[i]),
                }
                o.push('}');
            }
            o.push(']');
        }
    }
    o.push_str("}\n");
    o.into_bytes()
}

/// Tiny blocking client for tests and one-shot `ci.sh` smoke checks: one
/// request per call over a fresh connection. Anything issuing sequential
/// requests should hold a [`Client`] instead.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_request(&mut stream, method, path, body, true)?;
    read_response(&mut BufReader::new(stream))
}

/// One parsed HTTP response, headers the serving stack cares about
/// lifted out of the head.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Length`-framed body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds when the server shed load (429).
    pub retry_after: Option<u64>,
    /// Whether the server announced `Connection: close`.
    pub close: bool,
    /// The `X-Gmr-Trace` context the request was served under, verbatim
    /// (`trace-span`, 16 hex digits each) — what `gmr-serve request -v`
    /// prints so a user can grep the journals for their own request.
    pub trace: Option<String>,
}

/// A blocking keep-alive client: one TCP connection reused across
/// sequential requests, reconnecting only when the server closes it (or
/// a reused connection turns out to be stale, in which case the request
/// is retried once on a fresh one). This is what `gmr-serve request`,
/// the gateway's backend pool and the bench harness drive — connecting
/// per call costs a handshake round-trip per request and floods the
/// accept queue with one-shot connections.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr`; connects lazily on first request.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live connection is currently held (test/introspection).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().unwrap())
    }

    /// Issue one request, reusing the held connection when possible.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let reused = self.conn.is_some();
        let r = self.exchange(method, path, body);
        match r {
            Ok(resp) => {
                if resp.close {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) if reused => {
                // A kept-alive connection can die between requests (server
                // idle-closed it, or restarted). Retry exactly once on a
                // fresh connection; a failure there is real.
                self.conn = None;
                let resp = self.exchange(method, path, body)?;
                if resp.close {
                    self.conn = None;
                }
                let _ = e;
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn exchange(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let conn = self.connect()?;
        write_request(&mut conn.get_ref(), method, path, body, false)?;
        read_response_full(conn)
    }
}

/// Write one request on an open connection (keep-alive unless `close`).
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_request_traced(stream, method, path, body, close, None)
}

/// [`write_request`] carrying an `X-Gmr-Trace` header: the gateway's
/// backend pool propagates its hop context downstream with this.
pub fn write_request_traced(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
    close: bool,
    trace: Option<&str>,
) -> io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: gmr-serve\r\nContent-Length: {}\r\n",
        body.len()
    );
    if let Some(t) = trace {
        head.push_str(&format!("{}: {t}\r\n", crate::trace::TRACE_HEADER));
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one `Content-Length`-framed response; returns `(status, body)`.
pub fn read_response(reader: &mut impl io::BufRead) -> io::Result<(u16, Vec<u8>)> {
    read_response_full(reader).map(|r| (r.status, r.body))
}

/// Read one response, keeping the headers the cluster path needs
/// (`Retry-After` for 429 propagation, `Connection` for pool management).
pub fn read_response_full(reader: &mut impl io::BufRead) -> io::Result<Response> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    let mut close = false;
    let mut trace = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let t = line.trim_end_matches(['\r', '\n']);
        if t.is_empty() {
            break;
        }
        if let Some((k, v)) = t.split_once(':') {
            let (k, v) = (k.trim(), v.trim());
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .parse()
                    .map_err(|_| io::Error::new(ErrorKind::InvalidData, "bad content-length"))?;
            } else if k.eq_ignore_ascii_case("retry-after") {
                retry_after = v.parse().ok();
            } else if k.eq_ignore_ascii_case("connection") {
                close = v.eq_ignore_ascii_case("close");
            } else if k.eq_ignore_ascii_case(crate::trace::TRACE_HEADER) {
                trace = Some(v.to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    Ok(Response {
        status,
        body,
        retry_after,
        close,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every tag `endpoint_tag` can produce is a member of [`ROUTE_TAGS`]
    /// (so it has a pre-registered per-route histogram), and every served
    /// endpoint maps to its *own* tag rather than falling through to
    /// `(other)` — the regression that used to leave new routes without
    /// per-route latency attribution.
    #[test]
    fn route_tags_cover_dispatch() {
        for path in [
            "/healthz",
            "/models",
            "/simulate",
            "/scenarios",
            "/sweep",
            "/metrics",
        ] {
            let tag = endpoint_tag(path);
            assert_eq!(tag, path, "{path} must have its own route tag");
            assert!(ROUTE_TAGS.contains(&tag));
            // Query strings route to the same tag.
            assert_eq!(endpoint_tag(&format!("{path}?x=1")), tag);
        }
        assert_eq!(endpoint_tag("/nope"), "(other)");
        assert!(ROUTE_TAGS.contains(&"(other)"));
    }

    /// The per-route histograms land in the `/metrics` snapshot under
    /// their route names.
    #[test]
    fn route_histograms_are_registered() {
        let m = ServeMetrics::new();
        m.record_route("/sweep", 123);
        m.record_route("(other)", 9);
        m.record_route("(not-a-tag)", 7); // ignored, not a panic
        let snap = snapshot_json(&m.registry.snapshot());
        for tag in ROUTE_TAGS {
            assert!(
                snap.contains(&format!("serve.route.{tag}.latency_us")),
                "missing histogram for {tag} in {snap}"
            );
        }
    }
}
