//! Scenario hosting and ensemble sweep execution.
//!
//! Two serving primitives on top of [`gmr_scenario`]:
//!
//! * [`ScenarioStore`] — runtime-admitted compiled scenarios. `POST
//!   /scenarios` is lint-gated like model admission: the spec must
//!   strict-parse, range-check, and compile (dam stations must exist and
//!   be physical) before it is hosted; a rejected spec is a `4xx` and the
//!   store is untouched. Admission is append-only and idempotent — the
//!   same canonical spec re-admits as a no-op, a *different* spec under a
//!   taken name is refused with `409` — so a scenario name's forcing
//!   tables never change underneath the registry's per-table prefix
//!   caches or the gateway's routing.
//! * [`run_sweep`] — fans one `/sweep` request into `variants` jittered
//!   forcing variants and steps them through [`gmr_expr::EnsembleSession`]
//!   lanes ([`LANES`] variants per lock-step core dispatch, padded to full
//!   SIMD stripes exactly like the `/simulate` batcher), reducing each
//!   trajectory online to a [`SweepSummary`].
//!
//! The bit-identity contract extends to sweeps: variant `i`'s summary from
//! a batched sweep equals the summary reduced from a solo `/simulate` of
//! `forcings_ref: "scn:<name>/<i>"` — same pre-step recording, same
//! sanitised Euler step, same per-lane kernels (`bench_scenario
//! --validate` gates on it through the gateway).

use crate::batch::PAD_MIN;
use gmr_bio::sanitise_state;
use gmr_expr::{CompiledSystem, LANES};
use gmr_hydro::NUM_VARS;
use gmr_json::{push_escaped, Value};
use gmr_obsv::journal::Event;
use gmr_scenario::{
    compile, parse_spec, render_spec, CompiledScenario, ReduceSpec, SweepReducer, SweepSummary,
};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Prefix that names a hosted scenario variant as a forcing table:
/// `scn:<scenario>/<variant>` resolves to that variant's materialized
/// rows anywhere a `forcings_ref` is accepted.
pub const SCN_REF_PREFIX: &str = "scn:";

/// Upper bound on `/sweep` fan-out per request. Large enough for the
/// "hundreds to thousands" ensemble studies the scenario engine targets,
/// small enough that one request cannot park a worker indefinitely.
pub const MAX_VARIANTS: u32 = 8192;

/// Runtime-admitted compiled scenarios, shared by the dispatch path and
/// the batcher (which resolves `scn:` forcing refs through it).
#[derive(Debug, Default)]
pub struct ScenarioStore {
    map: RwLock<BTreeMap<String, Arc<CompiledScenario>>>,
}

impl ScenarioStore {
    /// Empty store.
    pub fn new() -> ScenarioStore {
        ScenarioStore::default()
    }

    /// Admit a scenario from its JSON spec text. Returns the compiled
    /// scenario and whether it was freshly admitted (`false` = identical
    /// spec already hosted). Errors are `(http_status, message)`.
    pub fn admit(&self, src: &str) -> Result<(Arc<CompiledScenario>, bool), (u16, String)> {
        let spec = parse_spec(src).map_err(|e| (400, format!("scenario rejected: {e}")))?;
        let canonical = render_spec(&spec);
        {
            let map = self.map.read().unwrap();
            if let Some(existing) = map.get(&spec.name) {
                return if render_spec(&existing.spec) == canonical {
                    Ok((Arc::clone(existing), false))
                } else {
                    Err((
                        409,
                        format!(
                            "scenario {:?} is already admitted with a different spec \
                             (names are immutable once admitted)",
                            spec.name
                        ),
                    ))
                };
            }
        }
        let scn = compile(&spec).map_err(|e| (400, format!("scenario rejected: {e}")))?;
        gmr_obsv::emit(Event::Note {
            name: "scn.lint",
            msg: format!(
                "scenario {:?} admitted: {} stations, {} days, {} transform(s)",
                spec.name,
                spec.stations,
                scn.days,
                spec.transforms.len()
            ),
        });
        let scn = Arc::new(scn);
        let mut map = self.map.write().unwrap();
        // Two concurrent admissions of the same spec: first insert wins,
        // both see the same compiled world (compilation is deterministic).
        let entry = map
            .entry(spec.name.clone())
            .or_insert_with(|| Arc::clone(&scn));
        Ok((Arc::clone(entry), true))
    }

    /// The compiled scenario under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<CompiledScenario>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Number of hosted scenarios.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Whether no scenario is hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row count of the table a `scn:<name>/<variant>` ref would resolve
    /// to, without materializing it.
    pub fn ref_len(&self, table: &str) -> Option<usize> {
        let (name, _) = parse_ref(table)?;
        Some(self.get(name)?.days)
    }

    /// Materialize the forcing table behind a `scn:<name>/<variant>` ref.
    pub fn resolve_ref(&self, table: &str) -> Option<Vec<[f64; NUM_VARS]>> {
        let (name, variant) = parse_ref(table)?;
        Some(self.get(name)?.variant_rows(variant))
    }

    /// The `GET /scenarios` body: every hosted scenario with its compiled
    /// shape and canonical spec.
    pub fn render_json(&self) -> String {
        let map = self.map.read().unwrap();
        let mut o = String::from("{\"scenarios\": [");
        for (i, (name, scn)) in map.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("{\"name\": ");
            push_escaped(&mut o, name);
            o.push_str(&format!(
                ", \"stations\": {}, \"days\": {}, \"outlet\": ",
                scn.spec.stations, scn.days
            ));
            push_escaped(&mut o, &scn.outlet);
            o.push_str(", \"spec\": ");
            o.push_str(&render_spec(&scn.spec));
            o.push('}');
        }
        o.push_str("]}\n");
        o
    }
}

/// Split a `scn:<name>/<variant>` ref. `None` for anything else (a plain
/// hosted-table name, a malformed ref).
fn parse_ref(table: &str) -> Option<(&str, u32)> {
    let rest = table.strip_prefix(SCN_REF_PREFIX)?;
    let (name, var) = rest.split_once('/')?;
    var.parse().ok().map(|v| (name, v))
}

/// A parsed, validated `/sweep` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Hosted scenario name.
    pub scenario: String,
    /// Model name in the registry.
    pub model: String,
    /// Ensemble width: variants `0..variants` are swept.
    pub variants: u32,
    /// Reduction parameters.
    pub reduce: ReduceSpec,
    /// Initial `(B_Phy, B_Zoo)` — same default as `/simulate`.
    pub init: (f64, f64),
    /// Euler step.
    pub dt: f64,
    /// State cap.
    pub state_cap: f64,
}

/// Parse and validate a `/sweep` body. Error strings are safe for `400`.
/// Unknown keys are rejected — a misspelled `"variants"` must not quietly
/// sweep a 1-variant default.
pub fn parse_sweep_request(v: &Value) -> Result<SweepRequest, String> {
    let Value::Obj(m) = v else {
        return Err("body must be an object".into());
    };
    const KEYS: [&str; 7] = [
        "scenario",
        "model",
        "variants",
        "reduce",
        "init",
        "dt",
        "state_cap",
    ];
    for k in m.keys() {
        if !KEYS.contains(&k.as_str()) {
            return Err(format!("unknown key {k:?}"));
        }
    }
    let scenario = v
        .get("scenario")
        .and_then(Value::as_str)
        .ok_or("missing \"scenario\"")?
        .to_string();
    let model = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or("missing \"model\"")?
        .to_string();
    let variants = v
        .get("variants")
        .and_then(Value::as_u64)
        .ok_or("missing \"variants\" (a positive integer)")? as u32;
    if variants == 0 || variants > MAX_VARIANTS {
        return Err(format!("\"variants\" must be in 1..={MAX_VARIANTS}"));
    }
    let reduce = match v.get("reduce") {
        None => ReduceSpec::default(),
        Some(r) => {
            let Value::Obj(rm) = r else {
                return Err("\"reduce\" must be an object".into());
            };
            for k in rm.keys() {
                if k != "threshold" {
                    return Err(format!("unknown reduce key {k:?}"));
                }
            }
            let threshold = r
                .get("threshold")
                .and_then(Value::as_f64)
                .unwrap_or(ReduceSpec::default().threshold);
            if !threshold.is_finite() || threshold < 0.0 {
                return Err("\"reduce.threshold\" must be finite and non-negative".into());
            }
            ReduceSpec { threshold }
        }
    };
    let init = match v.get("init") {
        None => (8.0, 1.2),
        Some(p) => {
            let arr = p.as_arr().ok_or("\"init\" must be [bphy, bzoo]")?;
            if arr.len() != 2 {
                return Err("\"init\" must be [bphy, bzoo]".into());
            }
            let a = arr[0].as_f64().ok_or("\"init\" values must be numbers")?;
            let b = arr[1].as_f64().ok_or("\"init\" values must be numbers")?;
            if !a.is_finite() || !b.is_finite() {
                return Err("\"init\" values must be finite".into());
            }
            (a, b)
        }
    };
    let f64_field = |key: &str, default: f64| -> Result<f64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(x) => {
                let x = x
                    .as_f64()
                    .ok_or_else(|| format!("{key:?} must be a number"))?;
                if !x.is_finite() || x <= 0.0 {
                    return Err(format!("{key:?} must be positive and finite"));
                }
                Ok(x)
            }
        }
    };
    Ok(SweepRequest {
        scenario,
        model,
        variants,
        reduce,
        init,
        dt: f64_field("dt", 1.0)?,
        state_cap: f64_field("state_cap", 1e9)?,
    })
}

/// Execute a sweep: variants `0..req.variants` in [`LANES`]-wide ensemble
/// chunks, each trajectory reduced online in day order. Per-variant
/// results are bit-identical to a solo [`crate::batch::simulate_single`]
/// over that variant's table (pinned by tests and `bench_scenario`).
pub fn run_sweep(
    scn: &CompiledScenario,
    sys: &CompiledSystem,
    req: &SweepRequest,
) -> Vec<SweepSummary> {
    let days = scn.days;
    let mut summaries = Vec::with_capacity(req.variants as usize);
    let mut first = 0u32;
    while first < req.variants {
        let k = ((req.variants - first) as usize).min(LANES);
        let mut tabs: Vec<Vec<[f64; NUM_VARS]>> =
            (0..k).map(|j| scn.variant_rows(first + j as u32)).collect();
        // Same padding rule as the `/simulate` batcher: with the vector
        // kernels live, a wide-but-ragged chunk runs padded to a full
        // stripe (padded lanes replay variant 0 and are dropped; lanes
        // are arithmetically independent, so real lanes are unchanged).
        let k_run = if gmr_expr::simd::active() && (PAD_MIN..LANES).contains(&k) {
            LANES
        } else {
            k
        };
        for _ in k..k_run {
            tabs.push(tabs[0].clone());
        }
        let refs: Vec<&[[f64; NUM_VARS]]> = tabs.iter().map(Vec::as_slice).collect();
        let mut session = sys.ensemble_session(&refs);
        let mut states: Vec<f64> = (0..k_run).flat_map(|_| [req.init.0, req.init.1]).collect();
        let mut reducers: Vec<SweepReducer> = (0..k)
            .map(|j| SweepReducer::new(first + j as u32, &req.reduce))
            .collect();
        let mut d = vec![0.0f64; k_run * 2];
        for t in 0..days {
            // Pre-step recording, then step, then sanitise — exactly the
            // `simulate_single` convention the solo path uses.
            for (l, r) in reducers.iter_mut().enumerate() {
                r.push(states[l * 2], states[l * 2 + 1]);
            }
            session.step(t, &states, &mut d);
            for l in 0..k_run {
                states[l * 2] = sanitise_state(states[l * 2] + req.dt * d[l * 2], req.state_cap);
                states[l * 2 + 1] =
                    sanitise_state(states[l * 2 + 1] + req.dt * d[l * 2 + 1], req.state_cap);
            }
        }
        summaries.extend(reducers.into_iter().map(SweepReducer::finish));
        first += k as u32;
    }
    summaries
}

/// Render the `/sweep` response body.
pub fn render_sweep(req: &SweepRequest, days: usize, summaries: &[SweepSummary]) -> Vec<u8> {
    let mut o = String::from("{\"scenario\": ");
    push_escaped(&mut o, &req.scenario);
    o.push_str(", \"model\": ");
    push_escaped(&mut o, &req.model);
    o.push_str(&format!(
        ", \"variants\": {}, \"days\": {days}, \"threshold\": ",
        req.variants
    ));
    gmr_json::push_f64(&mut o, req.reduce.threshold);
    o.push_str(", \"summaries\": [");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&s.to_json());
    }
    o.push_str("]}\n");
    o.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::simulate_single;
    use crate::registry::ModelRegistry;
    use crate::ModelArtifact;
    use gmr_scenario::reduce_series;

    fn demo_spec(name: &str) -> String {
        format!(
            r#"{{"schema": "gmr-scenario/v1", "name": "{name}", "seed": 11,
                 "topology": {{"kind": "braided", "stations": 16}},
                 "years": 1,
                 "climate": [{{"kind": "heatwave", "start_day": 180, "length": 20, "amp": 3}},
                             {{"kind": "drought", "scale": 0.75}}],
                 "spread": 0.3}}"#
        )
    }

    #[test]
    fn store_admits_idempotently_and_refuses_mutation() {
        let store = ScenarioStore::new();
        let (a, fresh) = store.admit(&demo_spec("s")).unwrap();
        assert!(fresh);
        let (b, fresh) = store.admit(&demo_spec("s")).unwrap();
        assert!(!fresh, "identical spec re-admits as a no-op");
        assert!(Arc::ptr_eq(&a, &b));
        // Same name, different seed: refused, stored world unchanged.
        let err = store
            .admit(&demo_spec("s").replace("\"seed\": 11", "\"seed\": 12"))
            .unwrap_err();
        assert_eq!(err.0, 409);
        assert_eq!(store.len(), 1);
        // Garbage spec: 400.
        assert_eq!(store.admit("{}").unwrap_err().0, 400);
    }

    #[test]
    fn scn_refs_resolve_to_variant_tables() {
        let store = ScenarioStore::new();
        store.admit(&demo_spec("w")).unwrap();
        let scn = store.get("w").unwrap();
        assert_eq!(store.ref_len("scn:w/0"), Some(scn.days));
        assert_eq!(store.resolve_ref("scn:w/0").unwrap(), scn.variant_rows(0));
        assert_eq!(store.resolve_ref("scn:w/7").unwrap(), scn.variant_rows(7));
        assert!(store.resolve_ref("scn:w").is_none(), "variant is required");
        assert!(store.resolve_ref("scn:nope/0").is_none());
        assert!(store.resolve_ref("w/0").is_none(), "prefix is required");
        assert!(store.resolve_ref("scn:w/x").is_none());
    }

    #[test]
    fn sweep_summaries_match_solo_trajectories_bitwise() {
        let store = ScenarioStore::new();
        store.admit(&demo_spec("v")).unwrap();
        let scn = store.get("v").unwrap();
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        let sys = reg.touch("table5-manual").unwrap().system.clone();
        // An awkward width: crosses one full chunk plus a ragged tail
        // (and the SIMD padding branch when the kernels are live).
        let req = SweepRequest {
            scenario: "v".into(),
            model: "table5-manual".into(),
            variants: LANES as u32 + 3,
            reduce: ReduceSpec { threshold: 20.0 },
            init: (8.0, 1.2),
            dt: 1.0,
            state_cap: 1e9,
        };
        let summaries = run_sweep(&scn, &sys, &req);
        assert_eq!(summaries.len(), req.variants as usize);
        for (i, got) in summaries.iter().enumerate() {
            let rows = scn.variant_rows(i as u32);
            let (bphy, bzoo) = simulate_single(&sys, &rows, req.init, req.dt, req.state_cap);
            let want = reduce_series(i as u32, &req.reduce, &bphy, &bzoo);
            assert_eq!(got, &want, "variant {i} summary diverged from solo run");
        }
        // Variants genuinely differ (the jitter does something). Peak can
        // legitimately tie across variants (e.g. a day-0 peak at the
        // shared init), so compare whole summaries.
        assert!(
            summaries.windows(2).any(|w| w[0] != w[1]),
            "all variants identical — jitter is broken"
        );
    }

    #[test]
    fn parse_sweep_request_validates() {
        let ok = gmr_json::parse(
            r#"{"scenario": "s", "model": "m", "variants": 256,
                "reduce": {"threshold": 30}, "init": [4, 1], "dt": 1}"#,
        )
        .unwrap();
        let req = parse_sweep_request(&ok).unwrap();
        assert_eq!(req.variants, 256);
        assert_eq!(req.reduce.threshold, 30.0);
        assert_eq!(req.init, (4.0, 1.0));
        for bad in [
            r#"{"model": "m", "variants": 1}"#,
            r#"{"scenario": "s", "variants": 1}"#,
            r#"{"scenario": "s", "model": "m"}"#,
            r#"{"scenario": "s", "model": "m", "variants": 0}"#,
            r#"{"scenario": "s", "model": "m", "variants": 99999999}"#,
            r#"{"scenario": "s", "model": "m", "variants": 1, "varaints": 2}"#,
            r#"{"scenario": "s", "model": "m", "variants": 1, "reduce": {"treshold": 1}}"#,
            r#"{"scenario": "s", "model": "m", "variants": 1, "dt": -1}"#,
        ] {
            let v = gmr_json::parse(bad).unwrap();
            assert!(parse_sweep_request(&v).is_err(), "accepted {bad}");
        }
    }
}
