//! A deliberately small HTTP/1.1 implementation on `std::io`.
//!
//! The build environment has no crates.io access, so the server speaks
//! the protocol subset its endpoints need and nothing more: request-line,
//! headers and `Content-Length`-framed bodies in; status-line, headers
//! and `Content-Length`-framed bodies out; `keep-alive` connection reuse.
//! No chunked transfer encoding, no continuation lines, no pipelining
//! guarantees beyond strict request/response alternation — clients that
//! need more are out of scope for a model-inference sidecar.
//!
//! Size limits are enforced while *reading* (a client cannot balloon
//! memory by declaring a huge `Content-Length`), and every malformed
//! input is an [`HttpError::Malformed`] the caller maps to `400` rather
//! than a dropped connection.

use std::io::{self, BufRead, Write};

/// Maximum accepted header block (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, bytes. Generous enough for a full
/// multi-year inline forcing table (~3000 rows × 10 floats ≈ 600 KB).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (including read timeouts, surfaced as the
    /// underlying `WouldBlock`/`TimedOut` error).
    Io(io::Error),
    /// Syntactically invalid or over-limit request; the message is safe to
    /// echo to the client in a `400` body.
    Malformed(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercased as received (`GET`, `POST`…).
    pub method: String,
    /// Request target path (query string retained verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Read one request from a buffered stream. `Ok(None)` means the client
/// closed the connection cleanly between requests (normal keep-alive
/// termination).
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut head = 0usize;
    let mut line = String::new();
    // Request line; tolerate one leading CRLF (robust clients send them).
    let request_line = loop {
        line.clear();
        let n = stream.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        head += n;
        if head > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        let t = line.trim_end_matches(['\r', '\n']);
        if !t.is_empty() {
            break t.to_string();
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
        _ => return Err(HttpError::Malformed("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        let n = stream.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers"));
        }
        head += n;
        if head > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        let t = line.trim_end_matches(['\r', '\n']);
        if t.is_empty() {
            break;
        }
        let Some((name, value)) = t.split_once(':') else {
            return Err(HttpError::Malformed("malformed header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::Malformed("body too large"));
            }
        }
        if name == "transfer-encoding" {
            return Err(HttpError::Malformed("chunked bodies not supported"));
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(stream, &mut body)?;
    }
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one `Content-Length`-framed response. `close` adds
/// `Connection: close`; otherwise the connection stays reusable.
pub fn write_response(
    stream: &mut impl Write,
    code: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_retry(stream, code, content_type, body, close, None)
}

/// [`write_response`] with an explicit `Retry-After` value: the gateway
/// uses this to propagate a backend's retry hint verbatim instead of
/// substituting its own. `None` keeps the default (1 s on any 429).
pub fn write_response_retry(
    stream: &mut impl Write,
    code: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    retry_after: Option<u64>,
) -> io::Result<()> {
    write_response_traced(stream, code, content_type, body, close, retry_after, None)
}

/// [`write_response_retry`] with an optional `X-Gmr-Trace` echo: the
/// server and gateway return the trace context they served under, so a
/// client can grep the journals for its own request.
pub fn write_response_traced(
    stream: &mut impl Write,
    code: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    retry_after: Option<u64>,
    trace: Option<&str>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_text(code),
        body.len()
    );
    match (retry_after, code) {
        (Some(secs), _) => head.push_str(&format!("Retry-After: {secs}\r\n")),
        // Shed load explicitly: tell well-behaved clients when to retry.
        (None, 429) => head.push_str("Retry-After: 1\r\n"),
        _ => {}
    }
    if let Some(t) = trace {
        head.push_str(&format!("{}: {t}\r\n", crate::trace::TRACE_HEADER));
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a JSON error body `{"error": "..."}`.
pub fn error_body(msg: &str) -> Vec<u8> {
    let mut o = String::from("{\"error\": ");
    gmr_json::push_escaped(&mut o, msg);
    o.push_str("}\n");
    o.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let raw = b"POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
        // Second request on the same connection.
        let req2 = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req2.method, "GET");
        assert_eq!(req2.path, "/healthz");
        assert!(req2.body.is_empty());
        // Clean EOF afterwards.
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let mut r = BufReader::new(&b"GARBAGE\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(HttpError::Malformed("malformed request line"))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let mut r = BufReader::new(huge.as_bytes());
        assert!(matches!(read_request(&mut r), Err(HttpError::Malformed(_))));
        let mut r = BufReader::new(&b"GET / HTTP/2\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(HttpError::Malformed("unsupported HTTP version"))
        ));
    }

    #[test]
    fn traced_response_echoes_the_header() {
        let mut out = Vec::new();
        let id = "00000000000000aa-00000000000000bb";
        write_response_traced(
            &mut out,
            200,
            "application/json",
            b"{}",
            false,
            None,
            Some(id),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(&format!("X-Gmr-Trace: {id}\r\n")), "{text}");
    }

    #[test]
    fn response_is_parseable_and_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
