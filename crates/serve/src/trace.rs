//! Trace-context minting and the `X-Gmr-Trace` header codec.
//!
//! Header format: `X-Gmr-Trace: <trace>-<span>`, two 16-digit lowercase
//! hex ids. The trace id is shared by every hop of one client request;
//! each process mints a fresh span id for its own hop and records the
//! upstream hop's span as `parent` in its `access` journal event. The
//! gateway mints the trace for requests that arrive without the header;
//! a backend called directly does the same, so every served request is
//! traceable whether or not it crossed the gateway. Responses echo the
//! header back with the responder's span id, so a client (`gmr-serve
//! request -v`) can grep the printed id straight out of any journal.
//!
//! Minting reads only the wall clock and a process-local counter — never
//! simulation state or any RNG the engine owns — so trajectories are
//! bit-identical with tracing on or off (obsv design constraint #1).

use gmr_obsv::journal::{hex_id, parse_hex_id};
use std::sync::atomic::{AtomicU64, Ordering};

/// Trace-context header name (sent canonical, matched lowercased).
pub const TRACE_HEADER: &str = "X-Gmr-Trace";

/// One hop's trace context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id shared by every hop of one client request.
    pub trace: u64,
    /// This hop's span id.
    pub span: u64,
    /// The upstream hop's span id (0 = this hop minted the trace).
    pub parent: u64,
}

impl TraceCtx {
    /// Mint a root context (no upstream hop).
    pub fn mint() -> TraceCtx {
        TraceCtx {
            trace: mint_id(),
            span: mint_id(),
            parent: 0,
        }
    }

    /// Adopt a propagated header value, minting this hop's span id and
    /// recording the upstream span as parent. `None` on any malformed
    /// value — the caller falls back to [`TraceCtx::mint`].
    pub fn adopt(value: &str) -> Option<TraceCtx> {
        let (t, s) = value.split_once('-')?;
        Some(TraceCtx {
            trace: parse_hex_id(t)?,
            span: mint_id(),
            parent: parse_hex_id(s)?,
        })
    }

    /// Context for an incoming request: adopt a well-formed header,
    /// mint a root otherwise.
    pub fn from_header(value: Option<&str>) -> TraceCtx {
        value
            .and_then(TraceCtx::adopt)
            .unwrap_or_else(TraceCtx::mint)
    }

    /// The header value carrying this hop's context downstream (and
    /// echoed to the client on the response).
    pub fn header_value(&self) -> String {
        format!("{}-{}", hex_id(self.trace), hex_id(self.span))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A process-unique non-zero 64-bit id: wall-clock nanos mixed with the
/// pid and a monotone counter through splitmix64. Not cryptographic —
/// collision odds across one cluster's lifetime are what matter.
fn mint_id() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = NEXT.fetch_add(1, Ordering::Relaxed);
    let pid = (std::process::id() as u64).rotate_left(32);
    splitmix64(t ^ pid ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let ctx = TraceCtx::mint();
        assert_eq!(ctx.parent, 0);
        let hop = TraceCtx::adopt(&ctx.header_value()).expect("well-formed header");
        assert_eq!(hop.trace, ctx.trace, "trace id survives the hop");
        assert_eq!(hop.parent, ctx.span, "upstream span becomes parent");
        assert_ne!(hop.span, ctx.span, "each hop mints its own span");
    }

    #[test]
    fn malformed_headers_fall_back_to_minting() {
        for bad in ["", "abc", "-", "0123/0456", "0123456789abcdef-shrt"] {
            assert_eq!(TraceCtx::adopt(bad), None, "{bad:?}");
            let minted = TraceCtx::from_header(Some(bad));
            assert_eq!(minted.parent, 0);
            assert_ne!(minted.trace, 0);
        }
    }

    #[test]
    fn minted_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = mint_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "collision in 1000 mints");
        }
    }
}
