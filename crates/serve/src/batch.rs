//! Simulation execution and request batching.
//!
//! All `/simulate` work funnels through one bounded queue into a single
//! batcher thread. The batcher drains the queue inside a short coalescing
//! window and groups jobs that simulate the *same model over the same
//! forcing table*; each group runs as one multi-trajectory register-VM
//! sweep ([`gmr_expr::MultiSession`]): the state-independent prefix is
//! computed once per forcing row and shared by every request in the
//! group, and the sequential core dispatches each instruction once for up
//! to [`LANES`] trajectories. On the single-core machines this project
//! targets, that work-sharing — not thread parallelism — is where batched
//! throughput comes from.
//!
//! Batching never changes answers: per-lane arithmetic is the same scalar
//! protected-op sequence a solo session runs (pinned by the VM's
//! bit-equality tests), and the Euler loop here mirrors
//! `RiverProblem::integrate` exactly (pre-step visit, then
//! [`sanitise_state`] on the advanced state).
//!
//! The batcher resolves each group's compiled system through the
//! registry's hot tier at flush time ([`ModelRegistry::touch`]), so LRU
//! order tracks execution order, reuses the hot record's cached
//! [`PrefixTable`] per forcing table, and — when the AVX2 kernels are
//! live — pads wide sweeps to full [`LANES`] stripes so the lock-step
//! core runs the vector kernels instead of per-lane scalar loops
//! (padded lanes replicate a real trajectory and are dropped; per-lane
//! results are unchanged).

use crate::registry::{ModelRegistry, ServableModel};
use gmr_bio::{sanitise_state, simulate_network_compiled, NetworkSimOptions, StationSeries};
use gmr_expr::{CompiledSystem, PrefixTable, LANES};
use gmr_hydro::NUM_VARS;
use gmr_json::Value;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a request's forcing rows come from.
#[derive(Debug, Clone, PartialEq)]
pub enum ForcingSource {
    /// Rows shipped in the request body.
    Inline(Vec<[f64; NUM_VARS]>),
    /// A server-hosted table by name (shareable across a batch).
    Ref(String),
}

/// How much of the trajectory the response carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full `bphy`/`bzoo` day series.
    Series,
    /// Final state plus mean/max phytoplankton — constant-size response.
    Summary,
}

/// A parsed, validated `/simulate` request body.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Model name in the registry.
    pub model: String,
    /// Forcing rows.
    pub source: ForcingSource,
    /// Days to simulate (`None` = the whole table).
    pub days: Option<usize>,
    /// Initial `(B_Phy, B_Zoo)`.
    pub init: (f64, f64),
    /// Euler step.
    pub dt: f64,
    /// State cap.
    pub state_cap: f64,
    /// Response mode.
    pub mode: Mode,
    /// Run the full station network (requires a network model and a
    /// network table ref).
    pub network: bool,
    /// For network runs: respond with this station's series only.
    pub station: Option<String>,
}

/// Parse and validate a `/simulate` body. Error strings are safe for a
/// `400` response. Non-finite inline forcings are rejected *here*, before
/// the job can reach the simulator — a NaN row must produce a 4xx, never
/// a poisoned simulation.
pub fn parse_sim_request(v: &Value) -> Result<SimRequest, String> {
    let model = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or("missing \"model\"")?
        .to_string();
    let source = match (v.get("forcings"), v.get("forcings_ref")) {
        (Some(_), Some(_)) => return Err("give \"forcings\" or \"forcings_ref\", not both".into()),
        (None, None) => return Err("missing \"forcings\" or \"forcings_ref\"".into()),
        (None, Some(r)) => ForcingSource::Ref(
            r.as_str()
                .ok_or("\"forcings_ref\" must be a string")?
                .to_string(),
        ),
        (Some(rows), None) => {
            let rows = rows.as_arr().ok_or("\"forcings\" must be an array")?;
            if rows.is_empty() {
                return Err("\"forcings\" is empty".into());
            }
            let mut table = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let row = row
                    .as_arr()
                    .ok_or_else(|| format!("forcing row {i} is not an array"))?;
                if row.len() != NUM_VARS {
                    return Err(format!(
                        "forcing row {i} has {} values, expected {NUM_VARS}",
                        row.len()
                    ));
                }
                let mut out = [0.0; NUM_VARS];
                for (j, cell) in row.iter().enumerate() {
                    // `as_f64` is None for JSON null — which is also how a
                    // NaN round-trips through strict JSON. Reject both.
                    let x = cell
                        .as_f64()
                        .ok_or_else(|| format!("forcing row {i} col {j} is not a number"))?;
                    if !x.is_finite() {
                        return Err(format!("forcing row {i} col {j} is not finite"));
                    }
                    out[j] = x;
                }
                table.push(out);
            }
            ForcingSource::Inline(table)
        }
    };
    let days = match v.get("days") {
        None => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or("\"days\" must be a non-negative integer")? as usize,
        ),
    };
    if days == Some(0) {
        return Err("\"days\" must be at least 1".into());
    }
    let init = match v.get("init") {
        None => (8.0, 1.2),
        Some(p) => {
            let arr = p.as_arr().ok_or("\"init\" must be [bphy, bzoo]")?;
            if arr.len() != 2 {
                return Err("\"init\" must be [bphy, bzoo]".into());
            }
            let a = arr[0].as_f64().ok_or("\"init\" values must be numbers")?;
            let b = arr[1].as_f64().ok_or("\"init\" values must be numbers")?;
            if !a.is_finite() || !b.is_finite() {
                return Err("\"init\" values must be finite".into());
            }
            (a, b)
        }
    };
    let f64_field = |key: &str, default: f64| -> Result<f64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(x) => {
                let x = x
                    .as_f64()
                    .ok_or_else(|| format!("{key:?} must be a number"))?;
                if !x.is_finite() || x <= 0.0 {
                    return Err(format!("{key:?} must be positive and finite"));
                }
                Ok(x)
            }
        }
    };
    let dt = f64_field("dt", 1.0)?;
    let state_cap = f64_field("state_cap", 1e9)?;
    let mode = match v.get("mode").and_then(Value::as_str) {
        None | Some("series") => Mode::Series,
        Some("summary") => Mode::Summary,
        Some(other) => return Err(format!("unknown mode {other:?}")),
    };
    let network = matches!(v.get("network"), Some(Value::Bool(true)));
    let station = v.get("station").and_then(Value::as_str).map(str::to_string);
    if station.is_some() && !network {
        return Err("\"station\" only applies to network runs".into());
    }
    if network && !matches!(source, ForcingSource::Ref(_)) {
        return Err("network runs need \"forcings_ref\" (a hosted network table)".into());
    }
    Ok(SimRequest {
        model,
        source,
        days,
        init,
        dt,
        state_cap,
        mode,
        network,
        station,
    })
}

/// One station's hosted series (network tables).
#[derive(Debug, Clone)]
pub struct NetStation {
    /// Forcing rows by absolute day.
    pub vars: Vec<[f64; NUM_VARS]>,
    /// Flow by absolute day.
    pub flow: Vec<f64>,
}

/// A server-hosted forcing table.
#[derive(Debug, Clone)]
pub enum HostedTable {
    /// One station's forcing rows — single-trajectory simulations.
    Single(Vec<[f64; NUM_VARS]>),
    /// Per-station series aligned with a network model's topology order.
    Network(Vec<NetStation>),
}

/// Named hosted tables, fixed at server start — plus, optionally, the
/// scenario store, whose `scn:<name>/<variant>` virtual tables resolve
/// anywhere a `forcings_ref` does. Scenario admission is append-only and
/// name-immutable (see [`crate::scenario::ScenarioStore::admit`]), so a
/// resolved ref always means the same rows — the invariant the registry's
/// by-name prefix caches and the gateway's by-ref routing both lean on.
#[derive(Debug, Default)]
pub struct Tables {
    map: BTreeMap<String, HostedTable>,
    scenarios: Option<Arc<crate::scenario::ScenarioStore>>,
}

impl Tables {
    /// Empty table set.
    pub fn new() -> Tables {
        Tables::default()
    }

    /// Host a table under `name` (last insert wins).
    pub fn insert(&mut self, name: impl Into<String>, table: HostedTable) {
        self.map.insert(name.into(), table);
    }

    /// The table under `name`.
    pub fn get(&self, name: &str) -> Option<&HostedTable> {
        self.map.get(name)
    }

    /// Attach the scenario store that backs `scn:` forcing refs.
    pub fn attach_scenarios(&mut self, store: Arc<crate::scenario::ScenarioStore>) {
        self.scenarios = Some(store);
    }

    /// The attached scenario store, if any.
    pub fn scenarios(&self) -> Option<&Arc<crate::scenario::ScenarioStore>> {
        self.scenarios.as_ref()
    }

    /// Row count behind a `scn:` forcing ref, without materializing it.
    fn scenario_ref_len(&self, name: &str) -> Option<usize> {
        self.scenarios.as_ref()?.ref_len(name)
    }

    /// Materialize the rows behind a `scn:` forcing ref.
    fn scenario_rows(&self, name: &str) -> Option<Vec<[f64; NUM_VARS]>> {
        self.scenarios.as_ref()?.resolve_ref(name)
    }

    /// Hosted table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }
}

/// A finished simulation.
#[derive(Debug, Clone)]
pub enum SimOutput {
    /// Single-trajectory run.
    Single {
        /// Pre-step phytoplankton per day (the `simulate_compiled`
        /// convention).
        bphy: Vec<f64>,
        /// Pre-step zooplankton per day.
        bzoo: Vec<f64>,
    },
    /// Network run: series per station, topology order.
    Network {
        /// Station names, index-aligned with the series.
        stations: Vec<String>,
        /// Post-step phytoplankton per station per day.
        bphy: Vec<Vec<f64>>,
        /// Post-step zooplankton per station per day.
        bzoo: Vec<Vec<f64>>,
    },
}

/// What the batcher sends back for one job.
#[derive(Debug)]
pub struct SimOutcome {
    /// The simulation, or `(http_status, message)`.
    pub result: Result<SimOutput, (u16, String)>,
    /// Jobs coalesced into the sweep that served this one (1 = solo).
    pub batch: usize,
    /// Microseconds the job waited between enqueue and execution.
    pub queue_us: u64,
    /// Microseconds of simulation (the job's sweep or solo run).
    pub sim_us: u64,
}

/// One enqueued `/simulate` job.
pub struct SimJob {
    /// The admitted model (registry `Arc`).
    pub model: Arc<ServableModel>,
    /// The validated request.
    pub request: SimRequest,
    /// The request's trace context; the batcher stamps each job's sweep
    /// span with `ctx.trace` so `gmr-trace stitch` can fan coalesced
    /// batch members into their shared sweep.
    pub ctx: crate::trace::TraceCtx,
    /// When the worker enqueued the job (queue-wait attribution).
    pub enqueued: Instant,
    /// Where the outcome goes (the worker blocks on the paired receiver).
    pub reply: Sender<SimOutcome>,
}

/// Batcher tuning.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long to hold the first job while coalescing more.
    pub window: Duration,
    /// Upper bound on jobs drained per flush (grouping still caps each
    /// sweep at [`LANES`] trajectories).
    pub max_batch: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            window: Duration::from_millis(2),
            max_batch: 256,
        }
    }
}

/// Single-trajectory forward Euler over `rows`, identical to
/// `RiverProblem::integrate`: day `t` records the *pre-step* state, steps
/// the compiled system, then sanitises. This is both the solo execution
/// path and the bit-identity reference the batched path is tested
/// against.
pub fn simulate_single(
    sys: &CompiledSystem,
    rows: &[[f64; NUM_VARS]],
    init: (f64, f64),
    dt: f64,
    cap: f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut session = sys.session(rows);
    let (mut p, mut z) = init;
    let mut bphy = Vec::with_capacity(rows.len());
    let mut bzoo = Vec::with_capacity(rows.len());
    let mut d = [0.0f64; 2];
    for t in 0..rows.len() {
        bphy.push(p);
        bzoo.push(z);
        session.step(t, &[p, z], &mut d);
        p = sanitise_state(p + dt * d[0], cap);
        z = sanitise_state(z + dt * d[1], cap);
    }
    (bphy, bzoo)
}

/// Pad a lock-step sweep to full [`LANES`] stripes once it is at least
/// this wide (and the vector kernels are live): from half-occupancy up,
/// one full-stripe vector dispatch beats `k` scalar per-lane loops.
pub(crate) const PAD_MIN: usize = LANES / 2;

/// `k = inits.len()` trajectories over one shared forcing table in a
/// single lock-step sweep (`k <= LANES`). Per-trajectory results are
/// bit-identical to [`simulate_single`].
pub fn simulate_many(
    sys: &CompiledSystem,
    rows: &[[f64; NUM_VARS]],
    inits: &[(f64, f64)],
    dt: f64,
    cap: f64,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    simulate_lockstep(sys, rows, inits, dt, cap, None)
}

/// [`simulate_many`] reading prefix values from a cached [`PrefixTable`]
/// (swept over the full hosted table; `rows` may be any prefix of it)
/// instead of re-sweeping them. Results are bit-identical.
pub fn simulate_many_with_prefix(
    sys: &CompiledSystem,
    rows: &[[f64; NUM_VARS]],
    inits: &[(f64, f64)],
    dt: f64,
    cap: f64,
    prefix: &PrefixTable,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    simulate_lockstep(sys, rows, inits, dt, cap, Some(prefix))
}

fn simulate_lockstep(
    sys: &CompiledSystem,
    rows: &[[f64; NUM_VARS]],
    inits: &[(f64, f64)],
    dt: f64,
    cap: f64,
    prefix: Option<&PrefixTable>,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let k = inits.len();
    assert!((1..=LANES).contains(&k));
    // With the vector kernels live, a wide-but-ragged group is padded to
    // a full stripe with copies of the first trajectory: the lock-step
    // core then takes the `__m256d` dispatch path instead of `k` scalar
    // per-lane iterations. Lanes are arithmetically independent, so the
    // real lanes' bits are unchanged; the padded ones are dropped.
    let k_run = if gmr_expr::simd::active() && (PAD_MIN..LANES).contains(&k) {
        LANES
    } else {
        k
    };
    let mut multi = match prefix {
        Some(p) => sys.multi_session_with_prefix(rows, k_run, p),
        None => sys.multi_session(rows, k_run),
    };
    let mut states: Vec<f64> = inits.iter().flat_map(|&(p, z)| [p, z]).collect();
    for _ in k..k_run {
        states.extend([inits[0].0, inits[0].1]);
    }
    let mut out: Vec<(Vec<f64>, Vec<f64>)> = inits
        .iter()
        .map(|_| {
            (
                Vec::with_capacity(rows.len()),
                Vec::with_capacity(rows.len()),
            )
        })
        .collect();
    let mut d = vec![0.0f64; k_run * 2];
    for t in 0..rows.len() {
        for l in 0..k {
            out[l].0.push(states[l * 2]);
            out[l].1.push(states[l * 2 + 1]);
        }
        multi.step(t, &states, &mut d);
        for l in 0..k_run {
            states[l * 2] = sanitise_state(states[l * 2] + dt * d[l * 2], cap);
            states[l * 2 + 1] = sanitise_state(states[l * 2 + 1] + dt * d[l * 2 + 1], cap);
        }
    }
    out
}

/// Run one job that cannot share work (inline forcings or network mode).
fn run_solo(
    job: &SimJob,
    tables: &Tables,
    sys: &CompiledSystem,
) -> Result<SimOutput, (u16, String)> {
    let req = &job.request;
    match &req.source {
        ForcingSource::Inline(rows) => {
            let days = req.days.unwrap_or(rows.len());
            if days > rows.len() {
                return Err((400, format!("days {days} > {} forcing rows", rows.len())));
            }
            let (bphy, bzoo) = simulate_single(sys, &rows[..days], req.init, req.dt, req.state_cap);
            Ok(SimOutput::Single { bphy, bzoo })
        }
        ForcingSource::Ref(name) => {
            match tables.get(name) {
                Some(HostedTable::Single(rows)) => {
                    let days = req.days.unwrap_or(rows.len());
                    if days > rows.len() {
                        return Err((400, format!("days {days} > {} table rows", rows.len())));
                    }
                    let (bphy, bzoo) =
                        simulate_single(sys, &rows[..days], req.init, req.dt, req.state_cap);
                    Ok(SimOutput::Single { bphy, bzoo })
                }
                Some(HostedTable::Network(stations)) => run_network(job, stations, sys),
                // Not a hosted table: maybe a scenario-variant virtual
                // table (`scn:<name>/<variant>`), materialized on demand.
                None => {
                    let rows = tables
                        .scenario_rows(name)
                        .ok_or_else(|| (404, format!("no hosted table {name:?}")))?;
                    let days = req.days.unwrap_or(rows.len());
                    if days > rows.len() {
                        return Err((400, format!("days {days} > {} table rows", rows.len())));
                    }
                    let (bphy, bzoo) =
                        simulate_single(sys, &rows[..days], req.init, req.dt, req.state_cap);
                    Ok(SimOutput::Single { bphy, bzoo })
                }
            }
        }
    }
}

/// Run a full-network simulation job.
fn run_network(
    job: &SimJob,
    stations: &[NetStation],
    sys: &CompiledSystem,
) -> Result<SimOutput, (u16, String)> {
    let req = &job.request;
    let net = job
        .model
        .artifact
        .topology
        .as_ref()
        .ok_or_else(|| (400, format!("model {:?} has no topology", req.model)))?;
    if stations.len() != net.len() {
        return Err((
            400,
            format!(
                "table has {} stations, model topology has {}",
                stations.len(),
                net.len()
            ),
        ));
    }
    let len = stations
        .iter()
        .map(|s| s.vars.len().min(s.flow.len()))
        .min()
        .unwrap_or(0);
    let days = req.days.unwrap_or(len);
    if days > len {
        return Err((400, format!("days {days} > {len} table rows")));
    }
    if let Some(name) = &req.station {
        if net.by_name(name).is_none() {
            return Err((404, format!("no station {name:?} in topology")));
        }
    }
    let series: Vec<StationSeries<'_>> = stations
        .iter()
        .map(|s| StationSeries {
            vars: &s.vars,
            flow: &s.flow,
        })
        .collect();
    let opts = NetworkSimOptions {
        init: req.init,
        dt: req.dt,
        state_cap: req.state_cap,
    };
    let res = simulate_network_compiled(net, &series, 0, days, sys, opts);
    let mut names = Vec::new();
    let mut bphy = Vec::new();
    let mut bzoo = Vec::new();
    for (sid, st) in net.stations() {
        if let Some(want) = &req.station {
            if &st.name != want {
                continue;
            }
        }
        names.push(st.name.clone());
        bphy.push(res.bphy[sid.0].clone());
        bzoo.push(res.bzoo[sid.0].clone());
    }
    Ok(SimOutput::Network {
        stations: names,
        bphy,
        bzoo,
    })
}

/// Key under which jobs may share one multi-trajectory sweep: same model,
/// same hosted single table, same window and integrator constants. Floats
/// key by bit pattern.
type GroupKey = (String, String, usize, u64, u64);

fn group_key(job: &SimJob, tables: &Tables) -> Option<(GroupKey, usize)> {
    let req = &job.request;
    if req.network {
        return None;
    }
    let ForcingSource::Ref(name) = &req.source else {
        return None;
    };
    // Hosted single tables and scenario-variant refs both group; their
    // lengths are known without materializing anything.
    let avail = match tables.get(name) {
        Some(HostedTable::Single(rows)) => rows.len(),
        Some(HostedTable::Network(_)) => return None,
        None => tables.scenario_ref_len(name)?,
    };
    let days = req.days.unwrap_or(avail);
    if days > avail {
        return None; // fall through to solo path, which reports the 400
    }
    Some((
        (
            req.model.clone(),
            name.clone(),
            days,
            req.dt.to_bits(),
            req.state_cap.to_bits(),
        ),
        days,
    ))
}

/// Flush one drained batch: group shareable jobs, sweep each group, run
/// the rest solo. Every job gets exactly one reply. Compiled systems are
/// resolved through the registry's hot tier here — one touch per group —
/// and each group's sweep reads the hot record's cached prefix table.
fn flush(jobs: Vec<SimJob>, tables: &Tables, registry: &ModelRegistry) {
    let _sp = gmr_obsv::span!("serve.flush", jobs.len() as u64);
    let mut groups: BTreeMap<GroupKey, Vec<(SimJob, usize)>> = BTreeMap::new();
    let mut solo = Vec::new();
    for job in jobs {
        match group_key(&job, tables) {
            Some((key, days)) => groups.entry(key).or_default().push((job, days)),
            None => solo.push(job),
        }
    }
    for job in solo {
        let queue_us = job.enqueued.elapsed().as_micros() as u64;
        let start_us = gmr_obsv::now_us();
        let t0 = Instant::now();
        let result = match registry.touch(&job.request.model) {
            Some(hot) => run_solo(&job, tables, &hot.system),
            None => Err((404, format!("no model {:?}", job.request.model))),
        };
        let sim_us = t0.elapsed().as_micros() as u64;
        gmr_obsv::span::record_external(
            "serve.sweep.member",
            start_us,
            sim_us,
            Some(job.ctx.trace),
        );
        let _ = job.reply.send(SimOutcome {
            result,
            batch: 1,
            queue_us,
            sim_us,
        });
    }
    for (key, group) in groups {
        let n = group.len();
        let days = group[0].1;
        let Some(hot) = registry.touch(&key.0) else {
            for (job, _) in group {
                let result = Err((404, format!("no model {:?}", key.0)));
                let _ = job.reply.send(SimOutcome {
                    result,
                    batch: 1,
                    queue_us: job.enqueued.elapsed().as_micros() as u64,
                    sim_us: 0,
                });
            }
            continue;
        };
        // Hosted table, or a scenario-variant ref materialized once per
        // group (the whole group shares these rows).
        let scn_rows: Vec<[f64; NUM_VARS]>;
        let rows: &[[f64; NUM_VARS]] = match tables.get(&key.1) {
            Some(HostedTable::Single(rows)) => rows,
            _ => {
                // `group_key` resolved this ref and the scenario store is
                // append-only, so it still resolves here.
                scn_rows = match tables.scenario_rows(&key.1) {
                    Some(rows) => rows,
                    None => unreachable!("group_key checked the table"),
                };
                &scn_rows
            }
        };
        // The cached prefix covers the full hosted table; any request
        // horizon shares it. (Scenario refs are name-immutable, so caching
        // their prefixes by ref name is sound too.)
        let prefix = hot.prefix_for(&key.1, rows);
        let rows = &rows[..days];
        let dt = f64::from_bits(key.3);
        let cap = f64::from_bits(key.4);
        // Chunk the group by LANES; every chunk is one lock-step sweep.
        let mut it = group.into_iter();
        loop {
            let chunk: Vec<(SimJob, usize)> = it.by_ref().take(LANES).collect();
            if chunk.is_empty() {
                break;
            }
            let inits: Vec<(f64, f64)> = chunk.iter().map(|(j, _)| j.request.init).collect();
            let waited: Vec<u64> = chunk
                .iter()
                .map(|(j, _)| j.enqueued.elapsed().as_micros() as u64)
                .collect();
            let start_us = gmr_obsv::now_us();
            let t0 = Instant::now();
            let results = simulate_many_with_prefix(&hot.system, rows, &inits, dt, cap, &prefix);
            let sim_us = t0.elapsed().as_micros() as u64;
            // One member span per job, all covering the shared sweep
            // interval and each carrying its own trace id — this is what
            // lets `gmr-trace stitch` fan coalesced requests into the
            // sweep that served them.
            for (((job, _), (bphy, bzoo)), queue_us) in chunk.into_iter().zip(results).zip(waited) {
                gmr_obsv::span::record_external(
                    "serve.sweep.member",
                    start_us,
                    sim_us,
                    Some(job.ctx.trace),
                );
                let _ = job.reply.send(SimOutcome {
                    result: Ok(SimOutput::Single { bphy, bzoo }),
                    batch: n,
                    queue_us,
                    sim_us,
                });
            }
        }
    }
}

/// The batcher loop: block for one job, coalesce within the window, flush.
/// Exits when every sender is gone (server drain) — after flushing what it
/// already drained, so no accepted job is ever dropped.
pub fn run_batcher(
    rx: Receiver<SimJob>,
    tables: Arc<Tables>,
    registry: Arc<ModelRegistry>,
    cfg: BatcherConfig,
) {
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        // Natural batching first: whatever queued while the previous flush
        // ran coalesces for free, with zero added latency for a lone
        // sequential client.
        while jobs.len() < cfg.max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Then optionally linger for the configured window to catch
        // requests that are in flight but not yet enqueued.
        if !cfg.window.is_zero() {
            let deadline = Instant::now() + cfg.window;
            while jobs.len() < cfg.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        flush(jobs, &tables, &registry);
                        return;
                    }
                }
            }
        }
        flush(jobs, &tables, &registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelArtifact;
    use crate::registry::ModelRegistry;
    use gmr_bio::{RiverProblem, SimOptions};

    fn rows(n: usize) -> Vec<[f64; NUM_VARS]> {
        (0..n)
            .map(|t| {
                let mut r = [0.0; NUM_VARS];
                for (j, cell) in r.iter_mut().enumerate() {
                    *cell = ((t * 7 + j * 3) as f64 * 0.13).sin().abs() * 20.0 + 0.1;
                }
                r
            })
            .collect()
    }

    fn manual_registry() -> Arc<ModelRegistry> {
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::builtin_manual()).unwrap();
        Arc::new(reg)
    }

    #[test]
    fn simulate_single_matches_river_problem_bitwise() {
        let reg = manual_registry();
        let sys = reg.touch("table5-manual").unwrap().system.clone();
        let table = rows(150);
        let opts = SimOptions::default();
        let problem = RiverProblem {
            forcings: table.clone(),
            observed: vec![0.0; table.len()],
            opts,
        };
        let want = problem.simulate_compiled(&sys);
        let (bphy, _) = simulate_single(&sys, &table, opts.init, opts.dt, opts.state_cap);
        assert_eq!(bphy, want, "serve loop must mirror RiverProblem::integrate");
    }

    #[test]
    fn simulate_many_matches_single_bitwise() {
        let reg = manual_registry();
        let sys = reg.touch("table5-manual").unwrap().system.clone();
        let table = rows(90);
        let inits = [(8.0, 1.2), (2.5, 0.4), (15.0, 3.0), (0.05, 0.01)];
        let batched = simulate_many(&sys, &table, &inits, 1.0, 1e9);
        for (l, &init) in inits.iter().enumerate() {
            let solo = simulate_single(&sys, &table, init, 1.0, 1e9);
            assert_eq!(batched[l], solo, "lane {l} diverged");
        }
    }

    #[test]
    fn padded_sweep_matches_single_bitwise() {
        // 16 inits crosses PAD_MIN: with vector kernels live the sweep
        // runs padded to a full stripe; either way every real lane must
        // match its solo run bit-for-bit.
        let reg = manual_registry();
        let sys = reg.touch("table5-manual").unwrap().system.clone();
        let table = rows(70);
        let inits: Vec<(f64, f64)> = (0..PAD_MIN)
            .map(|i| (2.0 + i as f64 * 0.9, 0.3 + i as f64 * 0.11))
            .collect();
        let batched = simulate_many(&sys, &table, &inits, 1.0, 1e9);
        for (l, &init) in inits.iter().enumerate() {
            let solo = simulate_single(&sys, &table, init, 1.0, 1e9);
            assert_eq!(batched[l], solo, "lane {l} diverged");
        }
    }

    #[test]
    fn cached_prefix_sweep_matches_bitwise() {
        // The serving shape: prefix materialized over the full hosted
        // table, requests simulating a shorter horizon. Must be
        // bit-identical to the on-demand sweep over the sliced table.
        let reg = manual_registry();
        let hot = reg.touch("table5-manual").unwrap();
        let table = rows(100);
        let prefix = hot.prefix_for("t", &table);
        let inits = [(8.0, 1.2), (2.5, 0.4), (15.0, 3.0)];
        for days in [1, 33, 70, 100] {
            let head = &table[..days];
            let shared = simulate_many_with_prefix(&hot.system, head, &inits, 1.0, 1e9, &prefix);
            let on_demand = simulate_many(&hot.system, head, &inits, 1.0, 1e9);
            assert_eq!(shared, on_demand, "days={days}");
        }
    }

    #[test]
    fn batcher_coalesces_ref_jobs_and_answers_all() {
        let reg = manual_registry();
        let model = reg.get("table5-manual").unwrap();
        let sys = reg.touch("table5-manual").unwrap().system.clone();
        let table = rows(60);
        let mut tables = Tables::new();
        tables.insert("t", HostedTable::Single(table.clone()));
        let tables = Arc::new(tables);
        let (tx, rx) = std::sync::mpsc::sync_channel::<SimJob>(16);
        let t_tables = Arc::clone(&tables);
        let t_reg = Arc::clone(&reg);
        let batcher =
            std::thread::spawn(move || run_batcher(rx, t_tables, t_reg, BatcherConfig::default()));
        let inits = [(8.0, 1.2), (3.0, 0.5), (11.0, 2.0)];
        let mut rxs = Vec::new();
        for &init in &inits {
            let (reply, outcome_rx) = std::sync::mpsc::channel();
            tx.send(SimJob {
                model: Arc::clone(&model),
                request: SimRequest {
                    model: "table5-manual".into(),
                    source: ForcingSource::Ref("t".into()),
                    days: None,
                    init,
                    dt: 1.0,
                    state_cap: 1e9,
                    mode: Mode::Series,
                    network: false,
                    station: None,
                },
                ctx: crate::trace::TraceCtx::mint(),
                enqueued: Instant::now(),
                reply,
            })
            .unwrap();
            rxs.push((init, outcome_rx));
        }
        for (init, rx) in rxs {
            let outcome = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            let SimOutput::Single { bphy, bzoo } = outcome.result.unwrap() else {
                panic!("expected single output");
            };
            let (want_p, want_z) = simulate_single(&sys, &table, init, 1.0, 1e9);
            assert_eq!(bphy, want_p);
            assert_eq!(bzoo, want_z);
            assert!(outcome.batch >= 1);
        }
        drop(tx);
        batcher.join().unwrap();
    }

    #[test]
    fn parse_rejects_nan_and_malformed() {
        let ok = gmr_json::parse(
            r#"{"model": "m", "forcings": [[1,2,3,4,5,6,7,8,9,10]], "init": [1, 2]}"#,
        )
        .unwrap();
        assert!(parse_sim_request(&ok).is_ok());
        // Strict JSON has no NaN token; a null cell is the transport form
        // of a non-finite forcing and must be refused.
        let nan =
            gmr_json::parse(r#"{"model": "m", "forcings": [[1,2,3,4,null,6,7,8,9,10]]}"#).unwrap();
        assert!(parse_sim_request(&nan).is_err());
        let short = gmr_json::parse(r#"{"model": "m", "forcings": [[1,2,3]]}"#).unwrap();
        assert!(parse_sim_request(&short).unwrap_err().contains("expected"));
        let both = gmr_json::parse(
            r#"{"model": "m", "forcings": [[1,2,3,4,5,6,7,8,9,10]], "forcings_ref": "t"}"#,
        )
        .unwrap();
        assert!(parse_sim_request(&both).is_err());
        let neither = gmr_json::parse(r#"{"model": "m"}"#).unwrap();
        assert!(parse_sim_request(&neither).is_err());
    }
}
