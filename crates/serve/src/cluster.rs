//! Backend supervision for `gmr-serve cluster`.
//!
//! The supervisor spawns N backend `gmr-serve serve` processes (each on
//! an ephemeral port discovered through its `--port-file`), replicates
//! the artifact directory to all of them by forwarding the same
//! `--artifacts` flag, and keeps them alive: a health thread probes
//! `/healthz` on every backend, and a failed probe (or a reaped child)
//! triggers a kill + respawn while the restart budget lasts. Liveness and
//! addresses flow to the gateway through the shared [`BackendSlot`]s, so
//! routing reacts to restarts without any channel between the two.
//!
//! Shutdown is graceful end to end: each child gets SIGTERM (the
//! backend's own drain path — it finishes in-flight requests and writes
//! its journal) and is escalated to SIGKILL only after a drain timeout.

use crate::gateway::BackendSlot;
use gmr_obsv::journal::Event;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Backend count.
    pub backends: usize,
    /// The `gmr-serve` binary to spawn (normally `current_exe()`).
    pub exe: PathBuf,
    /// Extra arguments forwarded verbatim to every backend's `serve`
    /// command (`--artifacts DIR`, `--days N`, `--hot-models N`, …).
    pub backend_args: Vec<String>,
    /// Scratch directory for port files and backend journals.
    pub dir: PathBuf,
    /// Restarts allowed per backend before the slot is given up.
    pub restart_budget: u32,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Per-probe connect/read timeout.
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a live child is declared dead
    /// and restarted. A reaped child restarts immediately; the strike
    /// budget only buffers *slow* backends (a loaded box can hold a
    /// `/healthz` answer past one probe window without being dead).
    pub probe_strikes: u32,
    /// How long to wait for a spawned backend's port file.
    pub spawn_timeout: Duration,
    /// How long a SIGTERMed backend may drain before SIGKILL.
    pub drain_timeout: Duration,
}

impl ClusterConfig {
    /// Defaults for `n` backends of `exe`, scratch space under `dir`.
    pub fn new(n: usize, exe: PathBuf, dir: PathBuf) -> ClusterConfig {
        ClusterConfig {
            backends: n,
            exe,
            backend_args: Vec::new(),
            dir,
            restart_budget: 3,
            health_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            probe_strikes: 3,
            spawn_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

struct BackendProc {
    child: Option<Child>,
    restarts: u32,
    strikes: u32,
    gave_up: bool,
}

/// A running cluster of supervised backends.
pub struct Cluster {
    config: ClusterConfig,
    slots: Arc<Vec<BackendSlot>>,
    procs: Arc<Mutex<Vec<BackendProc>>>,
    stop: Arc<AtomicBool>,
    health: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Spawn every backend, wait for all of them to come up, start the
    /// health loop.
    pub fn start(config: ClusterConfig) -> io::Result<Cluster> {
        std::fs::create_dir_all(&config.dir)?;
        let slots: Arc<Vec<BackendSlot>> = Arc::new(
            (0..config.backends)
                .map(|_| BackendSlot::default())
                .collect(),
        );
        let mut procs = Vec::with_capacity(config.backends);
        for i in 0..config.backends {
            let (child, addr) = spawn_backend(&config, i)?;
            slots[i].set_addr(addr);
            gmr_obsv::emit(Event::Backend {
                idx: i as u32,
                addr: addr.to_string(),
                state: "up",
                restarts: 0,
            });
            procs.push(BackendProc {
                child: Some(child),
                restarts: 0,
                strikes: 0,
                gave_up: false,
            });
        }
        let procs = Arc::new(Mutex::new(procs));
        let stop = Arc::new(AtomicBool::new(false));
        let health = {
            let slots = Arc::clone(&slots);
            let procs = Arc::clone(&procs);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            thread::Builder::new()
                .name("cluster-health".into())
                .spawn(move || health_loop(&config, &slots, &procs, &stop))?
        };
        Ok(Cluster {
            config,
            slots,
            procs,
            stop,
            health: Some(health),
        })
    }

    /// The slots the gateway routes over.
    pub fn slots(&self) -> Arc<Vec<BackendSlot>> {
        Arc::clone(&self.slots)
    }

    /// Hard-kill one backend (tests exercise failover with this). The
    /// health loop will notice and respawn it.
    pub fn kill_backend(&self, idx: usize) {
        let mut procs = self.procs.lock().unwrap();
        if let Some(child) = procs[idx].child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        procs[idx].child = None;
    }

    /// Graceful shutdown: stop the health loop, SIGTERM every backend,
    /// escalate to SIGKILL after the drain timeout.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        let mut procs = self.procs.lock().unwrap();
        for (i, p) in procs.iter_mut().enumerate() {
            let Some(child) = p.child.as_mut() else {
                continue;
            };
            let pid = child.id();
            if !crate::sig::terminate_pid(pid) {
                let _ = child.kill();
            }
            let deadline = Instant::now() + self.config.drain_timeout;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
            self.slots[i].mark_down();
            gmr_obsv::emit(Event::Backend {
                idx: i as u32,
                addr: self.slots[i]
                    .addr_any()
                    .map(|a| a.to_string())
                    .unwrap_or_default(),
                state: "drained",
                restarts: p.restarts,
            });
        }
    }
}

/// Spawn backend `i` on an ephemeral port and wait for its port file.
fn spawn_backend(config: &ClusterConfig, i: usize) -> io::Result<(Child, SocketAddr)> {
    let port_file = config.dir.join(format!("backend-{i}.port"));
    let journal = config.dir.join(format!("backend-{i}.jsonl"));
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(&config.exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--journal")
        .arg(&journal)
        .args(&config.backend_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    let mut child = cmd.spawn()?;
    gmr_obsv::emit(Event::Backend {
        idx: i as u32,
        addr: String::new(),
        state: "spawned",
        restarts: 0,
    });
    match wait_port_file(&port_file, &mut child, config.spawn_timeout) {
        Ok(addr) => Ok((child, addr)),
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
    }
}

/// Poll for the atomically-renamed port file; bail early if the child
/// exits first.
fn wait_port_file(path: &Path, child: &mut Child, timeout: Duration) -> io::Result<SocketAddr> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return Ok(addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(io::Error::other(format!(
                "backend exited during startup: {status}"
            )));
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "backend did not write its port file",
            ));
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// One HTTP health probe with bounded timeouts (never blocks the loop).
fn probe_healthz(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = std::net::TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut stream = stream;
    if crate::server::write_request(&mut stream, "GET", "/healthz", b"", true).is_err() {
        return false;
    }
    matches!(
        crate::server::read_response(&mut io::BufReader::new(stream)),
        Ok((200, _))
    )
}

fn health_loop(
    config: &ClusterConfig,
    slots: &[BackendSlot],
    procs: &Mutex<Vec<BackendProc>>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        for i in 0..slots.len() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // A reaped child is definitely down; otherwise ask /healthz.
            let exited = {
                let mut procs = procs.lock().unwrap();
                if procs[i].gave_up {
                    continue;
                }
                match procs[i].child.as_mut() {
                    None => true,
                    Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                }
            };
            let healthy = !exited
                && matches!(slots[i].addr_any(), Some(addr) if probe_healthz(addr, config.probe_timeout));
            if healthy {
                procs.lock().unwrap()[i].strikes = 0;
                // Revive a slot the gateway marked down on a transient
                // transport error.
                if !slots[i].is_alive() {
                    slots[i].mark_up();
                }
                continue;
            }
            // A live child gets a strike budget: one slow probe on a
            // loaded box is not death. A reaped child restarts now.
            if !exited {
                let mut procs = procs.lock().unwrap();
                procs[i].strikes += 1;
                if procs[i].strikes < config.probe_strikes {
                    continue;
                }
            }
            slots[i].mark_down();
            restart_backend(config, slots, procs, i);
        }
        thread::sleep(config.health_interval);
    }
}

/// Kill whatever is left of backend `i` and respawn it, unless the
/// restart budget is spent.
fn restart_backend(
    config: &ClusterConfig,
    slots: &[BackendSlot],
    procs: &Mutex<Vec<BackendProc>>,
    i: usize,
) {
    let restarts = {
        let mut procs = procs.lock().unwrap();
        if let Some(child) = procs[i].child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        procs[i].child = None;
        if procs[i].restarts >= config.restart_budget {
            procs[i].gave_up = true;
            gmr_obsv::emit(Event::Backend {
                idx: i as u32,
                addr: String::new(),
                state: "gave-up",
                restarts: procs[i].restarts,
            });
            return;
        }
        procs[i].restarts += 1;
        procs[i].strikes = 0;
        procs[i].restarts
    };
    match spawn_backend(config, i) {
        Ok((child, addr)) => {
            procs.lock().unwrap()[i].child = Some(child);
            slots[i].set_addr(addr);
            gmr_obsv::emit(Event::Backend {
                idx: i as u32,
                addr: addr.to_string(),
                state: "restarted",
                restarts,
            });
        }
        Err(e) => {
            gmr_obsv::emit(Event::Note {
                name: "cluster.respawn_failed",
                msg: format!("backend {i}: {e}"),
            });
        }
    }
}
