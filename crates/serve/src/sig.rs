//! SIGTERM/SIGINT observation without a signal-handling crate.
//!
//! The workspace is air-gapped (no `libc`, no `signal-hook`), so the
//! handler is installed through a hand-declared binding to the C
//! `signal(2)` entry point. The handler itself only stores to a static
//! atomic — the one action that is async-signal-safe — and the server's
//! accept loop polls [`terminated`] to begin its graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// C library `signal(2)`. Handler addresses are passed as `usize`
        /// so we need no `sighandler_t` typedef.
        fn signal(signum: i32, handler: usize) -> usize;
        /// C library `kill(2)` — the supervisor's graceful-drain path
        /// (`Child::kill` would SIGKILL, skipping the backend's drain).
        fn kill(pid: i32, sig: i32) -> i32;
    }

    pub fn terminate_pid(pid: u32) -> bool {
        // SAFETY: FFI into the C library's `kill(2)`; the declaration
        // matches the C prototype (two ints in, int out) and the call has
        // no memory effects on this process.
        unsafe { kill(pid as i32, SIGTERM) == 0 }
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: FFI into the C library's `signal(2)`. The declaration
        // matches the C prototype on every unix libc this builds against
        // (both arguments and the return value are pointer-sized), the
        // handler is a plain `extern "C" fn(i32)` whose address stays valid
        // for the life of the process, and the handler body performs only
        // the one async-signal-safe action (a relaxed-free atomic store) —
        // no allocation, locking, or Rust unwinding can occur in signal
        // context.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn terminate_pid(_pid: u32) -> bool {
        false
    }
}

/// Install the termination handler (idempotent). After this, SIGTERM and
/// SIGINT set the flag instead of killing the process, and the serving
/// loop drains cleanly.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has been observed (or [`request`] called).
pub fn terminated() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Set the termination flag programmatically — same path a real SIGTERM
/// takes, used by tests and by in-process shutdown.
pub fn request() {
    TERM.store(true, Ordering::SeqCst);
}

/// Send SIGTERM to `pid` (a supervised backend), asking it to drain
/// gracefully. Returns `false` when the signal could not be delivered
/// (process already gone, or a non-unix host) — callers escalate to
/// `Child::kill` after a drain timeout either way.
pub fn terminate_pid(pid: u32) -> bool {
    imp::terminate_pid(pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_terminated() {
        // Note: the flag is process-global; tests that need isolation use
        // the ServerHandle's own flag, not this one.
        request();
        assert!(terminated());
    }
}
