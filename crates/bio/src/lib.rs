//! The biological process layer: the expert model of river water quality.
//!
//! This crate encodes everything §II and §III-C of the paper specify about
//! the domain:
//!
//! * [`params`] — the sixteen constant parameters of Table III with their
//!   prior means and exploration bounds, plus the special `R` kind for the
//!   randomly initialised constants that revisions may introduce;
//! * [`manual`] — the expert equations (1)–(2): phytoplankton dynamics with
//!   Steele light response, Liebig nutrient limitation and the two-optimum
//!   temperature response, coupled to zooplankton growth/respiration/death
//!   (the M ANUAL baseline of Table V);
//! * [`mexpr`] — *marked expressions*: equation ASTs annotated with the
//!   `{…} Ext_k` extension points of eqs. (5)–(6);
//! * [`extensions`] — Table II verbatim: which variables, connectors and
//!   extenders apply to each extension point;
//! * [`grammar`] — compilation of the marked expert process + Table II into
//!   a `gmr_tag::Grammar` (the α-tree for the initial process, connector and
//!   extender β-trees, lexeme pools, parameter ranges);
//! * [`problem`] — the fitness problem: forward (Euler) integration of a
//!   two-equation system over the forcing series with incremental RMSE,
//!   ready for the GP engine's evaluation short-circuiting;
//! * [`network_sim`] — the full Appendix A coupling: the biological process
//!   running in every station's water body with flow-weighted biomass
//!   routing through the river DAG.

pub mod extensions;
pub mod grammar;
pub mod manual;
pub mod mexpr;
pub mod network_sim;
pub mod params;
pub mod problem;

pub use extensions::{ExtOp, ExtensionSpec, EXTENSIONS};
pub use grammar::{river_grammar, RiverGrammar};
pub use manual::{manual_system, name_table};
pub use mexpr::MExpr;
pub use network_sim::{
    network_rmse, simulate_network, simulate_network_compiled, NetworkSimOptions, NetworkSimResult,
    StationSeries,
};
pub use params::{ParamSpec, PARAMS, R_KIND, STATE_NAMES};
pub use problem::{sanitise_state, RiverProblem, SimOptions};
