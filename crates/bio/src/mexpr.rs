//! Marked expressions: equation ASTs annotated with extension points.
//!
//! Eqs. (5)–(6) of the paper write the revisable process as the expert
//! equations with `{…} Ext_k` markers around the subprocesses that may be
//! extended. [`MExpr`] is exactly that: an expression tree whose nodes may
//! additionally be wrapped in an [`MExpr::Ext`] marker. The grammar
//! compiler (`crate::grammar`) turns each marker into an `ExtC_k` interior
//! node of the initial α-tree — the only nodes connector β-trees may adjoin
//! at.

use gmr_expr::{BinOp, Expr, UnOp};

/// An expression annotated with extension markers.
#[derive(Debug, Clone, PartialEq)]
pub enum MExpr {
    /// A leaf (literal, parameter, variable or state).
    Leaf(Expr),
    /// Binary application.
    Bin(BinOp, Box<MExpr>, Box<MExpr>),
    /// Unary application.
    Un(UnOp, Box<MExpr>),
    /// `{inner} Ext_k` — the subprocess may be revised through extension
    /// point `k`.
    Ext(u8, Box<MExpr>),
}

impl MExpr {
    /// Wrap in an extension marker.
    pub fn ext(id: u8, inner: MExpr) -> MExpr {
        MExpr::Ext(id, Box::new(inner))
    }

    /// Binary combinator.
    pub fn bin(op: BinOp, lhs: MExpr, rhs: MExpr) -> MExpr {
        MExpr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Unary combinator.
    pub fn un(op: UnOp, inner: MExpr) -> MExpr {
        MExpr::Un(op, Box::new(inner))
    }

    /// Strip all markers, recovering the plain expression.
    pub fn strip(&self) -> Expr {
        match self {
            MExpr::Leaf(e) => e.clone(),
            MExpr::Bin(op, a, b) => Expr::bin(*op, a.strip(), b.strip()),
            MExpr::Un(op, a) => Expr::un(*op, a.strip()),
            MExpr::Ext(_, inner) => inner.strip(),
        }
    }

    /// The extension ids present, in preorder.
    pub fn extension_ids(&self) -> Vec<u8> {
        let mut out = Vec::new();
        fn go(m: &MExpr, out: &mut Vec<u8>) {
            match m {
                MExpr::Ext(id, inner) => {
                    out.push(*id);
                    go(inner, out);
                }
                MExpr::Bin(_, a, b) => {
                    go(a, out);
                    go(b, out);
                }
                MExpr::Un(_, a) => go(a, out),
                MExpr::Leaf(_) => {}
            }
        }
        go(self, &mut out);
        out
    }
}

impl From<Expr> for MExpr {
    /// Lift a plain expression into an unmarked [`MExpr`].
    fn from(e: Expr) -> Self {
        match e {
            Expr::Unary(op, a) => MExpr::un(op, MExpr::from(*a)),
            Expr::Binary(op, a, b) => MExpr::bin(op, MExpr::from(*a), MExpr::from(*b)),
            leaf => MExpr::Leaf(leaf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::ParamSlot;

    fn sample() -> MExpr {
        // {BPhy * CUA} Ext1  -  {CBRA} Ext5
        MExpr::bin(
            BinOp::Sub,
            MExpr::ext(
                1,
                MExpr::bin(
                    BinOp::Mul,
                    MExpr::Leaf(Expr::State(0)),
                    MExpr::Leaf(Expr::Param(ParamSlot {
                        kind: 0,
                        value: 1.89,
                    })),
                ),
            ),
            MExpr::ext(
                5,
                MExpr::Leaf(Expr::Param(ParamSlot {
                    kind: 2,
                    value: 0.021,
                })),
            ),
        )
    }

    #[test]
    fn strip_removes_markers() {
        let stripped = sample().strip();
        assert_eq!(stripped.size(), 5);
        assert!(matches!(stripped, Expr::Binary(BinOp::Sub, _, _)));
    }

    #[test]
    fn extension_ids_preorder() {
        assert_eq!(sample().extension_ids(), vec![1, 5]);
    }

    #[test]
    fn from_expr_round_trips_via_strip() {
        let e = Expr::bin(
            BinOp::Div,
            Expr::un(UnOp::Log, Expr::Var(3)),
            Expr::Num(2.0),
        );
        let m = MExpr::from(e.clone());
        assert_eq!(m.strip(), e);
        assert!(m.extension_ids().is_empty());
    }

    #[test]
    fn nested_markers() {
        let m = MExpr::ext(1, MExpr::ext(3, MExpr::Leaf(Expr::Num(1.0))));
        assert_eq!(m.extension_ids(), vec![1, 3]);
        assert_eq!(m.strip(), Expr::Num(1.0));
    }
}
