//! Network-coupled biological simulation — the full Appendix A system.
//!
//! The fitness problem in [`crate::problem`] integrates the biological
//! process at the target station using the forcings the hydrological
//! process already routed there (the paper's experimental setup: "as we
//! focus on modeling the biological process, we use a static hydrological
//! process"). This module implements the *full* coupled system the appendix
//! describes: each station carries its own `(B_Phy, B_Zoo)` state; every
//! day, upstream water bodies arrive after their travel delay, are merged
//! with the locally retained water by flow weight (biomass included), and
//! the biological process then advances the merged water body one step
//! using the station's local forcings.
//!
//! This is the component a downstream user needs to predict water quality
//! at *every* station simultaneously, or to study how a bloom propagates
//! down the main channel.

use gmr_expr::{CompiledSystem, Expr, OptOptions};
use gmr_hydro::data::{RiverDataset, Split};
use gmr_hydro::network::RiverNetwork;
use gmr_hydro::NUM_VARS;

/// Options for the coupled simulation.
#[derive(Debug, Clone, Copy)]
pub struct NetworkSimOptions {
    /// Initial `(B_Phy, B_Zoo)` at every station.
    pub init: (f64, f64),
    /// Euler step (days).
    pub dt: f64,
    /// Upper clamp on both states.
    pub state_cap: f64,
}

impl Default for NetworkSimOptions {
    fn default() -> Self {
        NetworkSimOptions {
            init: (8.0, 1.2),
            dt: 1.0,
            state_cap: 1e9,
        }
    }
}

/// Result of a coupled run: per-station biomass series.
#[derive(Debug, Clone)]
pub struct NetworkSimResult {
    /// `bphy[station][day]`.
    pub bphy: Vec<Vec<f64>>,
    /// `bzoo[station][day]`.
    pub bzoo: Vec<Vec<f64>>,
}

impl NetworkSimResult {
    /// Predicted phytoplankton at one station.
    pub fn phytoplankton(&self, station: usize) -> &[f64] {
        &self.bphy[station]
    }
}

use crate::problem::sanitise_state as sanitise;

/// One station's input series for [`simulate_network_compiled`]: the
/// forcing rows the equations read and the flow series the routing
/// weights come from. Both are *absolute* series — the simulated window
/// is selected by the `start`/`days` arguments, and flows are indexed by
/// absolute day so lagged upstream reads can reach before the window.
#[derive(Debug, Clone, Copy)]
pub struct StationSeries<'a> {
    /// Forcing rows, `vars[abs_day]` (Table IV layout).
    pub vars: &'a [[f64; NUM_VARS]],
    /// Daily flow, `flow[abs_day]`.
    pub flow: &'a [f64],
}

/// Simulate a two-equation biological system over every station of the
/// dataset's network for the given split, with flow-weighted biomass
/// routing between stations (Appendix A).
///
/// The equations see each station's own forcing rows; biomass mixes at
/// confluences exactly like the water bodies that carry it.
pub fn simulate_network(
    ds: &RiverDataset,
    split: Split,
    eqs: &[Expr; 2],
    opts: NetworkSimOptions,
) -> NetworkSimResult {
    // One optimized system shared by every station, checked against the
    // forcing/state arities up front (an out-of-range index is a compile
    // error here, not a silent zero mid-simulation).
    let sys = {
        let _sp = gmr_obsv::span_fine!("vm.compile", 2);
        CompiledSystem::compile_checked(eqs, NUM_VARS, 2, OptOptions::full())
            .expect("network equations reference indices outside the name table")
    };
    let series: Vec<StationSeries<'_>> = ds
        .stations
        .iter()
        .map(|st| StationSeries {
            vars: &st.vars,
            flow: &st.flow,
        })
        .collect();
    simulate_network_compiled(&ds.network, &series, split.start, split.len(), &sys, opts)
}

/// [`simulate_network`] with the forcings and compiled system supplied by
/// the caller instead of a [`RiverDataset`] — the entry point the serving
/// stack uses, where the system is compiled once per artifact and the
/// forcing tables arrive over the wire (or are hosted server-side). Given
/// the same series a dataset would provide, trajectories are bit-identical
/// to [`simulate_network`].
pub fn simulate_network_compiled(
    net: &RiverNetwork,
    stations: &[StationSeries<'_>],
    start: usize,
    days: usize,
    sys: &CompiledSystem,
    opts: NetworkSimOptions,
) -> NetworkSimResult {
    let n = net.len();
    assert_eq!(stations.len(), n, "one series per station");
    for (s, st) in stations.iter().enumerate() {
        assert!(
            st.vars.len() >= start + days && st.flow.len() >= start + days,
            "station {s} series shorter than start+days"
        );
    }
    let _sp = gmr_obsv::span!("netsim.simulate", days as u64);
    // One register-VM session per station over that station's forcing rows
    // — each station gets its own columnar prefix sweep and scratch
    // registers.
    let mut sessions: Vec<_> = (0..n)
        .map(|s| sys.session(&stations[s].vars[start..start + days]))
        .collect();
    let mut deriv = [0.0f64; 2];

    // Per-station integration time, accumulated across the day loop and
    // emitted as one `netsim.station` span per station at the end — the
    // day-major loop visits each station `days` times, so scoped spans
    // would be per-step volume. Fine detail only: the inner-loop clock
    // reads are exactly the cost coarse runs must not pay.
    let timing = gmr_obsv::enabled() && gmr_obsv::span::detail() == gmr_obsv::Detail::Fine;
    let sim_start_us = gmr_obsv::now_us();
    let mut station_ns = vec![0u64; if timing { n } else { 0 }];

    let mut bphy = vec![Vec::with_capacity(days); n];
    let mut bzoo = vec![Vec::with_capacity(days); n];
    // Current state per station.
    let mut cur: Vec<(f64, f64)> = vec![opts.init; n];

    for day in 0..days {
        let abs_day = start + day;
        // Snapshot of yesterday's states for lagged upstream reads.
        for &sid in net.topo_order() {
            let s = sid.0;
            // Merge retained local water with lagged upstream arrivals,
            // weighting biomass by flow exactly like the water bodies.
            let station = net.station(sid);
            let has_upstream = net.upstream_of(sid).count() > 0;
            let (mut p, mut z) = cur[s];
            if has_upstream {
                let prev_flow = if abs_day > 0 {
                    stations[s].flow[abs_day - 1]
                } else {
                    stations[s].flow[abs_day]
                };
                let mut total_w = station.retention * prev_flow + 1e-9;
                let mut acc_p = total_w * p;
                let mut acc_z = total_w * z;
                for e in net.upstream_of(sid) {
                    let a = e.from.0;
                    let lag = day.saturating_sub(e.delay_days);
                    let (up_p, up_z) = if lag < bphy[a].len() {
                        (bphy[a][lag], bzoo[a][lag])
                    } else {
                        opts.init
                    };
                    let lag_abs = abs_day.saturating_sub(e.delay_days);
                    let w =
                        (1.0 - net.station(e.from).retention) * stations[a].flow[lag_abs].max(0.0);
                    acc_p += w * up_p;
                    acc_z += w * up_z;
                    total_w += w;
                }
                p = acc_p / total_w;
                z = acc_z / total_w;
            }
            // One Euler day with this station's local forcings.
            let t_step = timing.then(std::time::Instant::now);
            let state = [p, z];
            sessions[s].step(day, &state, &mut deriv);
            let (dp, dz) = (deriv[0], deriv[1]);
            let p1 = sanitise(p + opts.dt * dp, opts.state_cap);
            let z1 = sanitise(z + opts.dt * dz, opts.state_cap);
            if let Some(t) = t_step {
                station_ns[s] += t.elapsed().as_nanos() as u64;
            }
            bphy[s].push(p1);
            bzoo[s].push(z1);
            cur[s] = (p1, z1);
        }
    }
    for (s, ns) in station_ns.iter().enumerate() {
        gmr_obsv::span::record_external("netsim.station", sim_start_us, ns / 1_000, Some(s as u64));
    }
    NetworkSimResult { bphy, bzoo }
}

/// RMSE of the network simulation against observed chlorophyll at every
/// *measuring* station; returns `(station_name, rmse)` pairs.
pub fn network_rmse(
    ds: &RiverDataset,
    split: Split,
    result: &NetworkSimResult,
) -> Vec<(String, f64)> {
    ds.network
        .stations()
        .filter(|(_, st)| st.kind == gmr_hydro::network::StationKind::Measuring)
        .map(|(sid, st)| {
            let observed = &ds.stations[sid.0].chla[split.start..split.end];
            let rmse = gmr_hydro::rmse(&result.bphy[sid.0], observed);
            (st.name.clone(), rmse)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::manual_system;
    use gmr_expr::BinOp;
    use gmr_hydro::{generate, SyntheticConfig};

    fn dataset() -> RiverDataset {
        generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        })
    }

    #[test]
    fn shapes_cover_every_station_and_day() {
        let ds = dataset();
        let res = simulate_network(
            &ds,
            ds.train,
            &manual_system(),
            NetworkSimOptions::default(),
        );
        assert_eq!(res.bphy.len(), ds.network.len());
        for s in 0..ds.network.len() {
            assert_eq!(res.bphy[s].len(), ds.train.len());
            assert_eq!(res.bzoo[s].len(), ds.train.len());
        }
    }

    #[test]
    fn states_bounded_everywhere() {
        let ds = dataset();
        let opts = NetworkSimOptions::default();
        let res = simulate_network(&ds, ds.train, &manual_system(), opts);
        for series in res.bphy.iter().chain(res.bzoo.iter()) {
            for &v in series {
                assert!(v.is_finite());
                assert!((0.0..=opts.state_cap).contains(&v));
            }
        }
    }

    #[test]
    fn zero_dynamics_holds_initial_state_at_headwaters() {
        // dB/dt = 0 at a headwater (no upstream mixing): state frozen.
        let ds = dataset();
        let frozen = [Expr::Num(0.0), Expr::Num(0.0)];
        let opts = NetworkSimOptions::default();
        let res = simulate_network(&ds, ds.train, &frozen, opts);
        let s6 = ds.network.by_name("S6").unwrap().0;
        assert!(res.bphy[s6].iter().all(|&v| v == opts.init.0));
        // And therefore everywhere: all stations start at the same state,
        // and flow-weighted averages of equal values are that value.
        let s1 = ds.network.by_name("S1").unwrap().0;
        for &v in &res.bphy[s1] {
            assert!((v - opts.init.0).abs() < 1e-9);
        }
    }

    #[test]
    fn upstream_biomass_propagates_downstream() {
        // Growth only at the headwater tributary T1 (via a variable that is
        // uniform anyway, we instead grow everywhere but kill at S1's own
        // local step: simpler — use growth proportional to BPhy: biomass
        // rises everywhere; downstream stations receive *mixed* upstream
        // levels, so S1 should deviate from a pure local integration).
        let ds = dataset();
        let grow = [
            Expr::bin(BinOp::Mul, Expr::Num(0.02), Expr::State(0)),
            Expr::Num(0.0),
        ];
        let opts = NetworkSimOptions::default();
        let res = simulate_network(&ds, ds.train, &grow, opts);
        // Pure local integration at a headwater: p_t = p0 * 1.02^t.
        let s6 = ds.network.by_name("S6").unwrap().0;
        let t = 50;
        let expect = opts.init.0 * 1.02f64.powi(t as i32 + 1);
        assert!((res.bphy[s6][t] - expect).abs() / expect < 1e-9);
        // S1 mixes upstream water of *lower* biomass (arrived with a lag,
        // hence fewer growth steps): its level lags the pure local curve.
        let s1 = ds.network.by_name("S1").unwrap().0;
        assert!(res.bphy[s1][t] < expect);
        assert!(res.bphy[s1][t] > opts.init.0);
    }

    #[test]
    fn compiled_entry_point_is_bit_identical_to_dataset_wrapper() {
        let ds = dataset();
        let eqs = manual_system();
        let opts = NetworkSimOptions::default();
        let want = simulate_network(&ds, ds.test, &eqs, opts);
        let sys = CompiledSystem::compile_checked(&eqs, NUM_VARS, 2, OptOptions::full()).unwrap();
        let series: Vec<StationSeries<'_>> = ds
            .stations
            .iter()
            .map(|st| StationSeries {
                vars: &st.vars,
                flow: &st.flow,
            })
            .collect();
        let got = simulate_network_compiled(
            &ds.network,
            &series,
            ds.test.start,
            ds.test.len(),
            &sys,
            opts,
        );
        for s in 0..ds.network.len() {
            assert_eq!(want.bphy[s], got.bphy[s], "bphy differs at station {s}");
            assert_eq!(want.bzoo[s], got.bzoo[s], "bzoo differs at station {s}");
        }
    }

    /// A confluence with zero flow everywhere (total inflow 0) must not
    /// divide by zero: the `1e-9` retention floor keeps the merge a no-op
    /// on the local state, and trajectories stay finite.
    #[test]
    fn zero_total_inflow_at_confluence_stays_finite() {
        let mut ds = dataset();
        for st in &mut ds.stations {
            st.flow.fill(0.0);
        }
        let opts = NetworkSimOptions::default();
        let res = simulate_network(&ds, ds.train, &manual_system(), opts);
        for series in res.bphy.iter().chain(res.bzoo.iter()) {
            for &v in series {
                assert!(v.is_finite());
                assert!((0.0..=opts.state_cap).contains(&v));
            }
        }
        // With zero inflow weight, the confluence VS1 behaves like an
        // isolated station: frozen dynamics hold its initial state.
        let frozen = [Expr::Num(0.0), Expr::Num(0.0)];
        let res = simulate_network(&ds, ds.train, &frozen, opts);
        let vs1 = ds.network.by_name("VS1").unwrap().0;
        assert!(res.bphy[vs1].iter().all(|&v| v == opts.init.0));
    }

    /// A virtual station with a single upstream parent is a pass-through
    /// merge (its own retention share plus one inflow), not a confluence:
    /// with zero local retention weight its biomass must track the lagged
    /// parent value exactly.
    #[test]
    fn single_parent_virtual_station_passes_biomass_through() {
        use gmr_hydro::network::{Edge, Station, StationId, StationKind};
        let net = RiverNetwork::new(
            vec![
                Station {
                    name: "UP".into(),
                    kind: StationKind::Measuring,
                    retention: 0.0,
                },
                Station {
                    name: "MID".into(),
                    kind: StationKind::Virtual,
                    retention: 0.0,
                },
            ],
            vec![Edge {
                from: StationId(0),
                to: StationId(1),
                distance_km: 10.0,
                delay_days: 1,
            }],
        )
        .unwrap();
        let days = 40;
        let vars = vec![[0.0; NUM_VARS]; days];
        let flow = vec![100.0; days];
        let series = vec![
            StationSeries {
                vars: &vars,
                flow: &flow,
            };
            2
        ];
        // Grow only via BPhy so the two stations diverge over time.
        let grow = [
            Expr::bin(BinOp::Mul, Expr::Num(0.05), Expr::State(0)),
            Expr::Num(0.0),
        ];
        let sys = CompiledSystem::compile_checked(&grow, NUM_VARS, 2, OptOptions::full()).unwrap();
        let opts = NetworkSimOptions::default();
        let res = simulate_network_compiled(&net, &series, 0, days, &sys, opts);
        // MID's merged pre-step state is its lagged parent (retention share
        // is only the 1e-9 floor), so after the shared local growth step:
        // mid[t] = up[t-1] * 1.05 = up[t] exactly (same growth factor).
        for t in 1..days {
            let expect = res.bphy[0][t - 1] * 1.05;
            let got = res.bphy[1][t];
            assert!(
                (got - expect).abs() < 1e-12 * expect.max(1.0),
                "t={t}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn network_rmse_reports_measuring_stations_only() {
        let ds = dataset();
        let res = simulate_network(&ds, ds.test, &manual_system(), NetworkSimOptions::default());
        let scores = network_rmse(&ds, ds.test, &res);
        assert_eq!(scores.len(), 9); // S1–S6, T1–T3
        assert!(scores.iter().all(|(name, _)| !name.starts_with("VS")));
        assert!(scores.iter().all(|(_, r)| *r > 0.0));
    }
}
