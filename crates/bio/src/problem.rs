//! The river fitness problem: forward integration and incremental scoring.
//!
//! Fitness evaluation in dynamic-systems modelling "involves evaluating
//! revised differential equations for each time step, and comparing it with
//! observed values" (§III-B2). A *fitness case* is one day: the state
//! `(B_Phy, B_Zoo)` is advanced by one forward-Euler step using the day's
//! forcing row, and the predicted phytoplankton biomass is compared against
//! observed chlorophyll-a.
//!
//! The incremental entry point [`RiverProblem::evaluate_with`] reports the
//! running RMSE to a caller-supplied controller every few steps — that is
//! the hook the GP engine's evaluation short-circuiting (paper Alg. 1)
//! plugs into, and it is also how tree caching and runtime compilation stay
//! orthogonal to the scoring loop.
//!
//! Numeric policy: evolved systems can be violently unstable. States are
//! clamped to `[0, state_cap]` (biomass is non-negative; the cap keeps a
//! runaway model's error *huge but finite*, mirroring the paper's M ANUAL
//! row showing a 2.79e+9 training RMSE rather than a crash), and a NaN state
//! is snapped to the cap.

use gmr_expr::{CompiledSystem, EvalContext, Expr, OptOptions};
use gmr_hydro::data::{RiverDataset, Split};
use gmr_hydro::{mae, rmse, NUM_VARS};

/// Integration options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Initial `(B_Phy, B_Zoo)` at the first day of the split.
    pub init: (f64, f64),
    /// Euler time step in days.
    pub dt: f64,
    /// Upper clamp on both states.
    pub state_cap: f64,
    /// How often (in fitness cases) the incremental controller is consulted.
    pub check_every: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            init: (8.0, 1.2),
            dt: 1.0,
            state_cap: 1e9,
            check_every: 32,
        }
    }
}

/// A fully materialised fitness problem: forcings and observations at the
/// target station over one split.
#[derive(Debug, Clone)]
pub struct RiverProblem {
    /// Daily forcing rows.
    pub forcings: Vec<[f64; NUM_VARS]>,
    /// Observed chlorophyll-a, aligned with `forcings`.
    pub observed: Vec<f64>,
    /// Integration options.
    pub opts: SimOptions,
}

/// Post-step state repair used by every integrator in the workspace:
/// `NaN` becomes the cap (a diverged candidate saturates rather than
/// poisoning downstream arithmetic), anything else clamps to `[0, cap]`.
/// Exported so out-of-crate integration loops (the network simulator, the
/// serving stack) apply *exactly* this rule — bit-identical trajectories
/// depend on it.
#[inline(always)]
pub fn sanitise_state(x: f64, cap: f64) -> f64 {
    if x.is_nan() {
        cap
    } else {
        x.clamp(0.0, cap)
    }
}

use sanitise_state as sanitise;

impl RiverProblem {
    /// Build the problem for a dataset split, seeding the initial biomass
    /// from the first observation.
    pub fn from_dataset(ds: &RiverDataset, split: Split) -> Self {
        let forcings = ds.forcings(split).to_vec();
        let observed = ds.observed(split).to_vec();
        let mut opts = SimOptions::default();
        if let Some(&first) = observed.first() {
            opts.init.0 = first.max(0.05);
        }
        RiverProblem {
            forcings,
            observed,
            opts,
        }
    }

    /// Number of fitness cases (days).
    pub fn num_cases(&self) -> usize {
        self.observed.len()
    }

    /// The one forward-Euler loop every entry point runs through.
    ///
    /// Per day `i`: `visit(i, bphy)` observes the *pre-step* phytoplankton
    /// biomass (recording a prediction, accumulating an error, consulting
    /// the short-circuit controller — returning `false` aborts); `rhs`
    /// produces the derivative pair at `(forcings[i], state)`; the state is
    /// advanced and sanitised. Returns whether the loop ran to completion.
    fn integrate<R, V>(&self, mut rhs: R, mut visit: V) -> bool
    where
        R: FnMut(usize, &[f64; 2]) -> (f64, f64),
        V: FnMut(usize, f64) -> bool,
    {
        let cap = self.opts.state_cap;
        let dt = self.opts.dt;
        let (mut bphy, mut bzoo) = self.opts.init;
        for i in 0..self.forcings.len() {
            if !visit(i, bphy) {
                return false;
            }
            let state = [bphy, bzoo];
            let (dphy, dzoo) = rhs(i, &state);
            bphy = sanitise(bphy + dt * dphy, cap);
            bzoo = sanitise(bzoo + dt * dzoo, cap);
        }
        true
    }

    /// Derivative closure backed by the tree-walking interpreter.
    fn interp_rhs<'a>(
        &'a self,
        eqs: [&'a Expr; 2],
    ) -> impl FnMut(usize, &[f64; 2]) -> (f64, f64) + 'a {
        move |i, state| {
            let ctx = EvalContext {
                vars: &self.forcings[i],
                state,
            };
            (eqs[0].eval(&ctx), eqs[1].eval(&ctx))
        }
    }

    /// Derivative closure backed by a compiled system: one register-VM
    /// session over the forcing table, so the state-independent prefix is
    /// swept columnar and only the core runs sequentially.
    fn compiled_rhs<'a>(
        &'a self,
        sys: &'a CompiledSystem,
    ) -> impl FnMut(usize, &[f64; 2]) -> (f64, f64) + 'a {
        assert_eq!(sys.n_eqs(), 2, "the river system has two equations");
        let mut session = sys.session(&self.forcings);
        let mut d = [0.0f64; 2];
        move |i, state: &[f64; 2]| {
            session.step(i, state, &mut d);
            (d[0], d[1])
        }
    }

    /// Full simulation with the tree-walking interpreter. Returns the
    /// predicted B_Phy series.
    pub fn simulate(&self, eqs: &[Expr; 2]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_cases());
        self.integrate(self.interp_rhs([&eqs[0], &eqs[1]]), |_, bphy| {
            out.push(bphy);
            true
        });
        out
    }

    /// Full simulation through the optimizing register VM; the inner loop
    /// is allocation-free after the session's one-time setup.
    pub fn simulate_compiled(&self, sys: &CompiledSystem) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_cases());
        self.integrate(self.compiled_rhs(sys), |_, bphy| {
            out.push(bphy);
            true
        });
        out
    }

    /// RMSE of a system over this problem (full evaluation, interpreter).
    pub fn rmse(&self, eqs: &[Expr; 2]) -> f64 {
        rmse(&self.simulate(eqs), &self.observed)
    }

    /// MAE of a system over this problem (full evaluation, interpreter).
    pub fn mae(&self, eqs: &[Expr; 2]) -> f64 {
        mae(&self.simulate(eqs), &self.observed)
    }

    /// Incremental evaluation with a short-circuit controller.
    ///
    /// Every `opts.check_every` cases, `ctl` receives the running RMSE and
    /// the number of cases integrated; returning `false` aborts evaluation
    /// and the running RMSE is returned as the (extrapolated) fitness. The
    /// second tuple element reports whether evaluation ran to completion.
    ///
    /// `compiled` selects the optimizing register VM (runtime compilation
    /// on) or the interpreter (off) — the knob for the Fig. 10 experiment.
    pub fn evaluate_with(
        &self,
        eqs: &[Expr; 2],
        compiled: bool,
        ctl: &mut dyn FnMut(f64, usize) -> bool,
    ) -> (f64, bool) {
        let sys = compiled.then(|| CompiledSystem::compile(&eqs[..], OptOptions::full()));
        self.evaluate_precompiled([&eqs[0], &eqs[1]], sys.as_ref(), ctl)
    }

    /// [`Self::evaluate_with`] taking an already-compiled system, so
    /// callers that memoise the compiled artifact per genotype (the GP
    /// engine's phenotype cache) pay the compile cost once instead of on
    /// every evaluation.
    pub fn evaluate_precompiled(
        &self,
        eqs: [&Expr; 2],
        compiled: Option<&CompiledSystem>,
        ctl: &mut dyn FnMut(f64, usize) -> bool,
    ) -> (f64, bool) {
        let n = self.num_cases();
        let check = self.opts.check_every;
        let mut sse = 0.0f64;
        let mut aborted_fitness = f64::INFINITY;
        // Checkpoints fire between cases: when `visit(i, ..)` runs, `i`
        // cases are integrated and scored, which is exactly the historical
        // end-of-iteration check with `done == i` (and `done < n` holds
        // for free because case `i` is still pending).
        let visit = |i: usize, bphy: f64| -> bool {
            if i > 0 && i.is_multiple_of(check) {
                let running = (sse / i as f64).sqrt();
                let running = if running.is_finite() {
                    running
                } else {
                    f64::INFINITY
                };
                if !ctl(running, i) {
                    aborted_fitness = running;
                    return false;
                }
            }
            let err = bphy - self.observed[i];
            sse += err * err;
            true
        };
        let completed = match compiled {
            Some(sys) => self.integrate(self.compiled_rhs(sys), visit),
            None => self.integrate(self.interp_rhs(eqs), visit),
        };
        if !completed {
            return (aborted_fitness, false);
        }
        let full = (sse / n.max(1) as f64).sqrt();
        (
            if full.is_finite() {
                full
            } else {
                f64::INFINITY
            },
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::manual_system;
    use gmr_hydro::{generate, SyntheticConfig};

    fn tiny_problem() -> RiverProblem {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        });
        RiverProblem::from_dataset(&ds, ds.train)
    }

    #[test]
    fn dimensions_follow_split() {
        let p = tiny_problem();
        assert_eq!(p.num_cases(), 366);
        assert_eq!(p.forcings.len(), p.observed.len());
        // Initial biomass seeded from the first observation.
        assert_eq!(p.opts.init.0, p.observed[0].max(0.05));
    }

    #[test]
    fn compiled_and_interpreted_agree() {
        let p = tiny_problem();
        let eqs = manual_system();
        let interp = p.simulate(&eqs);
        let mut tiers = vec![
            OptOptions::register(),
            OptOptions::fused(),
            OptOptions::full(),
            OptOptions::threaded(),
        ];
        // The simd tier is bit-exact exactly when its vector kernels are
        // dormant; with them live its fidelity class is relaxed-simd and
        // the bench's tolerance validation covers it instead.
        if !gmr_expr::simd::active() {
            tiers.push(OptOptions::simd());
        }
        for opts in tiers {
            let sys = CompiledSystem::compile(&eqs, opts);
            let compiled = p.simulate_compiled(&sys);
            assert_eq!(interp, compiled, "tier {opts:?} diverged");
        }
    }

    #[test]
    fn rmse_matches_manual_composition() {
        let p = tiny_problem();
        let eqs = manual_system();
        let pred = p.simulate(&eqs);
        assert_eq!(p.rmse(&eqs), rmse(&pred, &p.observed));
        assert!(p.rmse(&eqs).is_finite() || p.rmse(&eqs) == f64::INFINITY);
    }

    #[test]
    fn states_stay_in_bounds() {
        let p = tiny_problem();
        // A deliberately explosive system: dB/dt = B * B.
        let explosive = [
            Expr::bin(gmr_expr::BinOp::Mul, Expr::State(0), Expr::State(0)),
            Expr::Num(0.0),
        ];
        let pred = p.simulate(&explosive);
        for v in pred {
            assert!(v.is_finite());
            assert!((0.0..=p.opts.state_cap).contains(&v));
        }
    }

    #[test]
    fn incremental_full_run_matches_batch() {
        let p = tiny_problem();
        let eqs = manual_system();
        let (fit, full) = p.evaluate_with(&eqs, false, &mut |_, _| true);
        assert!(full);
        let batch = p.rmse(&eqs);
        if batch.is_finite() {
            assert!((fit - batch).abs() < 1e-9, "{fit} vs {batch}");
        } else {
            assert_eq!(fit, f64::INFINITY);
        }
    }

    #[test]
    fn controller_can_abort_early() {
        let p = tiny_problem();
        let eqs = manual_system();
        let mut calls = 0;
        let (_, full) = p.evaluate_with(&eqs, false, &mut |_, done| {
            calls += 1;
            done < 100
        });
        assert!(!full);
        assert!(calls >= 1);
    }

    #[test]
    fn compiled_incremental_matches_interpreted_incremental() {
        let p = tiny_problem();
        let eqs = manual_system();
        let (a, _) = p.evaluate_with(&eqs, false, &mut |_, _| true);
        let (b, _) = p.evaluate_with(&eqs, true, &mut |_, _| true);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_oracle_scores_near_zero() {
        // A system that holds BPhy at its initial value, evaluated against
        // observations equal to that constant, must score 0.
        let mut p = tiny_problem();
        let c = p.opts.init.0;
        p.observed = vec![c; p.num_cases()];
        let frozen = [Expr::Num(0.0), Expr::Num(0.0)];
        assert_eq!(p.rmse(&frozen), 0.0);
    }
}
