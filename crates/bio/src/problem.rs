//! The river fitness problem: forward integration and incremental scoring.
//!
//! Fitness evaluation in dynamic-systems modelling "involves evaluating
//! revised differential equations for each time step, and comparing it with
//! observed values" (§III-B2). A *fitness case* is one day: the state
//! `(B_Phy, B_Zoo)` is advanced by one forward-Euler step using the day's
//! forcing row, and the predicted phytoplankton biomass is compared against
//! observed chlorophyll-a.
//!
//! The incremental entry point [`RiverProblem::evaluate_with`] reports the
//! running RMSE to a caller-supplied controller every few steps — that is
//! the hook the GP engine's evaluation short-circuiting (paper Alg. 1)
//! plugs into, and it is also how tree caching and runtime compilation stay
//! orthogonal to the scoring loop.
//!
//! Numeric policy: evolved systems can be violently unstable. States are
//! clamped to `[0, state_cap]` (biomass is non-negative; the cap keeps a
//! runaway model's error *huge but finite*, mirroring the paper's M ANUAL
//! row showing a 2.79e+9 training RMSE rather than a crash), and a NaN state
//! is snapped to the cap.

use gmr_expr::{CompiledExpr, EvalContext, Expr};
use gmr_hydro::data::{RiverDataset, Split};
use gmr_hydro::{mae, rmse, NUM_VARS};

/// Integration options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Initial `(B_Phy, B_Zoo)` at the first day of the split.
    pub init: (f64, f64),
    /// Euler time step in days.
    pub dt: f64,
    /// Upper clamp on both states.
    pub state_cap: f64,
    /// How often (in fitness cases) the incremental controller is consulted.
    pub check_every: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            init: (8.0, 1.2),
            dt: 1.0,
            state_cap: 1e9,
            check_every: 32,
        }
    }
}

/// A fully materialised fitness problem: forcings and observations at the
/// target station over one split.
#[derive(Debug, Clone)]
pub struct RiverProblem {
    /// Daily forcing rows.
    pub forcings: Vec<[f64; NUM_VARS]>,
    /// Observed chlorophyll-a, aligned with `forcings`.
    pub observed: Vec<f64>,
    /// Integration options.
    pub opts: SimOptions,
}

#[inline(always)]
fn sanitise(x: f64, cap: f64) -> f64 {
    if x.is_nan() {
        cap
    } else {
        x.clamp(0.0, cap)
    }
}

impl RiverProblem {
    /// Build the problem for a dataset split, seeding the initial biomass
    /// from the first observation.
    pub fn from_dataset(ds: &RiverDataset, split: Split) -> Self {
        let forcings = ds.forcings(split).to_vec();
        let observed = ds.observed(split).to_vec();
        let mut opts = SimOptions::default();
        if let Some(&first) = observed.first() {
            opts.init.0 = first.max(0.05);
        }
        RiverProblem {
            forcings,
            observed,
            opts,
        }
    }

    /// Number of fitness cases (days).
    pub fn num_cases(&self) -> usize {
        self.observed.len()
    }

    /// Full simulation with the tree-walking interpreter. Returns the
    /// predicted B_Phy series.
    pub fn simulate(&self, eqs: &[Expr; 2]) -> Vec<f64> {
        let cap = self.opts.state_cap;
        let dt = self.opts.dt;
        let (mut bphy, mut bzoo) = self.opts.init;
        let mut out = Vec::with_capacity(self.num_cases());
        for row in &self.forcings {
            out.push(bphy);
            let state = [bphy, bzoo];
            let ctx = EvalContext {
                vars: row,
                state: &state,
            };
            let dphy = eqs[0].eval(&ctx);
            let dzoo = eqs[1].eval(&ctx);
            bphy = sanitise(bphy + dt * dphy, cap);
            bzoo = sanitise(bzoo + dt * dzoo, cap);
        }
        out
    }

    /// Full simulation with compiled bytecode; allocation-free inner loop.
    pub fn simulate_compiled(&self, eqs: &[CompiledExpr; 2]) -> Vec<f64> {
        let cap = self.opts.state_cap;
        let dt = self.opts.dt;
        let (mut bphy, mut bzoo) = self.opts.init;
        let mut out = Vec::with_capacity(self.num_cases());
        let mut stack = Vec::with_capacity(eqs[0].max_stack().max(eqs[1].max_stack()));
        for row in &self.forcings {
            out.push(bphy);
            let state = [bphy, bzoo];
            let ctx = EvalContext {
                vars: row,
                state: &state,
            };
            let dphy = eqs[0].eval_with(&ctx, &mut stack);
            let dzoo = eqs[1].eval_with(&ctx, &mut stack);
            bphy = sanitise(bphy + dt * dphy, cap);
            bzoo = sanitise(bzoo + dt * dzoo, cap);
        }
        out
    }

    /// RMSE of a system over this problem (full evaluation, interpreter).
    pub fn rmse(&self, eqs: &[Expr; 2]) -> f64 {
        rmse(&self.simulate(eqs), &self.observed)
    }

    /// MAE of a system over this problem (full evaluation, interpreter).
    pub fn mae(&self, eqs: &[Expr; 2]) -> f64 {
        mae(&self.simulate(eqs), &self.observed)
    }

    /// Incremental evaluation with a short-circuit controller.
    ///
    /// Every `opts.check_every` cases, `ctl` receives the running RMSE and
    /// the number of cases integrated; returning `false` aborts evaluation
    /// and the running RMSE is returned as the (extrapolated) fitness. The
    /// second tuple element reports whether evaluation ran to completion.
    ///
    /// `compiled` selects the bytecode VM (runtime compilation on) or the
    /// interpreter (off) — the knob for the Fig. 10 experiment.
    pub fn evaluate_with(
        &self,
        eqs: &[Expr; 2],
        compiled: bool,
        ctl: &mut dyn FnMut(f64, usize) -> bool,
    ) -> (f64, bool) {
        let compiled_eqs = compiled.then(|| {
            [
                CompiledExpr::compile(&eqs[0]),
                CompiledExpr::compile(&eqs[1]),
            ]
        });
        let refs = compiled_eqs.as_ref().map(|c| [&c[0], &c[1]]);
        self.evaluate_precompiled([&eqs[0], &eqs[1]], refs, ctl)
    }

    /// [`Self::evaluate_with`] taking already-compiled bytecode, so callers
    /// that memoise the compiled system per genotype (the GP engine's
    /// phenotype cache) pay the compile cost once instead of on every
    /// evaluation.
    pub fn evaluate_precompiled(
        &self,
        eqs: [&Expr; 2],
        compiled: Option<[&CompiledExpr; 2]>,
        ctl: &mut dyn FnMut(f64, usize) -> bool,
    ) -> (f64, bool) {
        let cap = self.opts.state_cap;
        let dt = self.opts.dt;
        let (mut bphy, mut bzoo) = self.opts.init;
        let mut sse = 0.0f64;
        let n = self.num_cases();
        let mut stack = Vec::with_capacity(
            compiled
                .map(|[c0, c1]| c0.max_stack().max(c1.max_stack()))
                .unwrap_or(0),
        );
        for (i, row) in self.forcings.iter().enumerate() {
            let err = bphy - self.observed[i];
            sse += err * err;
            let state = [bphy, bzoo];
            let ctx = EvalContext {
                vars: row,
                state: &state,
            };
            let (dphy, dzoo) = match &compiled {
                Some([c0, c1]) => (
                    c0.eval_with(&ctx, &mut stack),
                    c1.eval_with(&ctx, &mut stack),
                ),
                None => (eqs[0].eval(&ctx), eqs[1].eval(&ctx)),
            };
            bphy = sanitise(bphy + dt * dphy, cap);
            bzoo = sanitise(bzoo + dt * dzoo, cap);
            let done = i + 1;
            if done % self.opts.check_every == 0 && done < n {
                let running = (sse / done as f64).sqrt();
                if !ctl(
                    if running.is_finite() {
                        running
                    } else {
                        f64::INFINITY
                    },
                    done,
                ) {
                    return (
                        if running.is_finite() {
                            running
                        } else {
                            f64::INFINITY
                        },
                        false,
                    );
                }
            }
        }
        let full = (sse / n.max(1) as f64).sqrt();
        (
            if full.is_finite() {
                full
            } else {
                f64::INFINITY
            },
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::manual_system;
    use gmr_hydro::{generate, SyntheticConfig};

    fn tiny_problem() -> RiverProblem {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        });
        RiverProblem::from_dataset(&ds, ds.train)
    }

    #[test]
    fn dimensions_follow_split() {
        let p = tiny_problem();
        assert_eq!(p.num_cases(), 366);
        assert_eq!(p.forcings.len(), p.observed.len());
        // Initial biomass seeded from the first observation.
        assert_eq!(p.opts.init.0, p.observed[0].max(0.05));
    }

    #[test]
    fn compiled_and_interpreted_agree() {
        let p = tiny_problem();
        let eqs = manual_system();
        let interp = p.simulate(&eqs);
        let comp = [
            CompiledExpr::compile(&eqs[0]),
            CompiledExpr::compile(&eqs[1]),
        ];
        let compiled = p.simulate_compiled(&comp);
        assert_eq!(interp, compiled);
    }

    #[test]
    fn rmse_matches_manual_composition() {
        let p = tiny_problem();
        let eqs = manual_system();
        let pred = p.simulate(&eqs);
        assert_eq!(p.rmse(&eqs), rmse(&pred, &p.observed));
        assert!(p.rmse(&eqs).is_finite() || p.rmse(&eqs) == f64::INFINITY);
    }

    #[test]
    fn states_stay_in_bounds() {
        let p = tiny_problem();
        // A deliberately explosive system: dB/dt = B * B.
        let explosive = [
            Expr::bin(gmr_expr::BinOp::Mul, Expr::State(0), Expr::State(0)),
            Expr::Num(0.0),
        ];
        let pred = p.simulate(&explosive);
        for v in pred {
            assert!(v.is_finite());
            assert!((0.0..=p.opts.state_cap).contains(&v));
        }
    }

    #[test]
    fn incremental_full_run_matches_batch() {
        let p = tiny_problem();
        let eqs = manual_system();
        let (fit, full) = p.evaluate_with(&eqs, false, &mut |_, _| true);
        assert!(full);
        let batch = p.rmse(&eqs);
        if batch.is_finite() {
            assert!((fit - batch).abs() < 1e-9, "{fit} vs {batch}");
        } else {
            assert_eq!(fit, f64::INFINITY);
        }
    }

    #[test]
    fn controller_can_abort_early() {
        let p = tiny_problem();
        let eqs = manual_system();
        let mut calls = 0;
        let (_, full) = p.evaluate_with(&eqs, false, &mut |_, done| {
            calls += 1;
            done < 100
        });
        assert!(!full);
        assert!(calls >= 1);
    }

    #[test]
    fn compiled_incremental_matches_interpreted_incremental() {
        let p = tiny_problem();
        let eqs = manual_system();
        let (a, _) = p.evaluate_with(&eqs, false, &mut |_, _| true);
        let (b, _) = p.evaluate_with(&eqs, true, &mut |_, _| true);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_oracle_scores_near_zero() {
        // A system that holds BPhy at its initial value, evaluated against
        // observations equal to that constant, must score 0.
        let mut p = tiny_problem();
        let c = p.opts.init.0;
        p.observed = vec![c; p.num_cases()];
        let frozen = [Expr::Num(0.0), Expr::Num(0.0)];
        assert_eq!(p.rmse(&frozen), 0.0);
    }
}
