//! Extension specifications — Table II verbatim.
//!
//! Each extension point `Ext_k` of eqs. (5)–(6) admits a specific set of
//! variables (reflecting the freshwater ecologist's judgement about which
//! forcings can plausibly influence which subprocess), one connector
//! operator (applied *to the initial process*: `+` for the whole-equation
//! extensions 1–3, `×` for the rate extensions 5–9), and the full set of
//! extender operators (`+ − × ÷ log exp`) for growing the new material.
//!
//! Note the paper's Table II skips `Ext4`; we preserve the numbering.

use crate::params::R_KIND;
use gmr_expr::{BinOp, UnOp};
use gmr_hydro::vars::*;
use gmr_tag::Token;

/// An extender operator: binary or unary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtOp {
    /// Binary extender (`+ − × ÷`).
    Bin(BinOp),
    /// Unary extender (`log`, `exp`).
    Un(UnOp),
}

/// The revision grammar for one extension point.
#[derive(Debug, Clone)]
pub struct ExtensionSpec {
    /// Extension id (1–9, no 4).
    pub id: u8,
    /// Variables admissible in this extension (Table II); `R` is encoded as
    /// a `Param` token of kind [`R_KIND`].
    pub variables: Vec<Token>,
    /// The connector operator joining new material to the initial process.
    pub connector: BinOp,
    /// Extender operators for growing the new material.
    pub extenders: Vec<ExtOp>,
}

fn r() -> Token {
    Token::Param {
        kind: R_KIND,
        value: 0.5,
    }
}

/// All extender operators, common to every extension (Table II last row).
pub fn all_extenders() -> Vec<ExtOp> {
    vec![
        ExtOp::Bin(BinOp::Add),
        ExtOp::Bin(BinOp::Sub),
        ExtOp::Bin(BinOp::Mul),
        ExtOp::Bin(BinOp::Div),
        ExtOp::Un(UnOp::Log),
        ExtOp::Un(UnOp::Exp),
    ]
}

/// Table II: the eight extension points of the river process.
pub fn extensions() -> Vec<ExtensionSpec> {
    let spec = |id: u8, vars: Vec<Token>, connector: BinOp| ExtensionSpec {
        id,
        variables: vars,
        connector,
        extenders: all_extenders(),
    };
    vec![
        // Whole-equation extensions (connector +):
        spec(
            1,
            vec![Token::Var(VCD), Token::Var(VPH), Token::Var(VALK), r()],
            BinOp::Add,
        ),
        spec(2, vec![Token::Var(VSD), r()], BinOp::Add),
        spec(
            3,
            vec![Token::Var(VDO), Token::Var(VPH), Token::Var(VALK), r()],
            BinOp::Add,
        ),
        // Rate extensions (connector ×):
        spec(5, vec![Token::Var(VTMP), r()], BinOp::Mul),
        spec(6, vec![Token::Var(VTMP), r()], BinOp::Mul),
        spec(7, vec![Token::Var(VTMP), r()], BinOp::Mul),
        spec(8, vec![Token::Var(VTMP), r()], BinOp::Mul),
        spec(9, vec![Token::Var(VTMP), r()], BinOp::Mul),
    ]
}

/// Cached form of [`extensions`] (the specs are tiny; this is a convenience
/// constant-like accessor used across the workspace).
pub struct Extensions;

/// The extension table as a fresh `Vec` (allocation-light; specs are small).
pub static EXTENSIONS: Extensions = Extensions;

impl Extensions {
    /// All specs.
    pub fn all(&self) -> Vec<ExtensionSpec> {
        extensions()
    }

    /// The spec for a given id.
    pub fn get(&self, id: u8) -> Option<ExtensionSpec> {
        extensions().into_iter().find(|e| e.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_ids() {
        let ids: Vec<u8> = extensions().iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![1, 2, 3, 5, 6, 7, 8, 9],
            "Ext4 is absent in the paper"
        );
    }

    #[test]
    fn connectors_match_table() {
        for e in extensions() {
            match e.id {
                1..=3 => assert_eq!(e.connector, BinOp::Add, "Ext{}", e.id),
                5..=9 => assert_eq!(e.connector, BinOp::Mul, "Ext{}", e.id),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn ext1_admits_carbonate_system_variables() {
        let e = EXTENSIONS.get(1).unwrap();
        assert!(e.variables.contains(&Token::Var(VCD)));
        assert!(e.variables.contains(&Token::Var(VPH)));
        assert!(e.variables.contains(&Token::Var(VALK)));
        assert!(e
            .variables
            .iter()
            .any(|t| matches!(t, Token::Param { kind, .. } if *kind == R_KIND)));
        // But not e.g. temperature.
        assert!(!e.variables.contains(&Token::Var(VTMP)));
    }

    #[test]
    fn rate_extensions_admit_temperature_only() {
        for id in [5u8, 6, 7, 8, 9] {
            let e = EXTENSIONS.get(id).unwrap();
            assert_eq!(e.variables.len(), 2);
            assert!(e.variables.contains(&Token::Var(VTMP)));
        }
    }

    #[test]
    fn every_extension_has_all_six_extenders() {
        for e in extensions() {
            assert_eq!(e.extenders.len(), 6);
            assert!(e.extenders.contains(&ExtOp::Un(UnOp::Log)));
            assert!(e.extenders.contains(&ExtOp::Bin(BinOp::Div)));
        }
    }

    #[test]
    fn missing_id_returns_none() {
        assert!(EXTENSIONS.get(4).is_none());
        assert!(EXTENSIONS.get(10).is_none());
    }
}
