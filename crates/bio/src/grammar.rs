//! Compiling the expert process and Table II into a TAG grammar.
//!
//! This is where the three kinds of prior knowledge of §III-B3 become
//! concrete grammar objects:
//!
//! * **plausible processes** — the marked expert system (eqs. 5–6) becomes
//!   the single initial α-tree, with each `{…} Ext_k` marker compiled to an
//!   `ExtC_k` interior node;
//! * **plausible revisions** — for every extension point, one *connector*
//!   β-tree (rooted at `ExtC_k`, joining new material to the process with
//!   the Table II connector operator, the new material wrapped under an
//!   `ExtE_k` node) and a family of *extender* β-trees (rooted at `ExtE_k`)
//!   for each extender operator; admissible variables become the lexeme
//!   pool of the extension's substitution symbol;
//! * **parameter priors** — the `R` pseudo-parameter's uniform [0, 1]
//!   initialisation range (Table II) is registered with the grammar, and
//!   Table III ranges drive Gaussian mutation one layer up.
//!
//! Because connector and extender β-trees use distinct symbols, connectors
//! can only touch the marked sites of the initial process and extenders can
//! only grow revision material — the paper's mechanism for "preserving the
//! initial process while giving greater freedom to extenders".

use crate::extensions::{extensions, ExtOp};
use crate::manual::{mu_phy_src, name_table, phi_src, LAMBDA_PHY};
use crate::mexpr::MExpr;
use crate::params::{self, R_KIND};
use gmr_expr::{parse, BinOp, Expr, NameTable};
use gmr_tag::tree::{ElemTreeBuilder, NodeIdx};
use gmr_tag::{Grammar, GrammarBuilder, SymId, Token, TreeId, TreeKind};

/// The compiled river grammar plus the handles the rest of the system needs.
#[derive(Debug, Clone)]
pub struct RiverGrammar {
    /// The TAG itself.
    pub grammar: Grammar,
    /// Id of the initial-process α-tree.
    pub alpha: TreeId,
    /// The canonical name table.
    pub names: NameTable,
}

fn leaf_token(e: &Expr) -> Token {
    match e {
        Expr::Num(v) => Token::Num(*v),
        Expr::Param(p) => Token::Param {
            kind: p.kind,
            value: p.value,
        },
        Expr::Var(i) => Token::Var(*i),
        Expr::State(i) => Token::State(*i),
        _ => unreachable!("leaf_token called on a non-leaf"),
    }
}

/// Emit `m` as exactly one child node of `parent` in the α-tree builder.
fn emit(
    b: &mut ElemTreeBuilder,
    parent: NodeIdx,
    m: &MExpr,
    exp: SymId,
    extc: &dyn Fn(u8) -> SymId,
) {
    match m {
        MExpr::Leaf(e) => {
            b.anchor(parent, leaf_token(e));
        }
        MExpr::Bin(op, l, r) => {
            let n = b.interior(parent, exp);
            emit(b, n, l, exp, extc);
            b.anchor(n, Token::Bin(*op));
            emit(b, n, r, exp, extc);
        }
        MExpr::Un(op, a) => {
            let n = b.interior(parent, exp);
            b.anchor(n, Token::Un(*op));
            emit(b, n, a, exp, extc);
        }
        MExpr::Ext(id, inner) => {
            let n = b.interior(parent, extc(*id));
            emit(b, n, inner, exp, extc);
        }
    }
}

/// The marked expert system of eqs. (5)–(6): `[dBPhy, dBZoo]` with the
/// paper's eight extension markers in place.
pub fn marked_system() -> [MExpr; 2] {
    let names = name_table();
    let p = |src: &str| -> MExpr {
        MExpr::from(
            parse(src, &names, |k| params::spec(k).mean)
                .unwrap_or_else(|e| panic!("marked-system fragment failed to parse: {e}\n{src}")),
        )
    };

    // dBPhy/dt = { BPhy * (muPhy - gammaPhy) - BZoo * phi } Ext1
    //   muPhy    = { CUA * f * g * h } Ext3
    //   gammaPhy = { CBRA } Ext5
    //   phi      = { CMFR * lambda } Ext6
    let mu_phy = MExpr::ext(3, p(&mu_phy_src()));
    let gamma_phy = MExpr::ext(5, p("CBRA"));
    let phi = MExpr::ext(6, p(&phi_src()));
    let dbphy = MExpr::ext(
        1,
        MExpr::bin(
            BinOp::Sub,
            MExpr::bin(
                BinOp::Mul,
                p("BPhy"),
                MExpr::bin(BinOp::Sub, mu_phy, gamma_phy),
            ),
            MExpr::bin(BinOp::Mul, p("BZoo"), phi),
        ),
    );

    // dBZoo/dt = { BZoo * (muZoo - gammaZoo - deltaZoo) } Ext2
    //   muZoo    = { CUZ * lambda } Ext7
    //   gammaZoo = { CBRZ } Ext8 + CBMT * phi   (phi inlined, unmarked here)
    //   deltaZoo = { CDZ } Ext9
    let mu_zoo = MExpr::ext(7, p(&format!("CUZ * ({LAMBDA_PHY})")));
    let gamma_zoo = MExpr::bin(
        BinOp::Add,
        MExpr::ext(8, p("CBRZ")),
        p(&format!("CBMT * ({})", phi_src())),
    );
    let delta_zoo = MExpr::ext(9, p("CDZ"));
    let dbzoo = MExpr::ext(
        2,
        MExpr::bin(
            BinOp::Mul,
            p("BZoo"),
            MExpr::bin(
                BinOp::Sub,
                MExpr::bin(BinOp::Sub, mu_zoo, gamma_zoo),
                delta_zoo,
            ),
        ),
    );
    [dbphy, dbzoo]
}

/// Build the full river grammar.
pub fn river_grammar() -> RiverGrammar {
    let mut gb = GrammarBuilder::new();
    let start = gb.sym("S");
    let exp = gb.sym("Exp");
    gb.start(start);

    let specs = extensions();
    // Intern per-extension symbols first so the closure below can look them
    // up immutably.
    let mut extc_syms = Vec::new();
    let mut exte_syms = Vec::new();
    let mut lex_syms = Vec::new();
    for spec in &specs {
        extc_syms.push((spec.id, gb.sym(&format!("ExtC{}", spec.id))));
        exte_syms.push((spec.id, gb.sym(&format!("ExtE{}", spec.id))));
        lex_syms.push((spec.id, gb.sym(&format!("V{}", spec.id))));
    }
    let extc = |id: u8| -> SymId {
        extc_syms
            .iter()
            .find(|(i, _)| *i == id)
            .unwrap_or_else(|| panic!("unknown extension id {id}"))
            .1
    };
    let exte = |id: u8| {
        exte_syms
            .iter()
            .find(|(i, _)| *i == id)
            .expect("known ext")
            .1
    };
    let lex = |id: u8| {
        lex_syms
            .iter()
            .find(|(i, _)| *i == id)
            .expect("known ext")
            .1
    };

    // --- The initial α-tree: both equations under the common root S. ---
    let [dbphy, dbzoo] = marked_system();
    let mut ab = ElemTreeBuilder::new("initial-process", TreeKind::Initial, start);
    let root = ab.root();
    emit(&mut ab, root, &dbphy, exp, &extc);
    emit(&mut ab, root, &dbzoo, exp, &extc);
    let alpha = gb.tree(
        ab.build()
            .expect("initial process α-tree is structurally valid"),
    );

    // --- β-trees and lexeme pools per extension. ---
    for spec in &specs {
        let c_sym = extc(spec.id);
        let e_sym = exte(spec.id);
        let v_sym = lex(spec.id);

        // Connector: ExtC_k → [ ExtC_k*, connector, ExtE_k → [V_k↓] ]
        let mut cb = ElemTreeBuilder::new(
            format!("ext{}-connector", spec.id),
            TreeKind::Auxiliary,
            c_sym,
        );
        let r = cb.root();
        cb.foot(r, c_sym);
        cb.anchor(r, Token::Bin(spec.connector));
        let wrap = cb.interior(r, e_sym);
        cb.subst(wrap, v_sym);
        gb.tree(cb.build().expect("connector β-tree is valid"));

        // Extenders.
        for op in &spec.extenders {
            match op {
                ExtOp::Bin(bop) => {
                    // ExtE_k → [ ExtE_k*, op, V_k↓ ]
                    let mut eb = ElemTreeBuilder::new(
                        format!("ext{}-extender-{}", spec.id, bop.symbol()),
                        TreeKind::Auxiliary,
                        e_sym,
                    );
                    let r = eb.root();
                    eb.foot(r, e_sym);
                    eb.anchor(r, Token::Bin(*bop));
                    eb.subst(r, v_sym);
                    gb.tree(eb.build().expect("extender β-tree is valid"));
                    // Mirrored operand order matters for − and ÷.
                    if matches!(bop, BinOp::Sub | BinOp::Div) {
                        let mut mb = ElemTreeBuilder::new(
                            format!("ext{}-extender-{}-mirror", spec.id, bop.symbol()),
                            TreeKind::Auxiliary,
                            e_sym,
                        );
                        let r = mb.root();
                        mb.subst(r, v_sym);
                        mb.anchor(r, Token::Bin(*bop));
                        mb.foot(r, e_sym);
                        gb.tree(mb.build().expect("mirrored extender β-tree is valid"));
                    }
                }
                ExtOp::Un(uop) => {
                    // ExtE_k → [ op, ExtE_k* ]
                    let mut eb = ElemTreeBuilder::new(
                        format!("ext{}-extender-{}", spec.id, uop.symbol()),
                        TreeKind::Auxiliary,
                        e_sym,
                    );
                    let r = eb.root();
                    eb.anchor(r, Token::Un(*uop));
                    eb.foot(r, e_sym);
                    gb.tree(eb.build().expect("unary extender β-tree is valid"));
                }
            }
        }

        gb.pool(v_sym, spec.variables.iter().copied());
    }
    gb.param_range(R_KIND, 0.0, 1.0);

    let grammar = gb.build().expect("river grammar is well-formed");
    RiverGrammar {
        grammar,
        alpha,
        names: name_table(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::EvalContext;
    use gmr_tag::{lower::lower_system, DerivTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn marked_system_covers_all_extensions() {
        let [dbphy, dbzoo] = marked_system();
        assert_eq!(dbphy.extension_ids(), vec![1, 3, 5, 6]);
        assert_eq!(dbzoo.extension_ids(), vec![2, 7, 8, 9]);
    }

    #[test]
    fn stripped_marked_system_equals_manual() {
        let [m1, m2] = marked_system();
        let [e1, e2] = crate::manual::manual_system();
        assert_eq!(m1.strip(), e1);
        assert_eq!(m2.strip(), e2);
    }

    #[test]
    fn grammar_builds_with_expected_tree_counts() {
        let rg = river_grammar();
        // 1 α + per extension: 1 connector + 6 extenders + 2 mirrors = 9.
        let expected = 1 + 8 * 9;
        assert_eq!(rg.grammar.trees().count(), expected);
    }

    #[test]
    fn connectors_only_adjoin_at_marked_sites() {
        let rg = river_grammar();
        let exp = rg.grammar.symbol("Exp").unwrap();
        assert!(
            rg.grammar.betas_for(exp).is_empty(),
            "plain Exp nodes must be untouchable"
        );
        for id in [1u8, 2, 3, 5, 6, 7, 8, 9] {
            let c = rg.grammar.symbol(&format!("ExtC{id}")).unwrap();
            assert_eq!(
                rg.grammar.betas_for(c).len(),
                1,
                "one connector per ExtC{id}"
            );
            let e = rg.grammar.symbol(&format!("ExtE{id}")).unwrap();
            assert_eq!(
                rg.grammar.betas_for(e).len(),
                8,
                "6 extenders + 2 mirrors per ExtE{id}"
            );
        }
    }

    #[test]
    fn bare_alpha_lowers_to_manual_system() {
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(0);
        let node = rg.grammar.instantiate(rg.alpha, &mut rng);
        let tree = DerivTree { root: node };
        tree.validate(&rg.grammar).unwrap();
        let derived = tree.derived(&rg.grammar);
        let eqs = lower_system(&derived, 2).unwrap();
        let [manual_phy, manual_zoo] = crate::manual::manual_system();
        assert_eq!(eqs[0], manual_phy);
        assert_eq!(eqs[1], manual_zoo);
    }

    #[test]
    fn random_revisions_validate_and_lower() {
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(42);
        let mut row = [0.0f64; gmr_hydro::NUM_VARS];
        row[0] = 15.0;
        row[4] = 20.0;
        for _ in 0..50 {
            let t = rg.grammar.random_tree(&mut rng, 2, 20);
            t.validate(&rg.grammar).unwrap();
            let eqs = lower_system(&t.derived(&rg.grammar), 2).unwrap();
            assert_eq!(eqs.len(), 2);
            let ctx = EvalContext {
                vars: &row,
                state: &[10.0, 2.0],
            };
            assert!(eqs[0].eval(&ctx).is_finite());
            assert!(eqs[1].eval(&ctx).is_finite());
        }
    }

    #[test]
    fn revisions_add_only_admissible_variables() {
        use gmr_hydro::vars::*;
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(7);
        let [manual_phy, manual_zoo] = crate::manual::manual_system();
        let base: std::collections::BTreeSet<u8> = manual_phy
            .variables()
            .into_iter()
            .chain(manual_zoo.variables())
            .collect();
        // The only variables a revision can introduce beyond the expert
        // model are those admitted by Table II.
        let admissible: std::collections::BTreeSet<u8> =
            [VCD, VPH, VALK, VSD, VDO, VTMP].into_iter().collect();
        for _ in 0..100 {
            let t = rg.grammar.random_tree(&mut rng, 2, 25);
            let eqs = lower_system(&t.derived(&rg.grammar), 2).unwrap();
            for eq in eqs {
                for v in eq.variables() {
                    assert!(
                        base.contains(&v) || admissible.contains(&v),
                        "variable {v} is not admissible"
                    );
                }
            }
        }
    }

    #[test]
    fn alpha_preserves_the_initial_process_under_revision() {
        // Whatever is adjoined, the manual equations remain embedded: the
        // connector discipline only *appends* material via + or ×.
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(3);
        let names = &rg.names;
        let t = rg.grammar.random_tree(&mut rng, 6, 12);
        let eqs = lower_system(&t.derived(&rg.grammar), 2).unwrap();
        let shown = eqs[0].display(names).to_string();
        // The Steele light response survives verbatim in the revised phyto
        // equation (the revision cannot rewrite it, only append around it).
        assert!(
            shown.contains("Vlgt / CBL"),
            "initial process mangled: {shown}"
        );
    }
}
