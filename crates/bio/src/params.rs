//! The constant parameters of the biological process — Table III verbatim.
//!
//! Prior knowledge about model parameters enters the framework as "the
//! expected value and allowed range of parameter values" (§III-B3): Gaussian
//! mutation draws around the current value and clamps to the exploration
//! bounds; initial populations start at the mean.

/// Prior specification of one constant parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSpec {
    /// Symbolic name (as written in the paper).
    pub name: &'static str,
    /// Human description from Table III.
    pub description: &'static str,
    /// Prior mean (initial value).
    pub mean: f64,
    /// Lower exploration bound.
    pub min: f64,
    /// Upper exploration bound.
    pub max: f64,
    /// Unit, for display.
    pub unit: &'static str,
}

/// Parameter kind indices. Must match the order of [`PARAMS`].
pub const CUA: u16 = 0;
/// Max growth rate of zooplankton.
pub const CUZ: u16 = 1;
/// Breath (respiration) rate of phytoplankton.
pub const CBRA: u16 = 2;
/// Breath rate of zooplankton.
pub const CBRZ: u16 = 3;
/// Maximum feeding rate.
pub const CMFR: u16 = 4;
/// Death rate of zooplankton.
pub const CDZ: u16 = 5;
/// Half-saturation constant of food.
pub const CFS: u16 = 6;
/// Blue-green optimal temperature.
pub const CBTP1: u16 = 7;
/// Diatom optimal temperature.
pub const CBTP2: u16 = 8;
/// Minimum food concentration.
pub const CFMIN: u16 = 9;
/// Best light for phytoplankton.
pub const CBL: u16 = 10;
/// Half-saturation constant of nitrogen.
pub const CN: u16 = 11;
/// Half-saturation constant of phosphorus.
pub const CP: u16 = 12;
/// Half-saturation constant of silica.
pub const CSI: u16 = 13;
/// Breath multiplier on grazing.
pub const CBMT: u16 = 14;
/// Temperature coefficient for phytoplankton growth.
pub const CPT: u16 = 15;
/// The special kind for revision-introduced random constants
/// ("R denotes a random variable between 0 and 1", Table II).
pub const R_KIND: u16 = 16;

/// Table III, in kind order, with the `R` pseudo-parameter appended.
pub const PARAMS: [ParamSpec; 17] = [
    ParamSpec {
        name: "CUA",
        description: "Max growth rate of phytoplankton",
        mean: 1.89,
        min: 0.1,
        max: 4.0,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CUZ",
        description: "Max growth rate of zooplankton",
        mean: 0.15,
        min: 0.0,
        max: 0.3,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CBRA",
        description: "Breath rate of phytoplankton",
        mean: 0.021,
        min: 0.0,
        max: 0.17,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CBRZ",
        description: "Breath rate of zooplankton",
        mean: 0.05,
        min: 0.0,
        max: 0.2,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CMFR",
        description: "Maximum feeding rate",
        mean: 0.19,
        min: 0.01,
        max: 0.8,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CDZ",
        description: "Death rate of zooplankton",
        mean: 0.04,
        min: 0.01,
        max: 0.1,
        unit: "day^-1",
    },
    ParamSpec {
        name: "CFS",
        description: "Half-saturation constant of food",
        mean: 5.0,
        min: 4.0,
        max: 6.0,
        unit: "ug L^-1",
    },
    ParamSpec {
        name: "CBTP1",
        description: "Blue-green optimal temperature",
        mean: 27.0,
        min: 20.0,
        max: 34.0,
        unit: "degC",
    },
    ParamSpec {
        name: "CBTP2",
        description: "Diatom optimal temperature",
        mean: 5.0,
        min: 1.0,
        max: 20.0,
        unit: "degC",
    },
    ParamSpec {
        name: "CFmin",
        description: "Minimum food concentration",
        mean: 1.0,
        min: 0.1,
        max: 1.9,
        unit: "ug L^-1",
    },
    ParamSpec {
        name: "CBL",
        description: "Best light for phytoplankton",
        mean: 26.78,
        min: 24.0,
        max: 30.0,
        unit: "MJ m^-2 d^-1",
    },
    ParamSpec {
        name: "CN",
        description: "Half-saturation constant of nitrogen",
        mean: 0.0351,
        min: 0.02,
        max: 0.05,
        unit: "mg L^-1",
    },
    ParamSpec {
        name: "CP",
        description: "Half-saturation constant of phosphorus",
        mean: 0.00167,
        min: 0.001,
        max: 0.02,
        unit: "mg L^-1",
    },
    ParamSpec {
        name: "CSI",
        description: "Half-saturation constant of silica",
        mean: 0.00467,
        min: 0.001,
        max: 0.2,
        unit: "mg L^-1",
    },
    ParamSpec {
        name: "CBMT",
        description: "Breath multiplier on grazing",
        mean: 0.04,
        min: 0.01,
        max: 0.07,
        unit: "-",
    },
    ParamSpec {
        name: "CPT",
        description: "Temperature coefficient for phytoplankton growth",
        mean: 0.005,
        min: 0.003,
        max: 0.2,
        unit: "degC^-2",
    },
    ParamSpec {
        name: "R",
        description: "Revision-introduced random constant",
        mean: 0.5,
        min: 0.0,
        max: 1.0,
        unit: "-",
    },
];

/// Number of *calibratable* parameters (excludes the `R` pseudo-kind).
pub const NUM_CALIBRATED: usize = 16;

/// State-variable names: index 0 is phytoplankton biomass, 1 is zooplankton.
pub const STATE_NAMES: [&str; 2] = ["BPhy", "BZoo"];

/// State-variable units (chlorophyll-equivalent biomass concentration).
/// Table III fixes these indirectly: `CFS + BPhy - CFmin` appears in the
/// food-availability term, so the biomasses carry the `ug L^-1` of `CFS`
/// and `CFmin`.
pub const STATE_UNITS: [&str; 2] = ["ug L^-1", "ug L^-1"];

/// Phytoplankton biomass state index.
pub const STATE_BPHY: u8 = 0;
/// Zooplankton biomass state index.
pub const STATE_BZOO: u8 = 1;

/// Look up a parameter spec by kind (including `R`).
pub fn spec(kind: u16) -> &'static ParamSpec {
    &PARAMS[kind as usize]
}

/// Look up a kind by name.
pub fn kind_of(name: &str) -> Option<u16> {
    PARAMS.iter().position(|p| p.name == name).map(|i| i as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_table_order() {
        assert_eq!(PARAMS[CUA as usize].name, "CUA");
        assert_eq!(PARAMS[CFMIN as usize].name, "CFmin");
        assert_eq!(PARAMS[CPT as usize].name, "CPT");
        assert_eq!(PARAMS[R_KIND as usize].name, "R");
    }

    #[test]
    fn all_means_within_bounds() {
        for p in &PARAMS {
            assert!(
                p.min <= p.mean && p.mean <= p.max,
                "{}: mean {} outside [{}, {}]",
                p.name,
                p.mean,
                p.min,
                p.max
            );
        }
    }

    #[test]
    fn table_iii_spot_checks() {
        assert_eq!(spec(CUA).mean, 1.89);
        assert_eq!(spec(CUA).max, 4.0);
        assert_eq!(spec(CP).mean, 0.00167);
        assert_eq!(spec(CBTP1).min, 20.0);
        assert_eq!(spec(CBTP2).max, 20.0);
        assert_eq!(spec(CBL).mean, 26.78);
    }

    #[test]
    fn kind_lookup() {
        assert_eq!(kind_of("CUA"), Some(CUA));
        assert_eq!(kind_of("R"), Some(R_KIND));
        assert_eq!(kind_of("CXX"), None);
    }

    #[test]
    fn names_unique() {
        for (i, a) in PARAMS.iter().enumerate() {
            for b in &PARAMS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }
}
