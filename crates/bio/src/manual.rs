//! The expert model — equations (1) and (2), a.k.a. the M ANUAL baseline.
//!
//! The equations are written in the same surface syntax the pretty-printer
//! emits and parsed against the canonical river [`NameTable`]; parameters
//! take their Table III prior means. Keeping the model as *text* makes the
//! correspondence with the paper auditable at a glance.

use crate::params::{self, PARAMS, STATE_NAMES};
use gmr_expr::{parse, Expr, NameTable};
use gmr_hydro::vars;

/// The canonical name table for the river problem: Table IV variables,
/// the two biomass states, and Table III parameters (incl. `R`).
pub fn name_table() -> NameTable {
    NameTable {
        vars: vars::NAMES.iter().map(|s| s.to_string()).collect(),
        states: STATE_NAMES.iter().map(|s| s.to_string()).collect(),
        params: PARAMS.iter().map(|p| p.name.to_string()).collect(),
    }
}

/// λ_Phy = (B_Phy − C_Fmin) / (C_FS + B_Phy − C_Fmin): the saturating food
/// availability shared by grazing and zooplankton growth.
pub const LAMBDA_PHY: &str = "(BPhy - CFmin) / (CFS + BPhy - CFmin)";

/// f(V_lgt) = (V_lgt / C_BL) · e^{1 − V_lgt / C_BL}: Steele light response.
pub const F_LIGHT: &str = "(Vlgt / CBL) * exp(1 - Vlgt / CBL)";

/// g(V_n, V_p, V_si): Liebig's law of the minimum over the three nutrients.
pub const G_NUTRIENT: &str = "min(min(Vn / (CN + Vn), Vp / (CP + Vp)), Vsi / (CSI + Vsi))";

/// h(V_tmp): two-optimum (cyanobacteria summer / diatom winter) temperature
/// response.
pub const H_TEMP: &str =
    "max(exp(neg(CPT) * pow(Vtmp - CBTP1, 2)), exp(neg(CPT) * pow(Vtmp - CBTP2, 2)))";

/// µ_Phy = C_UA · f · g · h: photosynthetic productivity.
pub fn mu_phy_src() -> String {
    format!("CUA * ({F_LIGHT}) * ({G_NUTRIENT}) * ({H_TEMP})")
}

/// ϕ = C_MFR · λ_Phy: grazing pressure.
pub fn phi_src() -> String {
    format!("CMFR * ({LAMBDA_PHY})")
}

/// dB_Phy/dt = B_Phy · (µ_Phy − γ_Phy) − B_Zoo · ϕ, with γ_Phy = C_BRA.
pub fn dbphy_src() -> String {
    format!(
        "BPhy * (({}) - CBRA) - BZoo * ({})",
        mu_phy_src(),
        phi_src()
    )
}

/// dB_Zoo/dt = B_Zoo · (µ_Zoo − γ_Zoo − δ_Zoo), with µ_Zoo = C_UZ · λ_Phy,
/// γ_Zoo = C_BRZ + C_BMT · ϕ and δ_Zoo = C_DZ.
pub fn dbzoo_src() -> String {
    format!(
        "BZoo * ((CUZ * ({LAMBDA_PHY})) - (CBRZ + CBMT * ({})) - CDZ)",
        phi_src()
    )
}

fn parse_with_priors(src: &str, names: &NameTable) -> Expr {
    parse(src, names, |kind| params::spec(kind).mean)
        .unwrap_or_else(|e| panic!("expert equation failed to parse: {e}\n{src}"))
}

/// The full expert system: `[dBPhy/dt, dBZoo/dt]` with all constants at
/// their prior means. This is the M ANUAL comparator and the seed of every
/// calibration/revision method.
pub fn manual_system() -> [Expr; 2] {
    let names = name_table();
    [
        parse_with_priors(&dbphy_src(), &names),
        parse_with_priors(&dbzoo_src(), &names),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::EvalContext;
    use gmr_hydro::vars::*;

    fn forcing_row() -> [f64; NUM_VARS] {
        let mut row = [0.0; NUM_VARS];
        row[VLGT as usize] = 20.0;
        row[VN as usize] = 2.0;
        row[VP as usize] = 0.05;
        row[VSI as usize] = 3.0;
        row[VTMP as usize] = 24.0;
        row[VDO as usize] = 8.0;
        row[VCD as usize] = 300.0;
        row[VPH as usize] = 7.8;
        row[VALK as usize] = 55.0;
        row[VSD as usize] = 1.2;
        row
    }

    #[test]
    fn equations_parse() {
        let [dbphy, dbzoo] = manual_system();
        assert!(dbphy.size() > 30, "dBPhy should be a substantial tree");
        assert!(dbzoo.size() > 15);
    }

    #[test]
    fn manual_matches_hand_computation() {
        let [dbphy, dbzoo] = manual_system();
        let row = forcing_row();
        let bphy = 10.0;
        let bzoo = 2.0;
        let ctx = EvalContext {
            vars: &row,
            state: &[bphy, bzoo],
        };

        // Hand-compute eq. (1) with Table III means.
        let f = (20.0 / 26.78) * (1.0_f64 - 20.0 / 26.78).exp();
        let g = (2.0_f64 / (0.0351 + 2.0))
            .min(0.05 / (0.00167 + 0.05))
            .min(3.0 / (0.00467 + 3.0));
        let h = (-0.005_f64 * (24.0_f64 - 27.0).powi(2))
            .exp()
            .max((-0.005_f64 * (24.0_f64 - 5.0).powi(2)).exp());
        let mu = 1.89 * f * g * h;
        let lambda = (bphy - 1.0) / (5.0 + bphy - 1.0);
        let phi = 0.19 * lambda;
        let expect_phy = bphy * (mu - 0.021) - bzoo * phi;
        assert!(
            (dbphy.eval(&ctx) - expect_phy).abs() < 1e-12,
            "{} vs {}",
            dbphy.eval(&ctx),
            expect_phy
        );

        let expect_zoo = bzoo * ((0.15 * lambda) - (0.05 + 0.04 * phi) - 0.04);
        assert!((dbzoo.eval(&ctx) - expect_zoo).abs() < 1e-12);
    }

    #[test]
    fn light_response_peaks_at_cbl() {
        let names = name_table();
        let f = parse(F_LIGHT, &names, |k| params::spec(k).mean).unwrap();
        let at = |l: f64| {
            let mut row = [0.0; NUM_VARS];
            row[VLGT as usize] = l;
            f.eval(&EvalContext {
                vars: &row,
                state: &[0.0, 0.0],
            })
        };
        let peak = at(26.78);
        assert!((peak - 1.0).abs() < 1e-9, "Steele response peaks at 1.0");
        assert!(at(10.0) < peak);
        assert!(at(32.0) < peak);
    }

    #[test]
    fn temperature_response_has_two_optima() {
        let names = name_table();
        let h = parse(H_TEMP, &names, |k| params::spec(k).mean).unwrap();
        let at = |t: f64| {
            let mut row = [0.0; NUM_VARS];
            row[VTMP as usize] = t;
            h.eval(&EvalContext {
                vars: &row,
                state: &[0.0, 0.0],
            })
        };
        // Near-unity at both optima, lower in between.
        assert!((at(27.0) - 1.0).abs() < 1e-9);
        assert!((at(5.0) - 1.0).abs() < 1e-9);
        assert!(at(16.0) < 0.7);
    }

    #[test]
    fn nutrient_limitation_is_liebig_minimum() {
        let names = name_table();
        let g = parse(G_NUTRIENT, &names, |k| params::spec(k).mean).unwrap();
        let mut row = forcing_row();
        row[VP as usize] = 0.0005; // starve phosphorus
        let v = g.eval(&EvalContext {
            vars: &row,
            state: &[0.0, 0.0],
        });
        let expect = 0.0005 / (0.00167 + 0.0005);
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_display() {
        let names = name_table();
        let [dbphy, _] = manual_system();
        let shown = dbphy.display(&names).to_string();
        let re = parse(&shown, &names, |k| params::spec(k).mean).unwrap();
        assert_eq!(re, dbphy);
        // The rendered equation mentions the paper's key constants.
        for c in ["CUA", "CBRA", "CMFR", "CBL", "CBTP1"] {
            assert!(shown.contains(c), "missing {c} in {shown}");
        }
    }
}
