//! Reading side of the journal: schema validation, human summaries, and
//! Chrome trace-event conversion. Backs the `gmr-trace` CLI and the
//! round-trip tests.

use crate::journal::SCHEMA;
use crate::json::{parse, Value};
use std::collections::BTreeMap;

/// Event `type` tags the validator accepts.
pub const KNOWN_TYPES: [&str; 12] = [
    "span",
    "gen",
    "elite",
    "opcodes",
    "cache_evict",
    "round",
    "stall",
    "metrics",
    "note",
    "request",
    "access",
    "backend",
];

/// A parsed journal: the header object and one [`Value`] per event line.
pub struct ParsedJournal {
    /// The header line.
    pub header: Value,
    /// Event lines, file order.
    pub events: Vec<Value>,
}

/// Parse without validating beyond per-line JSON well-formedness.
pub fn parse_journal(src: &str) -> Result<ParsedJournal, String> {
    let mut lines = src.lines();
    let first = lines.next().ok_or_else(|| "empty journal".to_string())?;
    let header = parse(first).map_err(|e| format!("header line: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse(line).map_err(|e| format!("line {}: {e}", i + 2))?);
    }
    Ok(ParsedJournal { header, events })
}

fn require_u64(obj: &Value, key: &str, line: usize, errs: &mut Vec<String>) {
    if obj.get(key).and_then(Value::as_u64).is_none() {
        errs.push(format!("line {line}: missing or non-integer field {key:?}"));
    }
}

fn require_str(obj: &Value, key: &str, line: usize, errs: &mut Vec<String>) {
    if obj.get(key).and_then(Value::as_str).is_none() {
        errs.push(format!("line {line}: missing or non-string field {key:?}"));
    }
}

fn require_bool(obj: &Value, key: &str, line: usize, errs: &mut Vec<String>) {
    if obj.get(key).and_then(Value::as_bool).is_none() {
        errs.push(format!("line {line}: missing or non-boolean field {key:?}"));
    }
}

fn require_hex_id(obj: &Value, key: &str, line: usize, errs: &mut Vec<String>) {
    let ok = obj
        .get(key)
        .and_then(Value::as_str)
        .and_then(crate::journal::parse_hex_id)
        .is_some();
    if !ok {
        errs.push(format!(
            "line {line}: field {key:?} must be a 16-digit lowercase hex id"
        ));
    }
}

fn require_num_or_null(obj: &Value, key: &str, line: usize, errs: &mut Vec<String>) {
    match obj.get(key) {
        Some(Value::Num(_)) | Some(Value::Null) => {}
        _ => errs.push(format!(
            "line {line}: missing field {key:?} (number or null)"
        )),
    }
}

/// Validate a `gmr-journal/v1` JSONL text. Returns every failure found
/// (empty = valid): bad schema tag, unparsable lines (truncation), event
/// count mismatches, unknown event types, missing per-type fields, and
/// non-monotone `seq` / `t_us`.
pub fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let mut lines = src.lines();
    let Some(first) = lines.next() else {
        return vec!["empty journal".into()];
    };
    let header = match parse(first) {
        Ok(h) => h,
        Err(e) => return vec![format!("header line unparsable: {e}")],
    };
    match header.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => errs.push(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => errs.push("header missing \"schema\"".into()),
    }
    for key in ["events", "dropped", "next_seq"] {
        require_u64(&header, key, 1, &mut errs);
    }

    let mut count = 0usize;
    let mut prev_seq: Option<u64> = None;
    let mut prev_t: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        if line.trim().is_empty() {
            errs.push(format!("line {lineno}: blank line inside journal"));
            continue;
        }
        let obj = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                errs.push(format!(
                    "line {lineno}: unparsable ({e}) — truncated journal?"
                ));
                continue;
            }
        };
        count += 1;
        require_u64(&obj, "seq", lineno, &mut errs);
        require_u64(&obj, "t_us", lineno, &mut errs);
        let ty = obj.get("type").and_then(Value::as_str);
        match ty {
            Some(t) if KNOWN_TYPES.contains(&t) => {}
            Some(t) => errs.push(format!("line {lineno}: unknown event type {t:?}")),
            None => errs.push(format!("line {lineno}: missing \"type\"")),
        }
        if let Some(seq) = obj.get("seq").and_then(Value::as_u64) {
            if let Some(p) = prev_seq {
                if seq <= p {
                    errs.push(format!("line {lineno}: seq {seq} not after {p}"));
                }
            }
            prev_seq = Some(seq);
        }
        if let Some(t) = obj.get("t_us").and_then(Value::as_u64) {
            if let Some(p) = prev_t {
                if t < p {
                    errs.push(format!("line {lineno}: t_us {t} went backwards from {p}"));
                }
            }
            prev_t = Some(t);
        }
        match ty {
            Some("span") => {
                require_str(&obj, "name", lineno, &mut errs);
                for key in ["tid", "depth", "start_us", "dur_us"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
            }
            Some("gen") => {
                for key in [
                    "seed",
                    "generation",
                    "evaluations",
                    "steps",
                    "elapsed_us",
                    "d_evals",
                    "d_fulls",
                    "d_shorts",
                    "d_cache_hits",
                    "d_cache_misses",
                ] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
                require_num_or_null(&obj, "best", lineno, &mut errs);
                require_num_or_null(&obj, "mean", lineno, &mut errs);
            }
            Some("elite") => {
                for key in ["seed", "generation", "size"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
                require_num_or_null(&obj, "fitness", lineno, &mut errs);
                require_str(&obj, "origin", lineno, &mut errs);
            }
            Some("opcodes") => {
                for key in ["seed", "generation", "total"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
                match obj.get("pairs").and_then(Value::as_arr) {
                    Some(pairs) => {
                        for p in pairs {
                            let ok = p.as_arr().is_some_and(|q| {
                                q.len() == 4
                                    && q[0].as_str().is_some()
                                    && q[1].as_str().is_some()
                                    && q[2].as_str().is_some_and(|s| matches!(s, "l" | "r" | "u"))
                                    && q[3].as_u64().is_some()
                            });
                            if !ok {
                                errs.push(format!(
                                    "line {lineno}: \"pairs\" entries must be \
                                     [parent, child, \"l\"|\"r\"|\"u\", count]"
                                ));
                                break;
                            }
                        }
                    }
                    None => errs.push(format!("line {lineno}: missing array field \"pairs\"")),
                }
            }
            Some("cache_evict") => {
                for key in ["shed_surrogate", "shed_full", "len_after"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
            }
            Some("round") => {
                require_str(&obj, "kind", lineno, &mut errs);
                for key in [
                    "seed",
                    "round",
                    "len",
                    "workers",
                    "candidates",
                    "steals",
                    "busy_us",
                    "idle_us",
                ] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
            }
            Some("stall") => {
                for key in ["round", "worker", "round_us"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
            }
            Some("metrics") => {
                require_str(&obj, "scope", lineno, &mut errs);
                if !matches!(obj.get("registry"), Some(Value::Obj(_))) {
                    errs.push(format!("line {lineno}: \"registry\" must be an object"));
                }
            }
            Some("note") => {
                require_str(&obj, "name", lineno, &mut errs);
                require_str(&obj, "msg", lineno, &mut errs);
            }
            Some("request") => {
                require_str(&obj, "endpoint", lineno, &mut errs);
                for key in ["status", "dur_us", "batch"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
            }
            Some("access") => {
                for key in ["trace", "span", "parent"] {
                    require_hex_id(&obj, key, lineno, &mut errs);
                }
                for key in ["method", "path", "model", "table"] {
                    require_str(&obj, key, lineno, &mut errs);
                }
                for key in ["status", "queue_us", "sim_us", "dur_us"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
                for key in ["shed", "batched"] {
                    require_bool(&obj, key, lineno, &mut errs);
                }
            }
            Some("backend") => {
                for key in ["idx", "restarts"] {
                    require_u64(&obj, key, lineno, &mut errs);
                }
                for key in ["addr", "state"] {
                    require_str(&obj, key, lineno, &mut errs);
                }
            }
            _ => {}
        }
    }
    if let Some(declared) = header.get("events").and_then(Value::as_u64) {
        if declared as usize != count {
            errs.push(format!(
                "header declares {declared} events but {count} parsed — truncated journal?"
            ));
        }
    }
    errs
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}

/// Render the human summary: top spans, per-generation timing per run
/// (seed), pool utilization, elite lineage, cache/stall counts.
pub fn summary(src: &str) -> Result<String, String> {
    let j = parse_journal(src)?;
    let mut out = String::new();
    let dropped = j.header.get("dropped").and_then(Value::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "journal: {} events ({} dropped to the ring bound)\n",
        j.events.len(),
        dropped
    ));

    // --- spans ---
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for e in &j.events {
        if e.get("type").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
        let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
        let agg = spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_us += dur;
        agg.max_us = agg.max_us.max(dur);
    }
    if !spans.is_empty() {
        out.push_str("\ntop spans by total time:\n");
        out.push_str(&format!(
            "  {:<22} {:>8} {:>12} {:>10} {:>10}\n",
            "span", "count", "total ms", "mean ms", "max ms"
        ));
        let mut rows: Vec<(&String, &SpanAgg)> = spans.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_us));
        for (name, agg) in rows.into_iter().take(12) {
            out.push_str(&format!(
                "  {:<22} {:>8} {:>12.3} {:>10.3} {:>10.3}\n",
                name,
                agg.count,
                ms(agg.total_us),
                ms(agg.total_us) / agg.count.max(1) as f64,
                ms(agg.max_us)
            ));
        }
    }

    // --- per-generation tables, grouped by seed ---
    let mut by_seed: BTreeMap<u64, Vec<&Value>> = BTreeMap::new();
    for e in &j.events {
        if e.get("type").and_then(Value::as_str) == Some("gen") {
            let seed = e.get("seed").and_then(Value::as_u64).unwrap_or(0);
            by_seed.entry(seed).or_default().push(e);
        }
    }
    for (seed, gens) in &by_seed {
        out.push_str(&format!("\nrun seed {seed}: {} generations\n", gens.len()));
        out.push_str(&format!(
            "  {:>4} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10}\n",
            "gen", "best", "mean", "evals", "fulls", "shorts", "ms"
        ));
        let shown: Vec<&&Value> = if gens.len() > 12 {
            gens.iter()
                .take(6)
                .chain(gens.iter().rev().take(6).rev())
                .collect()
        } else {
            gens.iter().collect()
        };
        let mut last_gen = None;
        for e in shown {
            let gen = e.get("generation").and_then(Value::as_u64).unwrap_or(0);
            if let Some(lg) = last_gen {
                if gen > lg + 1 {
                    out.push_str("   ...\n");
                }
            }
            last_gen = Some(gen);
            let best = e.get("best").and_then(Value::as_f64).unwrap_or(f64::NAN);
            let mean = e.get("mean").and_then(Value::as_f64).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "  {:>4} {:>12.4} {:>12.4} {:>8} {:>8} {:>8} {:>10.2}\n",
                gen,
                best,
                mean,
                e.get("d_evals").and_then(Value::as_u64).unwrap_or(0),
                e.get("d_fulls").and_then(Value::as_u64).unwrap_or(0),
                e.get("d_shorts").and_then(Value::as_u64).unwrap_or(0),
                ms(e.get("elapsed_us").and_then(Value::as_u64).unwrap_or(0)),
            ));
        }
    }

    // --- pool utilization: the final round event per seed carries the
    // cumulative busy/idle totals ---
    let mut last_round: BTreeMap<u64, &Value> = BTreeMap::new();
    for e in &j.events {
        if e.get("type").and_then(Value::as_str) == Some("round") {
            let seed = e.get("seed").and_then(Value::as_u64).unwrap_or(0);
            last_round.insert(seed, e);
        }
    }
    if !last_round.is_empty() {
        out.push_str("\npool utilization (cumulative at last round):\n");
        for (seed, e) in &last_round {
            let busy = e.get("busy_us").and_then(Value::as_u64).unwrap_or(0);
            let idle = e.get("idle_us").and_then(Value::as_u64).unwrap_or(0);
            let util = if busy + idle == 0 {
                0.0
            } else {
                100.0 * busy as f64 / (busy + idle) as f64
            };
            out.push_str(&format!(
                "  seed {seed}: {} rounds, {} workers, {} candidates, {} steals, busy {:.1} ms / idle {:.1} ms ({util:.1}% busy)\n",
                e.get("round").and_then(Value::as_u64).unwrap_or(0),
                e.get("workers").and_then(Value::as_u64).unwrap_or(0),
                e.get("candidates").and_then(Value::as_u64).unwrap_or(0),
                e.get("steals").and_then(Value::as_u64).unwrap_or(0),
                ms(busy),
                ms(idle),
            ));
        }
    }

    // --- elite lineage ---
    let elites: Vec<&Value> = j
        .events
        .iter()
        .filter(|e| e.get("type").and_then(Value::as_str) == Some("elite"))
        .collect();
    if !elites.is_empty() {
        out.push_str(&format!("\nelite changes: {}\n", elites.len()));
        for e in elites.iter().take(10) {
            out.push_str(&format!(
                "  seed {} gen {:>4}: fitness {:.5} (size {}, via {})\n",
                e.get("seed").and_then(Value::as_u64).unwrap_or(0),
                e.get("generation").and_then(Value::as_u64).unwrap_or(0),
                e.get("fitness").and_then(Value::as_f64).unwrap_or(f64::NAN),
                e.get("size").and_then(Value::as_u64).unwrap_or(0),
                e.get("origin").and_then(Value::as_str).unwrap_or("?"),
            ));
        }
        if elites.len() > 10 {
            out.push_str(&format!("  ... and {} more\n", elites.len() - 10));
        }
    }

    // --- served requests (the serving stack's access log) ---
    let mut req_agg: BTreeMap<(String, u64), (u64, u64, u64)> = BTreeMap::new();
    for e in &j.events {
        if e.get("type").and_then(Value::as_str) != Some("request") {
            continue;
        }
        let endpoint = e
            .get("endpoint")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let status = e.get("status").and_then(Value::as_u64).unwrap_or(0);
        let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
        let batch = e.get("batch").and_then(Value::as_u64).unwrap_or(0);
        let slot = req_agg.entry((endpoint, status)).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += dur;
        slot.2 += batch;
    }
    if !req_agg.is_empty() {
        out.push_str(&format!(
            "\n{:<16} {:>6} {:>8} {:>10} {:>10}\n",
            "endpoint", "status", "count", "mean ms", "mean batch"
        ));
        for ((endpoint, status), (count, dur_us, batch)) in &req_agg {
            out.push_str(&format!(
                "{endpoint:<16} {status:>6} {count:>8} {:>10.3} {:>10.2}\n",
                ms(*dur_us / (*count).max(1)),
                *batch as f64 / (*count).max(1) as f64,
            ));
        }
    }

    let count_of = |tag: &str| {
        j.events
            .iter()
            .filter(|e| e.get("type").and_then(Value::as_str) == Some(tag))
            .count()
    };
    let (evicts, stalls) = (count_of("cache_evict"), count_of("stall"));
    out.push_str(&format!(
        "\ncache eviction waves: {evicts}   worker stall warnings: {stalls}\n"
    ));
    Ok(out)
}

/// Convert to Chrome trace-event JSON (the `{"traceEvents": [...]}` form
/// Perfetto and `about://tracing` load): spans become `X` complete events,
/// generation stats become `C` counter tracks, elite changes become `i`
/// instants.
pub fn to_chrome(src: &str) -> Result<String, String> {
    let j = parse_journal(src)?;
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&body);
    };
    let mut tids_seen: Vec<u64> = Vec::new();
    for e in &j.events {
        let t_us = e.get("t_us").and_then(Value::as_u64).unwrap_or(0);
        match e.get("type").and_then(Value::as_str) {
            Some("span") => {
                let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
                let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
                let start = e.get("start_us").and_then(Value::as_u64).unwrap_or(0);
                let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                if !tids_seen.contains(&tid) {
                    tids_seen.push(tid);
                }
                let mut esc = String::new();
                crate::json::push_escaped(&mut esc, name);
                let arg = e
                    .get("arg")
                    .and_then(Value::as_u64)
                    .map(|a| format!(", \"args\": {{\"arg\": {a}}}"))
                    .unwrap_or_default();
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\": {esc}, \"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"ts\": {start}, \"dur\": {dur}{arg}}}"
                    ),
                );
            }
            Some("gen") => {
                let seed = e.get("seed").and_then(Value::as_u64).unwrap_or(0);
                if let Some(best) = e.get("best").and_then(Value::as_f64) {
                    if best.is_finite() {
                        push_event(
                            &mut out,
                            format!(
                                "{{\"name\": \"best fitness (seed {seed})\", \"ph\": \"C\", \"pid\": 1, \"ts\": {t_us}, \"args\": {{\"best\": {best}}}}}"
                            ),
                        );
                    }
                }
            }
            Some("elite") => {
                let seed = e.get("seed").and_then(Value::as_u64).unwrap_or(0);
                let origin = e.get("origin").and_then(Value::as_str).unwrap_or("?");
                let mut esc = String::new();
                crate::json::push_escaped(&mut esc, &format!("elite via {origin} (seed {seed})"));
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\": {esc}, \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 0, \"ts\": {t_us}}}"
                    ),
                );
            }
            Some("stall") => {
                let worker = e.get("worker").and_then(Value::as_u64).unwrap_or(0);
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\": \"worker {worker} stalled\", \"ph\": \"i\", \"s\": \"p\", \"pid\": 1, \"tid\": {worker}, \"ts\": {t_us}}}"
                    ),
                );
            }
            Some("access") => {
                push_event(&mut out, access_x_event(e, 1, 0));
            }
            _ => {}
        }
    }
    for tid in tids_seen {
        push_event(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": \"worker-{tid}\"}}}}"
            ),
        );
    }
    out.push_str("\n]}\n");
    Ok(out)
}

/// The synthetic Chrome tid `access` events render on (they carry no
/// worker thread id of their own).
const ACCESS_TID: u64 = 1_000_000;

/// Render one `access` event as a Chrome `X` complete event on `pid`'s
/// access track, time-shifted by `offset` µs. The span covers
/// `[t_us - dur_us, t_us]` — the event is emitted when the response is
/// written, so its end is the record timestamp.
fn access_x_event(e: &Value, pid: usize, offset: u64) -> String {
    let path = e.get("path").and_then(Value::as_str).unwrap_or("?");
    let t_us = e.get("t_us").and_then(Value::as_u64).unwrap_or(0);
    let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
    let start = t_us.saturating_sub(dur) + offset;
    let mut esc = String::new();
    crate::json::push_escaped(&mut esc, &format!("access {path}"));
    let s = |key: &str| e.get(key).and_then(Value::as_str).unwrap_or("").to_string();
    let n = |key: &str| e.get(key).and_then(Value::as_u64).unwrap_or(0);
    let b = |key: &str| e.get(key).and_then(Value::as_bool).unwrap_or(false);
    let mut args = String::new();
    for key in ["trace", "span", "parent", "model", "table"] {
        args.push_str(&format!(", \"{key}\": "));
        crate::json::push_escaped(&mut args, &s(key));
    }
    format!(
        "{{\"name\": {esc}, \"ph\": \"X\", \"pid\": {pid}, \"tid\": {ACCESS_TID}, \
         \"ts\": {start}, \"dur\": {dur}, \"args\": {{\"status\": {}, \"queue_us\": {}, \
         \"sim_us\": {}, \"shed\": {}, \"batched\": {}{args}}}}}",
        n("status"),
        n("queue_us"),
        n("sim_us"),
        b("shed"),
        b("batched"),
    )
}

/// The result of stitching one gateway journal plus N backend journals.
pub struct Stitched {
    /// Chrome trace-event JSON covering every process.
    pub chrome: String,
    /// Gateway `/simulate` hops that carried a trace id and succeeded.
    pub hops: usize,
    /// Hops that resolved to exactly one backend `access` span.
    pub resolved: usize,
    /// Human-readable descriptions of every unresolved or ambiguous hop.
    pub orphans: Vec<String>,
}

/// Merge journals from the gateway (first input) and its backends (the
/// rest) into one cross-process Chrome trace: one `pid` per process,
/// every span and `access` event on a wall-clock-aligned timeline, and
/// flow arrows connecting each gateway hop to the backend `access` span
/// that served it and each backend `access` span to the VM-sweep span
/// its simulation ran in (batch members fan into their shared sweep).
///
/// Inputs are `(label, jsonl)` pairs. Every journal is strictly
/// validated first; any validation failure aborts the stitch. A
/// successfully proxied gateway `/simulate` hop (status 200) that does
/// not match exactly one backend `access` event is reported in
/// `orphans` — the CLI turns a non-empty list into a non-zero exit.
pub fn stitch(inputs: &[(String, String)]) -> Result<Stitched, String> {
    if inputs.len() < 2 {
        return Err("stitch needs a gateway journal plus at least one backend journal".into());
    }
    let mut parsed = Vec::new();
    for (label, src) in inputs {
        let errs = validate(src);
        if !errs.is_empty() {
            return Err(format!("journal {label:?} invalid: {}", errs.join("; ")));
        }
        let j = parse_journal(src)?;
        let t0 = j
            .header
            .get("t0_unix_us")
            .and_then(Value::as_u64)
            .ok_or_else(|| {
                format!("journal {label:?} has no t0_unix_us anchor — cannot align timelines")
            })?;
        parsed.push((label.as_str(), t0, j));
    }
    let base = parsed.iter().map(|(_, t0, _)| *t0).min().unwrap_or(0);

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&body);
    };

    // Backend access events by trace id, and per-backend sweep spans by
    // trace id (the batcher stamps each member span's `arg` with the
    // member's trace id), collected up front so the gateway pass can
    // resolve hops and emit flows in one sweep.
    struct Hit {
        pid: usize,
        ts: u64, // aligned start of the target event
        tid: u64,
    }
    let mut backend_access: BTreeMap<String, Vec<Hit>> = BTreeMap::new();
    let mut sweep_members: BTreeMap<(usize, u64), Vec<Hit>> = BTreeMap::new();
    for (pid0, (_, t0, j)) in parsed.iter().enumerate().skip(1) {
        let pid = pid0 + 1;
        let offset = t0 - base;
        for e in &j.events {
            match e.get("type").and_then(Value::as_str) {
                Some("access") => {
                    if let Some(trace) = e.get("trace").and_then(Value::as_str) {
                        let t_us = e.get("t_us").and_then(Value::as_u64).unwrap_or(0);
                        let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                        backend_access
                            .entry(trace.to_string())
                            .or_default()
                            .push(Hit {
                                pid,
                                ts: t_us.saturating_sub(dur) + offset,
                                tid: ACCESS_TID,
                            });
                    }
                }
                Some("span")
                    if e.get("name").and_then(Value::as_str) == Some("serve.sweep.member") =>
                {
                    if let Some(trace) = e.get("arg").and_then(Value::as_u64) {
                        let start = e.get("start_us").and_then(Value::as_u64).unwrap_or(0);
                        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
                        sweep_members.entry((pid, trace)).or_default().push(Hit {
                            pid,
                            ts: start + offset,
                            tid,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    let mut hops = 0usize;
    let mut resolved = 0usize;
    let mut orphans = Vec::new();
    for (pid0, (label, t0, j)) in parsed.iter().enumerate() {
        let pid = pid0 + 1;
        let offset = t0 - base;
        let mut esc = String::new();
        crate::json::push_escaped(&mut esc, label);
        push_event(
            &mut out,
            format!("{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"args\": {{\"name\": {esc}}}}}"),
        );
        let mut tids_seen: Vec<u64> = Vec::new();
        for e in &j.events {
            match e.get("type").and_then(Value::as_str) {
                Some("span") => {
                    let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
                    let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
                    let start = e.get("start_us").and_then(Value::as_u64).unwrap_or(0) + offset;
                    let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                    if !tids_seen.contains(&tid) {
                        tids_seen.push(tid);
                    }
                    let mut esc = String::new();
                    crate::json::push_escaped(&mut esc, name);
                    let arg = e
                        .get("arg")
                        .and_then(Value::as_u64)
                        .map(|a| format!(", \"args\": {{\"arg\": {a}}}"))
                        .unwrap_or_default();
                    push_event(
                        &mut out,
                        format!(
                            "{{\"name\": {esc}, \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {start}, \"dur\": {dur}{arg}}}"
                        ),
                    );
                }
                Some("access") => {
                    push_event(&mut out, access_x_event(e, pid, offset));
                    let trace = e.get("trace").and_then(Value::as_str).unwrap_or("");
                    let t_us = e.get("t_us").and_then(Value::as_u64).unwrap_or(0);
                    let dur = e.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                    let start = t_us.saturating_sub(dur) + offset;
                    if pid == 1 {
                        // A successfully proxied simulate hop must have
                        // landed on exactly one backend.
                        let path = e.get("path").and_then(Value::as_str).unwrap_or("");
                        let status = e.get("status").and_then(Value::as_u64).unwrap_or(0);
                        if path == "gw:/simulate" && status == 200 {
                            hops += 1;
                            match backend_access.get(trace).map(Vec::as_slice) {
                                Some([hit]) => {
                                    resolved += 1;
                                    push_event(
                                        &mut out,
                                        format!(
                                            "{{\"name\": \"hop\", \"cat\": \"trace\", \"ph\": \"s\", \"id\": \"{trace}\", \"pid\": 1, \"tid\": {ACCESS_TID}, \"ts\": {start}}}"
                                        ),
                                    );
                                    push_event(
                                        &mut out,
                                        format!(
                                            "{{\"name\": \"hop\", \"cat\": \"trace\", \"ph\": \"f\", \"bp\": \"e\", \"id\": \"{trace}\", \"pid\": {}, \"tid\": {}, \"ts\": {}}}",
                                            hit.pid, hit.tid, hit.ts
                                        ),
                                    );
                                }
                                Some(hits) => orphans.push(format!(
                                    "trace {trace}: gateway hop matches {} backend access spans",
                                    hits.len()
                                )),
                                None => orphans.push(format!(
                                    "trace {trace}: gateway hop has no backend access span"
                                )),
                            }
                        }
                    } else if let Some(id) = crate::journal::parse_hex_id(trace) {
                        // Backend access → the sweep-member span its
                        // simulation ran in (batch members share a sweep).
                        if let Some(hits) = sweep_members.get(&(pid, id)) {
                            for hit in hits {
                                push_event(
                                    &mut out,
                                    format!(
                                        "{{\"name\": \"sweep\", \"cat\": \"trace\", \"ph\": \"s\", \"id\": \"{trace}-sweep\", \"pid\": {pid}, \"tid\": {ACCESS_TID}, \"ts\": {start}}}"
                                    ),
                                );
                                push_event(
                                    &mut out,
                                    format!(
                                        "{{\"name\": \"sweep\", \"cat\": \"trace\", \"ph\": \"f\", \"bp\": \"e\", \"id\": \"{trace}-sweep\", \"pid\": {}, \"tid\": {}, \"ts\": {}}}",
                                        hit.pid, hit.tid, hit.ts
                                    ),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for tid in tids_seen {
            push_event(
                &mut out,
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \"worker-{tid}\"}}}}"
                ),
            );
        }
        push_event(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {ACCESS_TID}, \"args\": {{\"name\": \"access\"}}}}"
            ),
        );
    }
    out.push_str("\n]}\n");
    Ok(Stitched {
        chrome: out,
        hops,
        resolved,
        orphans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Event, Journal};

    fn sample_journal() -> String {
        let j = Journal::new(256);
        j.push(Event::Span {
            name: "gen.evaluate",
            tid: 0,
            depth: 0,
            start_us: 5,
            dur_us: 100,
            arg: Some(1),
        });
        j.push(Event::Gen {
            seed: 42,
            generation: 0,
            best: 2.0,
            mean: 3.0,
            evaluations: 32,
            steps: 2048,
            elapsed_us: 900,
            d_evals: 32,
            d_fulls: 30,
            d_shorts: 2,
            d_cache_hits: 0,
            d_cache_misses: 32,
        });
        j.push(Event::EliteChange {
            seed: 42,
            generation: 0,
            fitness: 2.0,
            size: 5,
            origin: "init",
        });
        j.push(Event::Round {
            seed: 42,
            round: 1,
            kind: "evaluate",
            len: 32,
            workers: 4,
            candidates: 32,
            steals: 3,
            busy_us: 800,
            idle_us: 100,
        });
        j.push(Event::Request {
            endpoint: "/simulate",
            status: 200,
            dur_us: 350,
            batch: 4,
        });
        j.to_jsonl()
    }

    #[test]
    fn valid_journal_passes() {
        let errs = validate(&sample_journal());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn wrapped_ring_round_trips_through_the_strict_parser() {
        // Overfill a tiny ring: the flushed JSONL must still validate, and
        // the parsed header must account for every dropped event.
        let j = Journal::new(8);
        for i in 0..20u64 {
            j.push(Event::Note {
                name: "wrap",
                msg: format!("event {i}"),
            });
        }
        let text = j.to_jsonl();
        let errs = validate(&text);
        assert!(errs.is_empty(), "{errs:?}");
        let parsed = parse_journal(&text).expect("round-trip parse");
        assert_eq!(parsed.events.len(), 8);
        let h = |k| parsed.header.get(k).and_then(Value::as_u64);
        assert_eq!(h("dropped"), Some(12));
        assert_eq!(h("next_seq"), Some(20));
        // The survivors are the newest events, seq-contiguous.
        let seq = |v: &Value| v.get("seq").and_then(Value::as_u64);
        assert_eq!(seq(parsed.events.first().unwrap()), Some(12));
        assert_eq!(seq(parsed.events.last().unwrap()), Some(19));
    }

    #[test]
    fn truncated_journal_fails() {
        let text = sample_journal();
        // Cut mid-way through the final line.
        let cut = &text[..text.len() - 20];
        let errs = validate(cut);
        assert!(!errs.is_empty(), "truncation must be detected");
        assert!(errs.iter().any(|e| e.contains("truncated")), "{errs:?}");
    }

    #[test]
    fn wrong_schema_fails() {
        let text = sample_journal().replace("gmr-journal/v1", "gmr-journal/v0");
        assert!(validate(&text).iter().any(|e| e.contains("schema")));
    }

    #[test]
    fn unknown_event_type_fails() {
        let text = sample_journal().replace("\"type\": \"gen\"", "\"type\": \"mystery\"");
        assert!(validate(&text)
            .iter()
            .any(|e| e.contains("unknown event type")));
    }

    #[test]
    fn garbage_line_fails() {
        let mut text = sample_journal();
        text.push_str("not json at all\n");
        assert!(!validate(&text).is_empty());
    }

    #[test]
    fn summary_mentions_spans_pool_and_elites() {
        let s = summary(&sample_journal()).unwrap();
        assert!(s.contains("gen.evaluate"), "{s}");
        assert!(s.contains("pool utilization"), "{s}");
        assert!(s.contains("elite changes"), "{s}");
        assert!(s.contains("seed 42"), "{s}");
    }

    fn access(trace: u64, parent: u64, path: &'static str, status: u16) -> Event {
        Event::Access {
            trace,
            span: trace ^ 0xff,
            parent,
            method: "POST".into(),
            path,
            model: "m".into(),
            table: "t".into(),
            status,
            shed: false,
            batched: true,
            queue_us: 5,
            sim_us: 80,
            dur_us: 100,
        }
    }

    #[test]
    fn stitch_connects_gateway_hops_to_backend_spans() {
        let gw = Journal::new(64);
        gw.push(access(0xaaaa, 0, "gw:/simulate", 200));
        gw.push(access(0xbbbb, 0, "gw:/simulate", 200));
        let be = Journal::new(64);
        be.push(access(0xaaaa, 0xaaaa ^ 0xff, "/simulate", 200));
        be.push(access(0xbbbb, 0xbbbb ^ 0xff, "/simulate", 200));
        be.push(Event::Span {
            name: "serve.sweep.member",
            tid: 3,
            depth: 1,
            start_us: 50,
            dur_us: 80,
            arg: Some(0xaaaa),
        });
        let inputs = vec![
            ("gateway".to_string(), gw.to_jsonl()),
            ("backend-0".to_string(), be.to_jsonl()),
        ];
        let s = stitch(&inputs).expect("stitch");
        assert_eq!(s.hops, 2);
        assert_eq!(s.resolved, 2);
        assert!(s.orphans.is_empty(), "{:?}", s.orphans);
        let v = crate::json::parse(&s.chrome).expect("chrome JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        let ph = |tag: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(tag))
                .count()
        };
        assert_eq!(ph("s"), 3, "2 hop flows + 1 sweep flow start");
        assert_eq!(ph("f"), 3);
        assert!(events
            .iter()
            .any(|e| e.get("pid").and_then(Value::as_u64) == Some(2)));
        // Both hop flow ids carry the greppable hex trace id.
        assert!(s.chrome.contains(&crate::journal::hex_id(0xaaaa)));
    }

    #[test]
    fn stitch_reports_orphaned_hops_and_rejects_invalid_journals() {
        let gw = Journal::new(64);
        gw.push(access(0xcccc, 0, "gw:/simulate", 200));
        let be = Journal::new(64);
        be.push(access(0xdddd, 0, "/simulate", 200));
        let inputs = vec![
            ("gateway".to_string(), gw.to_jsonl()),
            ("backend-0".to_string(), be.to_jsonl()),
        ];
        let s = stitch(&inputs).expect("stitch");
        assert_eq!(s.hops, 1);
        assert_eq!(s.resolved, 0);
        assert_eq!(s.orphans.len(), 1);
        assert!(s.orphans[0].contains("no backend access span"));
        // A truncated backend journal aborts the stitch entirely.
        let text = be.to_jsonl();
        let cut = text[..text.len() - 10].to_string();
        let bad = vec![
            ("gateway".to_string(), gw.to_jsonl()),
            ("b".to_string(), cut),
        ];
        assert!(stitch(&bad).is_err());
        // A lone journal is not a stitch.
        assert!(stitch(&inputs[..1]).is_err());
    }

    #[test]
    fn chrome_output_is_valid_json_with_x_events() {
        let chrome = to_chrome(&sample_journal()).unwrap();
        let v = crate::json::parse(&chrome).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("X")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("M")));
    }
}
