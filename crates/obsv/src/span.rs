//! Scoped spans: RAII timers that record a completed-span event on drop.
//!
//! Thread-safe nesting is per-thread state: each thread carries a journal-
//! local `tid` and a depth counter, so spans opened concurrently on
//! different workers never interfere, and nested spans on one thread
//! record their depth for flamegraph reconstruction.
//!
//! Two detail levels keep instrumentation off the fitness path's budget:
//! [`Detail::Coarse`] (default) records phase-scale spans only;
//! [`Detail::Fine`] adds per-candidate and per-claim spans (`vm.simulate`,
//! `vm.compile`, `pool.drain`, `netsim.station`). When the `enabled` cargo
//! feature is off, every call site collapses to a no-op returning a unit
//! guard.

/// Span granularity a call site declares; recorded only when the global
/// detail level includes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detail {
    /// Phase-scale spans (per generation, per station batch).
    Coarse,
    /// Per-candidate / per-claim spans — opt-in, higher volume.
    Fine,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::Detail;
    use crate::journal::Event;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
    use std::time::Instant;

    static DETAIL: AtomicU8 = AtomicU8::new(0);
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
        static DEPTH: Cell<u16> = const { Cell::new(0) };
    }

    /// Set the global detail level.
    pub fn set_detail(d: Detail) {
        DETAIL.store(if d == Detail::Fine { 1 } else { 0 }, Ordering::Relaxed);
    }

    /// The global detail level.
    pub fn detail() -> Detail {
        if DETAIL.load(Ordering::Relaxed) == 1 {
            Detail::Fine
        } else {
            Detail::Coarse
        }
    }

    /// This thread's journal-local id (assigned on first use).
    pub fn tid() -> u32 {
        TID.with(|t| {
            let v = t.get();
            if v != u32::MAX {
                return v;
            }
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        })
    }

    struct Active {
        name: &'static str,
        arg: Option<u64>,
        start: Instant,
        start_us: u64,
        depth: u16,
    }

    /// RAII span guard; records a [`Event::Span`] when dropped.
    pub struct Span(Option<Active>);

    impl Span {
        #[inline]
        pub(super) fn begin(name: &'static str, arg: Option<u64>, min_detail: Detail) -> Span {
            let Some(journal) = crate::global() else {
                return Span(None);
            };
            if min_detail > detail() {
                return Span(None);
            }
            let depth = DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            Span(Some(Active {
                name,
                arg,
                start: Instant::now(),
                start_us: journal.now_us(),
                depth,
            }))
        }

        /// Whether this span is actually recording.
        pub fn is_recording(&self) -> bool {
            self.0.is_some()
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(active) = self.0.take() else { return };
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            crate::emit(Event::Span {
                name: active.name,
                tid: tid(),
                depth: active.depth,
                start_us: active.start_us,
                dur_us: active.start.elapsed().as_micros() as u64,
                arg: active.arg,
            });
        }
    }

    /// Record an externally timed span (for per-item timings accumulated in
    /// a loop rather than scoped): `start_us` from [`crate::now_us`], plus
    /// a measured duration.
    pub fn record_external(name: &'static str, start_us: u64, dur_us: u64, arg: Option<u64>) {
        if crate::global().is_none() {
            return;
        }
        crate::emit(Event::Span {
            name,
            tid: tid(),
            depth: DEPTH.with(|d| d.get()),
            start_us,
            dur_us,
            arg,
        });
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Detail;

    /// Inert span guard (observability compiled out).
    pub struct Span(());

    impl Span {
        #[inline(always)]
        pub(super) fn begin(_: &'static str, _: Option<u64>, _: Detail) -> Span {
            Span(())
        }

        /// Always false: nothing records in a compiled-out build.
        pub fn is_recording(&self) -> bool {
            false
        }
    }

    /// No-op.
    #[inline(always)]
    pub fn set_detail(_: Detail) {}

    /// Always [`Detail::Coarse`].
    pub fn detail() -> Detail {
        Detail::Coarse
    }

    /// Always 0.
    pub fn tid() -> u32 {
        0
    }

    /// No-op.
    #[inline(always)]
    pub fn record_external(_: &'static str, _: u64, _: u64, _: Option<u64>) {}
}

pub use imp::{detail, record_external, set_detail, tid, Span};

impl Span {
    /// Open a coarse span.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        Span::begin(name, None, Detail::Coarse)
    }

    /// Open a coarse span carrying a numeric argument (generation index,
    /// station id…).
    #[inline]
    pub fn enter_with(name: &'static str, arg: u64) -> Span {
        Span::begin(name, Some(arg), Detail::Coarse)
    }

    /// Open a fine-detail span (recorded only under [`Detail::Fine`]).
    #[inline]
    pub fn enter_fine(name: &'static str) -> Span {
        Span::begin(name, None, Detail::Fine)
    }

    /// Fine-detail span with a numeric argument.
    #[inline]
    pub fn enter_fine_with(name: &'static str, arg: u64) -> Span {
        Span::begin(name, Some(arg), Detail::Fine)
    }
}

/// Open a scoped span: `let _sp = obsv::span!("gen.breed");` or
/// `obsv::span!("gen.breed", gen as u64)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span::Span::enter_with($name, $arg)
    };
}

/// Fine-detail variant of [`span!`] (per-candidate volume; recorded only
/// under [`Detail::Fine`]).
#[macro_export]
macro_rules! span_fine {
    ($name:expr) => {
        $crate::span::Span::enter_fine($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span::Span::enter_fine_with($name, $arg)
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn span_without_journal_is_inert() {
        // Tests in this crate share the process-global journal; this test
        // only asserts the detail gate, which is journal-independent.
        set_detail(Detail::Coarse);
        assert_eq!(detail(), Detail::Coarse);
        set_detail(Detail::Fine);
        assert_eq!(detail(), Detail::Fine);
        set_detail(Detail::Coarse);
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let a = tid();
        let b = tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(tid).join().unwrap();
        assert_ne!(a, other);
    }
}
