//! `gmr-trace` — inspect `gmr-journal/v1` JSONL files.
//!
//! ```text
//! gmr-trace summary RUN.jsonl          # human summary: spans, gens, pool
//! gmr-trace chrome RUN.jsonl [--out T] # Chrome trace-event JSON (Perfetto)
//! gmr-trace validate RUN.jsonl         # schema check; exit 1 on failure
//! gmr-trace --validate RUN.jsonl       # same, flag spelling
//! gmr-trace json FILE.json             # strict-parse any JSON document;
//!                                      # exit 1 on malformed input
//! ```

use gmr_obsv::trace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gmr-trace <summary|chrome|validate|json> FILE [--out FILE]\n\
         \n\
         summary    print spans / generations / pool utilization / lineage\n\
         chrome     convert to Chrome trace-event JSON (load in Perfetto)\n\
         validate   check the gmr-journal/v1 schema; exit 1 when invalid\n\
         json       strict-parse a standalone JSON document (reports the\n\
                    byte offset of the first error); exit 1 when malformed\n\
         \n\
         `--validate` is accepted as a flag spelling of `validate`."
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("gmr-trace: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut journal = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "summary" | "chrome" | "validate" | "json" if cmd.is_none() => cmd = Some(a.as_str()),
            "--validate" if cmd.is_none() => cmd = Some("validate"),
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("gmr-trace: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => return usage(),
            _ if journal.is_none() && !a.starts_with('-') => journal = Some(a.clone()),
            _ => {
                eprintln!("gmr-trace: unexpected argument {a:?}");
                return usage();
            }
        }
    }
    let (Some(cmd), Some(journal)) = (cmd, journal) else {
        return usage();
    };
    let src = match read(&journal) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match cmd {
        "validate" => {
            let errs = trace::validate(&src);
            if errs.is_empty() {
                println!("{journal}: valid {}", gmr_obsv::SCHEMA);
                ExitCode::SUCCESS
            } else {
                for e in &errs {
                    eprintln!("{journal}: {e}");
                }
                eprintln!("{journal}: INVALID ({} problems)", errs.len());
                ExitCode::FAILURE
            }
        }
        "json" => match gmr_obsv::json::parse(&src) {
            Ok(_) => {
                println!("{journal}: valid JSON");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{journal}: INVALID JSON: {e}");
                ExitCode::FAILURE
            }
        },
        "summary" => match trace::summary(&src) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gmr-trace: {e}");
                ExitCode::FAILURE
            }
        },
        "chrome" => match trace::to_chrome(&src) {
            Ok(json) => match out_path {
                Some(p) => match std::fs::write(&p, json) {
                    Ok(()) => {
                        eprintln!("wrote {p}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("gmr-trace: cannot write {p}: {e}");
                        ExitCode::FAILURE
                    }
                },
                None => {
                    print!("{json}");
                    ExitCode::SUCCESS
                }
            },
            Err(e) => {
                eprintln!("gmr-trace: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
