//! `gmr-trace` — inspect `gmr-journal/v1` JSONL files.
//!
//! ```text
//! gmr-trace summary RUN.jsonl          # human summary: spans, gens, pool
//! gmr-trace chrome RUN.jsonl [--out T] # Chrome trace-event JSON (Perfetto)
//! gmr-trace validate RUN.jsonl         # schema check; exit 1 on failure
//! gmr-trace --validate RUN.jsonl       # same, flag spelling
//! gmr-trace json FILE.json             # strict-parse any JSON document;
//!                                      # exit 1 on malformed input
//! gmr-trace opcodes RUN.jsonl...       # aggregate elite opcode-pair stats
//!     [--out CORPUS.json]              #   into a gmr-opcodes/v1 corpus
//!     [--from-corpus CORPUS.json]      #   (or load one) and regenerate
//!     [--fusion-table-out fusion_gen.rs]  # the VM's fusion table from it
//! gmr-trace stitch GATEWAY.jsonl BACKEND.jsonl... [--out TRACE.json]
//!                                      # merge cluster journals into one
//!                                      # cross-process Chrome trace; exit 1
//!                                      # on orphaned gateway hops
//! ```

use gmr_obsv::trace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gmr-trace <summary|chrome|validate|json> FILE [--out FILE]\n\
         \x20      gmr-trace opcodes FILE... [--out CORPUS] [--from-corpus CORPUS]\n\
         \x20                [--fusion-table-out FILE]\n\
         \x20      gmr-trace stitch GATEWAY.jsonl BACKEND.jsonl... [--out FILE]\n\
         \n\
         summary    print spans / generations / pool utilization / lineage\n\
         chrome     convert to Chrome trace-event JSON (load in Perfetto)\n\
         validate   check the gmr-journal/v1 schema; exit 1 when invalid\n\
         json       strict-parse a standalone JSON document (reports the\n\
                    byte offset of the first error); exit 1 when malformed\n\
         opcodes    aggregate the elite opcode-pair statistics of one or\n\
                    more journals into a gmr-opcodes/v1 corpus (--out), or\n\
                    load a committed corpus (--from-corpus), and optionally\n\
                    regenerate the VM's fusion table (--fusion-table-out)\n\
         stitch     merge a gateway journal plus backend journals into one\n\
                    cross-process Chrome trace (flows connect each gateway\n\
                    hop to the backend access + sweep spans that served\n\
                    it); exit 1 when any hop is orphaned\n\
         \n\
         `--validate` is accepted as a flag spelling of `validate`."
    );
    ExitCode::from(2)
}

/// The `opcodes` subcommand, with its own multi-journal argument shape.
fn run_opcodes(args: &[String]) -> ExitCode {
    let mut journals: Vec<String> = Vec::new();
    let mut out_path = None;
    let mut from_corpus = None;
    let mut table_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut flag_path = |name: &str, slot: &mut Option<String>| match it.next() {
            Some(p) => {
                *slot = Some(p.clone());
                true
            }
            None => {
                eprintln!("gmr-trace: {name} needs a path");
                false
            }
        };
        match a.as_str() {
            "--out" => {
                if !flag_path("--out", &mut out_path) {
                    return ExitCode::from(2);
                }
            }
            "--from-corpus" => {
                if !flag_path("--from-corpus", &mut from_corpus) {
                    return ExitCode::from(2);
                }
            }
            "--fusion-table-out" => {
                if !flag_path("--fusion-table-out", &mut table_out) {
                    return ExitCode::from(2);
                }
            }
            _ if !a.starts_with('-') => journals.push(a.clone()),
            _ => {
                eprintln!("gmr-trace: unexpected argument {a:?}");
                return ExitCode::from(2);
            }
        }
    }
    let (corpus, corpus_label) = if let Some(path) = &from_corpus {
        if !journals.is_empty() {
            eprintln!("gmr-trace: --from-corpus does not take journal files");
            return ExitCode::from(2);
        }
        let src = match read(path) {
            Ok(s) => s,
            Err(code) => return code,
        };
        match gmr_obsv::opcodes::OpcodeCorpus::parse_json(&src) {
            Ok(c) => (c, path.clone()),
            Err(e) => {
                eprintln!("gmr-trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        if journals.is_empty() {
            eprintln!("gmr-trace: opcodes needs journal files or --from-corpus");
            return ExitCode::from(2);
        }
        let mut texts = Vec::with_capacity(journals.len());
        for path in &journals {
            match read(path) {
                Ok(s) => texts.push(s),
                Err(code) => return code,
            }
        }
        match gmr_obsv::opcodes::OpcodeCorpus::aggregate(&texts) {
            // The generated file's header names the committed corpus path
            // regardless of where this invocation writes it, so the same
            // corpus always renders the same bytes.
            Ok(c) => (c, String::from("results/OPCODE_corpus.json")),
            Err(e) => {
                eprintln!("gmr-trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!(
        "opcodes: {} elite snapshot(s), {} operand pair(s), {} distinct pair(s)",
        corpus.elites,
        corpus.total,
        corpus.pairs.len()
    );
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, corpus.render_json()) {
            eprintln!("gmr-trace: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &table_out {
        let text = gmr_obsv::opcodes::render_fusion_gen(&corpus, &corpus_label);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("gmr-trace: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if out_path.is_none() && table_out.is_none() {
        print!("{}", corpus.render_json());
    }
    ExitCode::SUCCESS
}

/// The `stitch` subcommand: first journal is the gateway, the rest are
/// backends. Exit 1 when any gateway hop cannot be resolved to exactly
/// one backend access span.
fn run_stitch(args: &[String]) -> ExitCode {
    let mut journals: Vec<String> = Vec::new();
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("gmr-trace: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            _ if !a.starts_with('-') => journals.push(a.clone()),
            _ => {
                eprintln!("gmr-trace: unexpected argument {a:?}");
                return ExitCode::from(2);
            }
        }
    }
    if journals.len() < 2 {
        eprintln!("gmr-trace: stitch needs a gateway journal plus at least one backend journal");
        return ExitCode::from(2);
    }
    let mut inputs = Vec::with_capacity(journals.len());
    for path in &journals {
        match read(path) {
            Ok(s) => inputs.push((path.clone(), s)),
            Err(code) => return code,
        }
    }
    let stitched = match trace::stitch(&inputs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gmr-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "stitch: {} journal(s), {} gateway hop(s), {} resolved",
        journals.len(),
        stitched.hops,
        stitched.resolved
    );
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &stitched.chrome) {
                eprintln!("gmr-trace: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {p}");
        }
        None => print!("{}", stitched.chrome),
    }
    if stitched.orphans.is_empty() {
        ExitCode::SUCCESS
    } else {
        for o in &stitched.orphans {
            eprintln!("gmr-trace: orphaned hop: {o}");
        }
        eprintln!(
            "gmr-trace: {} orphaned hop(s) — a journal is missing or a backend never recorded \
             the request",
            stitched.orphans.len()
        );
        ExitCode::FAILURE
    }
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("gmr-trace: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("opcodes") {
        return run_opcodes(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("stitch") {
        return run_stitch(&args[1..]);
    }
    let mut cmd = None;
    let mut journal = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "summary" | "chrome" | "validate" | "json" if cmd.is_none() => cmd = Some(a.as_str()),
            "--validate" if cmd.is_none() => cmd = Some("validate"),
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("gmr-trace: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => return usage(),
            _ if journal.is_none() && !a.starts_with('-') => journal = Some(a.clone()),
            _ => {
                eprintln!("gmr-trace: unexpected argument {a:?}");
                return usage();
            }
        }
    }
    let (Some(cmd), Some(journal)) = (cmd, journal) else {
        return usage();
    };
    let src = match read(&journal) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match cmd {
        "validate" => {
            let errs = trace::validate(&src);
            if errs.is_empty() {
                println!("{journal}: valid {}", gmr_obsv::SCHEMA);
                ExitCode::SUCCESS
            } else {
                for e in &errs {
                    eprintln!("{journal}: {e}");
                }
                eprintln!("{journal}: INVALID ({} problems)", errs.len());
                ExitCode::FAILURE
            }
        }
        "json" => match gmr_obsv::json::parse(&src) {
            Ok(_) => {
                println!("{journal}: valid JSON");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{journal}: INVALID JSON: {e}");
                ExitCode::FAILURE
            }
        },
        "summary" => match trace::summary(&src) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gmr-trace: {e}");
                ExitCode::FAILURE
            }
        },
        "chrome" => match trace::to_chrome(&src) {
            Ok(json) => match out_path {
                Some(p) => match std::fs::write(&p, json) {
                    Ok(()) => {
                        eprintln!("wrote {p}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("gmr-trace: cannot write {p}: {e}");
                        ExitCode::FAILURE
                    }
                },
                None => {
                    print!("{json}");
                    ExitCode::SUCCESS
                }
            },
            Err(e) => {
                eprintln!("gmr-trace: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
