//! The run journal: a bounded ring buffer of typed events, flushed to
//! `gmr-journal/v1` JSONL.
//!
//! Events are pushed from any thread (one short mutex section per event —
//! event rates are generation- and round-scale, with per-candidate detail
//! opt-in via [`crate::span::Detail::Fine`]); the ring drops the *oldest*
//! events once `capacity` is reached and counts what it dropped, so a
//! stalled run's journal always holds the most recent window. The JSONL
//! format is one header line (`schema`, totals) followed by one event per
//! line with a monotone `seq` and a `t_us` timestamp taken under the ring
//! lock (so timestamps are non-decreasing in file order — `gmr-trace
//! --validate` checks both).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Schema tag written in the header line and required by the validator.
pub const SCHEMA: &str = "gmr-journal/v1";

/// Fixed-width lowercase hex rendering of a trace or span id — the form
/// used in both the `X-Gmr-Trace` header and the `access` event, so the
/// header value greps straight into the journal.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a [`hex_id`]-rendered id (exactly 16 lowercase hex digits).
pub fn parse_hex_id(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// One typed journal event. Variant names map 1:1 to the JSONL `type` tag.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span (scoped timer).
    Span {
        /// Span name (dotted, `layer.phase`; see DESIGN.md).
        name: &'static str,
        /// Journal-local thread id (0 = first thread seen).
        tid: u32,
        /// Nesting depth within the thread at entry.
        depth: u16,
        /// Start time, µs since journal start.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
        /// Optional numeric argument (generation, station, epoch…).
        arg: Option<u64>,
    },
    /// Per-generation search statistics (the `GenStats` record, plus the
    /// §III-D counter deltas for this generation — `d_shorts` is the
    /// number of short-circuit fires).
    Gen {
        /// Engine seed (distinguishes interleaved runs in one journal).
        seed: u64,
        /// Generation index.
        generation: u64,
        /// Best fitness in the population.
        best: f64,
        /// Mean finite fitness.
        mean: f64,
        /// Cumulative fitness evaluations.
        evaluations: u64,
        /// Cumulative integrated steps.
        steps: u64,
        /// Wall time of the generation, µs.
        elapsed_us: u64,
        /// Evaluations this generation.
        d_evals: u64,
        /// Full evaluations this generation.
        d_fulls: u64,
        /// Short-circuit fires this generation.
        d_shorts: u64,
        /// Tree-cache hits this generation.
        d_cache_hits: u64,
        /// Tree-cache misses this generation.
        d_cache_misses: u64,
    },
    /// The population's best individual changed — elite lineage, with the
    /// operator that produced the new elite.
    EliteChange {
        /// Engine seed.
        seed: u64,
        /// Generation at which the change was observed.
        generation: u64,
        /// New best fitness.
        fitness: f64,
        /// Chromosome (derivation-tree) size.
        size: u64,
        /// The genetic operator that created the new elite (the revision
        /// applied): `init`, `crossover`, `subtree-mut`, `gauss-mut`,
        /// `replicate`, `ls-insert`, `ls-delete`, `ls-tweak`.
        origin: &'static str,
    },
    /// Opcode-pair statistics of a new elite's simplified system,
    /// pre-aggregated by the engine so the journal stays expression-free.
    /// `gmr-trace opcodes` sums these across runs into the
    /// `gmr-opcodes/v1` corpus that drives superinstruction selection.
    Opcodes {
        /// Engine seed.
        seed: u64,
        /// Generation at which the elite was observed.
        generation: u64,
        /// `(parent op, child label, position, count)` — position is
        /// `'l'`/`'r'` for binary operands, `'u'` for the unary operand;
        /// child labels are operator names or `var`/`state`/`const`.
        pairs: Vec<(String, String, char, u64)>,
        /// Total operand pairs (the fusion support denominator).
        total: u64,
    },
    /// A tree-cache shard shed entries.
    CacheEvict {
        /// Surrogate (short-circuited) entries dropped.
        shed_surrogate: u64,
        /// Fully-evaluated entries dropped.
        shed_full: u64,
        /// Shard occupancy after the wave.
        len_after: u64,
    },
    /// Evaluation-pool round boundary: cumulative pool accounting
    /// snapshotted so a run killed mid-generation still leaves numbers.
    Round {
        /// Engine seed.
        seed: u64,
        /// Round counter (monotone over the run).
        round: u64,
        /// What the round evaluated (`evaluate`, `local-search`).
        kind: &'static str,
        /// Candidates in the round.
        len: u64,
        /// Worker count.
        workers: u64,
        /// Cumulative candidates processed (all workers).
        candidates: u64,
        /// Cumulative steals.
        steals: u64,
        /// Cumulative busy time, µs.
        busy_us: u64,
        /// Cumulative idle time, µs.
        idle_us: u64,
    },
    /// A worker processed nothing during a round large enough that every
    /// worker should have claimed work — a scheduling or starvation
    /// warning.
    Stall {
        /// Round counter.
        round: u64,
        /// The idle worker's index.
        worker: u32,
        /// Round wall time, µs.
        round_us: u64,
    },
    /// A metric-registry snapshot (pre-rendered JSON object).
    Metrics {
        /// What the registry belongs to (`engine`, `bench`…).
        scope: &'static str,
        /// `metrics::snapshot_json` output.
        json: String,
    },
    /// Free-form annotation.
    Note {
        /// Event name.
        name: &'static str,
        /// Message.
        msg: String,
    },
    /// One served HTTP request (the serving stack's access log).
    Request {
        /// Endpoint path (`/simulate`, `/models`…).
        endpoint: &'static str,
        /// HTTP status returned.
        status: u16,
        /// Wall time from dequeue to response written, µs.
        dur_us: u64,
        /// Simulations coalesced into the batch that served this request
        /// (1 = unbatched; 0 = no simulation ran).
        batch: u64,
    },
    /// One traced HTTP request (the distributed-tracing access log).
    ///
    /// Unlike [`Event::Request`] this carries the propagated trace
    /// context (`X-Gmr-Trace`), so `gmr-trace stitch` can connect a
    /// gateway hop to the backend span that served it and a user can
    /// grep any journal for their own request id.
    Access {
        /// Trace id shared by every hop of one client request.
        trace: u64,
        /// This hop's span id.
        span: u64,
        /// The upstream hop's span id (0 = this hop minted the trace).
        parent: u64,
        /// HTTP method verb.
        method: String,
        /// Endpoint path tag (`/simulate`, `gw:/simulate`…).
        path: &'static str,
        /// Model routed or simulated (empty when none was involved).
        model: String,
        /// Forcing-table reference (`(inline)` for inline forcings,
        /// empty when no simulation ran).
        table: String,
        /// HTTP status returned.
        status: u16,
        /// Request was shed (429) before any simulation ran.
        shed: bool,
        /// Simulation was coalesced with at least one other request.
        batched: bool,
        /// Wait from simulation enqueue to batcher pickup, µs.
        queue_us: u64,
        /// Simulation wall time inside the sweep, µs.
        sim_us: u64,
        /// Total dequeue-to-response time, µs.
        dur_us: u64,
    },
    /// A cluster backend lifecycle transition (the supervisor's log).
    Backend {
        /// Backend slot index.
        idx: u32,
        /// Bound address, when known (empty before first spawn succeeds).
        addr: String,
        /// Transition: `spawned`, `up`, `down`, `restarted`, `gave-up`,
        /// `drained`.
        state: &'static str,
        /// Restarts consumed so far for this slot.
        restarts: u32,
    },
}

impl Event {
    /// The JSONL `type` tag.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::Gen { .. } => "gen",
            Event::EliteChange { .. } => "elite",
            Event::Opcodes { .. } => "opcodes",
            Event::CacheEvict { .. } => "cache_evict",
            Event::Round { .. } => "round",
            Event::Stall { .. } => "stall",
            Event::Metrics { .. } => "metrics",
            Event::Note { .. } => "note",
            Event::Request { .. } => "request",
            Event::Access { .. } => "access",
            Event::Backend { .. } => "backend",
        }
    }
}

/// A sequenced, timestamped event as stored in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotone sequence number (gaps = dropped events).
    pub seq: u64,
    /// Microseconds since journal start, taken under the ring lock.
    pub t_us: u64,
    /// The event.
    pub event: Event,
}

struct Inner {
    buf: VecDeque<Record>,
    seq: u64,
    dropped: u64,
}

/// A bounded event journal. Cheap to share behind an `Arc` or a global.
pub struct Journal {
    inner: Mutex<Inner>,
    capacity: usize,
    start: std::time::Instant,
    t0_unix_us: u64,
}

impl Journal {
    /// Create with an event capacity (oldest events are dropped beyond it).
    pub fn new(capacity: usize) -> Self {
        let t0_unix_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Journal {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                seq: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
            start: std::time::Instant::now(),
            t0_unix_us,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Microseconds since the journal was created.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Append an event (timestamped now).
    pub fn push(&self, event: Event) {
        let mut inner = self.lock();
        let t_us = self.start.elapsed().as_micros() as u64;
        let seq = inner.seq;
        inner.seq += 1;
        if inner.buf.len() >= self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Record { seq, t_us, event });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Remove and return everything currently held.
    pub fn drain(&self) -> Vec<Record> {
        self.lock().buf.drain(..).collect()
    }

    /// Copy of everything currently held.
    pub fn snapshot(&self) -> Vec<Record> {
        self.lock().buf.iter().cloned().collect()
    }

    /// Serialize to `gmr-journal/v1` JSONL: header line then one event per
    /// line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(64 * inner.buf.len() + 128);
        // `t0_unix_us` anchors this journal's relative `t_us` timeline to
        // the wall clock so `gmr-trace stitch` can align journals from
        // different processes on one trace timeline.
        out.push_str(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"events\": {}, \"dropped\": {}, \"next_seq\": {}, \"t0_unix_us\": {}}}\n",
            inner.buf.len(),
            inner.dropped,
            inner.seq,
            self.t0_unix_us
        ));
        for rec in &inner.buf {
            write_record(&mut out, rec);
            out.push('\n');
        }
        out
    }

    /// Write the JSONL rendering to a file.
    pub fn write_to_path(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

fn write_record(out: &mut String, rec: &Record) {
    use crate::json::{push_escaped, push_f64};
    out.push_str(&format!(
        "{{\"seq\": {}, \"t_us\": {}, \"type\": \"{}\"",
        rec.seq,
        rec.t_us,
        rec.event.type_tag()
    ));
    match &rec.event {
        Event::Span {
            name,
            tid,
            depth,
            start_us,
            dur_us,
            arg,
        } => {
            out.push_str(", \"name\": ");
            push_escaped(out, name);
            out.push_str(&format!(
                ", \"tid\": {tid}, \"depth\": {depth}, \"start_us\": {start_us}, \"dur_us\": {dur_us}"
            ));
            if let Some(a) = arg {
                out.push_str(&format!(", \"arg\": {a}"));
            }
        }
        Event::Gen {
            seed,
            generation,
            best,
            mean,
            evaluations,
            steps,
            elapsed_us,
            d_evals,
            d_fulls,
            d_shorts,
            d_cache_hits,
            d_cache_misses,
        } => {
            out.push_str(&format!(
                ", \"seed\": {seed}, \"generation\": {generation}, \"best\": "
            ));
            push_f64(out, *best);
            out.push_str(", \"mean\": ");
            push_f64(out, *mean);
            out.push_str(&format!(
                ", \"evaluations\": {evaluations}, \"steps\": {steps}, \"elapsed_us\": {elapsed_us}, \
                 \"d_evals\": {d_evals}, \"d_fulls\": {d_fulls}, \"d_shorts\": {d_shorts}, \
                 \"d_cache_hits\": {d_cache_hits}, \"d_cache_misses\": {d_cache_misses}"
            ));
        }
        Event::EliteChange {
            seed,
            generation,
            fitness,
            size,
            origin,
        } => {
            out.push_str(&format!(
                ", \"seed\": {seed}, \"generation\": {generation}, \"fitness\": "
            ));
            push_f64(out, *fitness);
            out.push_str(&format!(", \"size\": {size}, \"origin\": "));
            push_escaped(out, origin);
        }
        Event::Opcodes {
            seed,
            generation,
            pairs,
            total,
        } => {
            out.push_str(&format!(
                ", \"seed\": {seed}, \"generation\": {generation}, \"total\": {total}, \"pairs\": ["
            ));
            for (i, (parent, child, pos, count)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                push_escaped(out, parent);
                out.push_str(", ");
                push_escaped(out, child);
                out.push_str(", ");
                push_escaped(out, &pos.to_string());
                out.push_str(&format!(", {count}]"));
            }
            out.push(']');
        }
        Event::CacheEvict {
            shed_surrogate,
            shed_full,
            len_after,
        } => {
            out.push_str(&format!(
                ", \"shed_surrogate\": {shed_surrogate}, \"shed_full\": {shed_full}, \"len_after\": {len_after}"
            ));
        }
        Event::Round {
            seed,
            round,
            kind,
            len,
            workers,
            candidates,
            steals,
            busy_us,
            idle_us,
        } => {
            out.push_str(&format!(
                ", \"seed\": {seed}, \"round\": {round}, \"kind\": "
            ));
            push_escaped(out, kind);
            out.push_str(&format!(
                ", \"len\": {len}, \"workers\": {workers}, \"candidates\": {candidates}, \
                 \"steals\": {steals}, \"busy_us\": {busy_us}, \"idle_us\": {idle_us}"
            ));
        }
        Event::Stall {
            round,
            worker,
            round_us,
        } => {
            out.push_str(&format!(
                ", \"round\": {round}, \"worker\": {worker}, \"round_us\": {round_us}"
            ));
        }
        Event::Metrics { scope, json } => {
            out.push_str(", \"scope\": ");
            push_escaped(out, scope);
            out.push_str(&format!(", \"registry\": {json}"));
        }
        Event::Note { name, msg } => {
            out.push_str(", \"name\": ");
            push_escaped(out, name);
            out.push_str(", \"msg\": ");
            push_escaped(out, msg);
        }
        Event::Request {
            endpoint,
            status,
            dur_us,
            batch,
        } => {
            out.push_str(", \"endpoint\": ");
            push_escaped(out, endpoint);
            out.push_str(&format!(
                ", \"status\": {status}, \"dur_us\": {dur_us}, \"batch\": {batch}"
            ));
        }
        Event::Access {
            trace,
            span,
            parent,
            method,
            path,
            model,
            table,
            status,
            shed,
            batched,
            queue_us,
            sim_us,
            dur_us,
        } => {
            out.push_str(", \"trace\": ");
            push_escaped(out, &hex_id(*trace));
            out.push_str(", \"span\": ");
            push_escaped(out, &hex_id(*span));
            out.push_str(", \"parent\": ");
            push_escaped(out, &hex_id(*parent));
            out.push_str(", \"method\": ");
            push_escaped(out, method);
            out.push_str(", \"path\": ");
            push_escaped(out, path);
            out.push_str(", \"model\": ");
            push_escaped(out, model);
            out.push_str(", \"table\": ");
            push_escaped(out, table);
            out.push_str(&format!(
                ", \"status\": {status}, \"shed\": {shed}, \"batched\": {batched}, \
                 \"queue_us\": {queue_us}, \"sim_us\": {sim_us}, \"dur_us\": {dur_us}"
            ));
        }
        Event::Backend {
            idx,
            addr,
            state,
            restarts,
        } => {
            out.push_str(&format!(", \"idx\": {idx}, \"addr\": "));
            push_escaped(out, addr);
            out.push_str(", \"state\": ");
            push_escaped(out, state);
            out.push_str(&format!(", \"restarts\": {restarts}"));
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(i: u64) -> Event {
        Event::Note {
            name: "test",
            msg: format!("event {i}"),
        }
    }

    #[test]
    fn push_assigns_monotone_seq_and_time() {
        let j = Journal::new(16);
        for i in 0..5 {
            j.push(note(i));
        }
        let recs = j.snapshot();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        for w in recs.windows(2) {
            assert!(w[0].t_us <= w[1].t_us);
        }
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let j = Journal::new(8);
        for i in 0..20 {
            j.push(note(i));
        }
        assert_eq!(j.len(), 8);
        assert_eq!(j.dropped(), 12);
        let recs = j.snapshot();
        // The survivors are the *newest* 8 — seq 12..20.
        assert_eq!(recs.first().unwrap().seq, 12);
        assert_eq!(recs.last().unwrap().seq, 19);
    }

    #[test]
    fn jsonl_header_and_lines_parse() {
        let j = Journal::new(64);
        j.push(Event::Gen {
            seed: 7,
            generation: 0,
            best: 1.5,
            mean: f64::INFINITY, // must serialize as null, not break JSON
            evaluations: 10,
            steps: 640,
            elapsed_us: 1234,
            d_evals: 10,
            d_fulls: 8,
            d_shorts: 2,
            d_cache_hits: 1,
            d_cache_misses: 9,
        });
        j.push(Event::Span {
            name: "gen.breed",
            tid: 0,
            depth: 1,
            start_us: 10,
            dur_us: 42,
            arg: Some(3),
        });
        let text = j.to_jsonl();
        let mut lines = text.lines();
        let header = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(header.get("events").and_then(|v| v.as_u64()), Some(2));
        let gen = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(gen.get("type").and_then(|v| v.as_str()), Some("gen"));
        assert_eq!(gen.get("mean"), Some(&crate::json::Value::Null));
        assert_eq!(gen.get("d_shorts").and_then(|v| v.as_u64()), Some(2));
        let span = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(span.get("name").and_then(|v| v.as_str()), Some("gen.breed"));
        assert_eq!(span.get("arg").and_then(|v| v.as_u64()), Some(3));
        assert!(lines.next().is_none());
    }

    #[test]
    fn access_event_round_trips_with_hex_trace_ids() {
        let j = Journal::new(8);
        j.push(Event::Access {
            trace: 0x0123_4567_89ab_cdef,
            span: 0xfedc_ba98_7654_3210,
            parent: 0,
            method: "POST".into(),
            path: "/simulate",
            model: "table5-manual".into(),
            table: "t".into(),
            status: 200,
            shed: false,
            batched: true,
            queue_us: 12,
            sim_us: 340,
            dur_us: 360,
        });
        let text = j.to_jsonl();
        let mut lines = text.lines();
        let header = crate::json::parse(lines.next().unwrap()).unwrap();
        assert!(header.get("t0_unix_us").and_then(|v| v.as_u64()).is_some());
        let e = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(e.get("type").and_then(|v| v.as_str()), Some("access"));
        let trace = e.get("trace").and_then(|v| v.as_str()).unwrap();
        assert_eq!(trace, "0123456789abcdef");
        assert_eq!(parse_hex_id(trace), Some(0x0123_4567_89ab_cdef));
        assert_eq!(
            e.get("parent").and_then(|v| v.as_str()),
            Some("0000000000000000")
        );
        assert_eq!(e.get("batched"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(e.get("queue_us").and_then(|v| v.as_u64()), Some(12));
        // Rejects the shapes a header value must never take.
        assert_eq!(parse_hex_id("0123"), None);
        assert_eq!(parse_hex_id("0123456789ABCDEF"), None);
        assert_eq!(parse_hex_id("0123456789abcdeg"), None);
    }

    #[test]
    fn drain_empties_but_keeps_seq_counter() {
        let j = Journal::new(8);
        j.push(note(0));
        j.push(note(1));
        assert_eq!(j.drain().len(), 2);
        assert!(j.is_empty());
        j.push(note(2));
        assert_eq!(j.snapshot()[0].seq, 2, "seq keeps counting after drain");
    }

    #[test]
    fn concurrent_pushes_never_lose_seq() {
        let j = std::sync::Arc::new(Journal::new(100_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let j = std::sync::Arc::clone(&j);
                s.spawn(move || {
                    for i in 0..1000 {
                        j.push(note(i));
                    }
                });
            }
        });
        let recs = j.snapshot();
        assert_eq!(recs.len(), 4000);
        let mut seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..4000).collect::<Vec<u64>>());
    }
}
