//! Leveled progress logging for the bench/experiment binaries.
//!
//! Replaces the ad-hoc `eprintln!` progress lines: one global level, set
//! once from the shared `--quiet` / `-v` flags, consulted by the
//! [`info!`](crate::info)/[`debug!`](crate::debug)/[`warn!`](crate::warn)
//! macros. Output goes to stderr (experiment *results* go to stdout, as
//! before). With the `enabled` feature off the macros compile to nothing.

/// Verbosity level, in increasing order of chattiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Warnings only (`--quiet`).
    Quiet,
    /// Progress lines (default).
    Info,
    /// Extra diagnostics (`-v`); also raises span detail to Fine.
    Debug,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::Level;
    use std::sync::atomic::{AtomicU8, Ordering};

    static LEVEL: AtomicU8 = AtomicU8::new(1);

    /// Set the global verbosity.
    pub fn set_level(l: Level) {
        let v = match l {
            Level::Quiet => 0,
            Level::Info => 1,
            Level::Debug => 2,
        };
        LEVEL.store(v, Ordering::Relaxed);
    }

    /// The global verbosity.
    pub fn level() -> Level {
        match LEVEL.load(Ordering::Relaxed) {
            0 => Level::Quiet,
            1 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// Whether a message at `l` should print.
    #[inline]
    pub fn should_log(l: Level) -> bool {
        l <= level()
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Level;

    /// No-op.
    #[inline(always)]
    pub fn set_level(_: Level) {}

    /// Always [`Level::Quiet`].
    pub fn level() -> Level {
        Level::Quiet
    }

    /// Always false: logging is compiled out.
    #[inline(always)]
    pub fn should_log(_: Level) -> bool {
        false
    }
}

pub use imp::{level, set_level, should_log};

/// Parse the shared verbosity flags out of a CLI argument list:
/// `--quiet`/`-q` → [`Level::Quiet`], `-v`/`--verbose` → [`Level::Debug`],
/// otherwise [`Level::Info`]. The one place every binary agrees on.
pub fn level_from_args<S: AsRef<str>>(args: &[S]) -> Level {
    let mut level = Level::Info;
    for a in args {
        match a.as_ref() {
            "--quiet" | "-q" => level = Level::Quiet,
            "-v" | "--verbose" => level = Level::Debug,
            _ => {}
        }
    }
    level
}

/// Progress line, visible at the default verbosity.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::should_log($crate::log::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Diagnostic line, visible under `-v`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::should_log($crate::log::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

/// Warning line, visible even under `--quiet`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::should_log($crate::log::Level::Quiet) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_last_wins() {
        assert_eq!(level_from_args(&["exp", "--quick"]), Level::Info);
        assert_eq!(level_from_args(&["exp", "--quiet"]), Level::Quiet);
        assert_eq!(level_from_args(&["exp", "-v"]), Level::Debug);
        assert_eq!(level_from_args(&["exp", "--quiet", "-v"]), Level::Debug);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn level_ordering_gates_messages() {
        // Note: global level; keep the default restored for other tests.
        set_level(Level::Quiet);
        assert!(should_log(Level::Quiet));
        assert!(!should_log(Level::Info));
        set_level(Level::Debug);
        assert!(should_log(Level::Info));
        assert!(should_log(Level::Debug));
        set_level(Level::Info);
    }
}
