//! Lock-free metric primitives and a named registry.
//!
//! Counters, gauges and histograms are plain atomics — safe to hammer from
//! every evaluation-pool worker without locks — and a [`Registry`] names
//! them so a whole sheet can be snapshotted at round boundaries and dumped
//! into run reports or the journal.
//!
//! Unlike spans and the journal, this module is **not** gated by the
//! `enabled` feature: the engine's own counters (`evals`, `pheno_builds`,
//! cache hits, …) are program semantics — `RunReport` reads them — so they
//! must exist even in a build with observability compiled out. The cost is
//! identical to the ad-hoc `AtomicU64` fields they replace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge (stored as bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts values `v`
/// with `ilog2(v+1) == i`, so bucket 0 is `{0}`, bucket 1 is `{1, 2}`, …
pub const HIST_BUCKETS: usize = 40;

/// A lock-free power-of-two histogram for non-negative integer samples
/// (durations in microseconds, sizes, counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = ((v + 1).ilog2() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Bucket counts (index = `ilog2(v+1)`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0,1]`): the
    /// inclusive upper edge of the bucket holding that rank.
    pub fn quantile(&self, q: f64) -> u64 {
        let sparse: Vec<(usize, u64)> = self
            .bucket_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        quantile_from_buckets(&sparse, q)
    }

    /// Upper-bound estimate of the largest recorded sample (the upper
    /// edge of the highest non-empty bucket; 0 when empty).
    pub fn max_estimate(&self) -> u64 {
        self.quantile(1.0)
    }
}

/// Inclusive upper edge of bucket `i` (bucket `i` holds samples `v` with
/// `ilog2(v+1) == i`, so the edge is `2^(i+1) - 2`).
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i + 1 >= 64 {
        return u64::MAX;
    }
    (1u64 << (i + 1)) - 2
}

/// [`Histogram::quantile`] over a sparse `(bucket_index, count)` snapshot
/// — the form [`Sample::Histogram`] carries and the `/metrics` rollup
/// ships across processes. Buckets need not be sorted; 0 when empty.
pub fn quantile_from_buckets(buckets: &[(usize, u64)], q: f64) -> u64 {
    let n: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if n == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
    let mut sorted: Vec<(usize, u64)> = buckets.to_vec();
    sorted.sort_unstable();
    let mut seen = 0u64;
    for (i, c) in sorted {
        seen += c;
        if seen >= rank {
            return bucket_upper_edge(i);
        }
    }
    u64::MAX
}

/// Merge one sparse bucket snapshot into an accumulator, summing counts
/// per bucket index. Because every process buckets by the same
/// `ilog2(v+1)` rule, a quantile over the merged buckets equals the
/// quantile the fleet would report had every sample landed in one
/// histogram (to bucket resolution).
pub fn merge_buckets(acc: &mut Vec<(usize, u64)>, other: &[(usize, u64)]) {
    for &(i, c) in other {
        match acc.iter_mut().find(|(j, _)| *j == i) {
            Some((_, n)) => *n += c,
            None => acc.push((i, c)),
        }
    }
    acc.sort_unstable();
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram: count, sum, and non-empty `(bucket_index, count)` pairs.
    Histogram {
        /// Sample count.
        count: u64,
        /// Sample sum.
        sum: u64,
        /// Sparse bucket counts.
        buckets: Vec<(usize, u64)>,
    },
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named sheet of metrics. Registration takes a lock; the returned
/// handles are lock-free atomics, so the hot path never contends.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Sample)> {
        self.lock()
            .iter()
            .map(|(name, m)| {
                let sample = match m {
                    Metric::Counter(c) => Sample::Counter(c.get()),
                    Metric::Gauge(g) => Sample::Gauge(g.get()),
                    Metric::Histogram(h) => Sample::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h
                            .bucket_counts()
                            .into_iter()
                            .enumerate()
                            .filter(|&(_, c)| c > 0)
                            .collect(),
                    },
                };
                (name.clone(), sample)
            })
            .collect()
    }
}

/// Render a snapshot as a JSON object string (counters and gauges as
/// numbers; histograms as `{count, sum, mean, buckets}`).
pub fn snapshot_json(snapshot: &[(String, Sample)]) -> String {
    let mut out = String::from("{");
    for (i, (name, sample)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        crate::json::push_escaped(&mut out, name);
        out.push_str(": ");
        match sample {
            Sample::Counter(v) => out.push_str(&v.to_string()),
            Sample::Gauge(v) => crate::json::push_f64(&mut out, *v),
            Sample::Histogram {
                count,
                sum,
                buckets,
            } => {
                out.push_str(&format!(
                    "{{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
                ));
                for (j, (idx, c)) in buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{idx}, {c}]"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("evals");
        c.inc();
        c.add(4);
        let g = r.gauge("hit_rate");
        g.set(0.75);
        // Same name returns the same underlying metric.
        assert_eq!(r.counter("evals").get(), 5);
        assert_eq!(r.gauge("hit_rate").get(), 0.75);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 7, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 112);
        assert!((h.mean() - 112.0 / 6.0).abs() < 1e-12);
        // Median falls in the {1,2} bucket.
        assert!(h.quantile(0.5) >= 1 && h.quantile(0.5) < 7);
        assert!(h.quantile(1.0) >= 100);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max_estimate(), 0);
        assert_eq!(quantile_from_buckets(&[], 0.9), 0);
        let mut acc = Vec::new();
        merge_buckets(&mut acc, &[]);
        assert_eq!(quantile_from_buckets(&acc, 0.5), 0);
    }

    /// Property: for pseudo-random sample sets split across N process
    /// histograms, the quantile over the *merged* sparse buckets must
    /// land in the same bucket as the quantile over one histogram fed
    /// the concatenation of every sample — i.e. within one power-of-two
    /// bucket of the truth the fleet would see centrally.
    #[test]
    fn merged_quantile_matches_concatenated_to_bucket_resolution() {
        let mut state = 0x243f_6a88_85a3_08d3u64; // deterministic LCG
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..50 {
            let shards = 1 + (case % 4);
            let mut merged: Vec<(usize, u64)> = Vec::new();
            let concat = Histogram::new();
            for _ in 0..shards {
                let h = Histogram::new();
                let n = 1 + next() % 200;
                for _ in 0..n {
                    // Mix magnitudes: exercise buckets 0..~20.
                    let v = next() % (1 << (1 + next() % 20));
                    h.record(v);
                    concat.record(v);
                }
                let sparse: Vec<(usize, u64)> = h
                    .bucket_counts()
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, c)| c > 0)
                    .collect();
                merge_buckets(&mut merged, &sparse);
            }
            for q in [0.5, 0.9, 0.99, 1.0] {
                let got = quantile_from_buckets(&merged, q);
                let want = concat.quantile(q);
                assert_eq!(
                    got, want,
                    "case {case} q {q}: merged {got} vs concatenated {want}"
                );
            }
        }
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z").add(1);
        r.gauge("a").set(2.0);
        r.histogram("m").record(3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
        let json = snapshot_json(&snap);
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.get("z").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            parsed
                .get("m")
                .and_then(|m| m.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
