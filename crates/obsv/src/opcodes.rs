//! The `gmr-opcodes/v1` corpus: opcode-pair statistics aggregated from
//! run journals, driving the VM's superinstruction selection.
//!
//! The GP engine journals pre-aggregated operand-pair counts on every
//! elite change (`Event::Opcodes`). `gmr-trace opcodes` sums those events
//! across one or more journals into an [`OpcodeCorpus`], renders it as
//! `gmr-opcodes/v1` JSON (`results/OPCODE_corpus.json`), and — via
//! `--fusion-table-out` — regenerates the `fusion_gen.rs` peephole table
//! the expression VM compiles in.
//!
//! The selection rule ([`Selection::from_corpus`]) and the generated-file
//! renderer ([`render_fusion_gen`]) are deliberate byte-for-byte siblings
//! of `FusionTable::from_pair_counts` / `render_generated` in `gmr-expr`:
//! this crate must stay expression-free, so the rule is implemented twice
//! and both copies are pinned to the same checked-in artifact — the bench
//! generator test re-derives through the `gmr-expr` copy, CI diffs the
//! file this copy writes.

use crate::json::{parse, push_escaped, Value};
use std::collections::BTreeMap;

/// Schema tag of the corpus document.
pub const SCHEMA: &str = "gmr-opcodes/v1";

/// Minimum corpus support in thousandths of all operand pairs — must
/// match `FusionTable::SUPPORT_PERMILLE` in `gmr-expr`.
pub const SUPPORT_PERMILLE: u64 = 5;

/// Aggregated operand-pair statistics over every elite snapshot seen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpcodeCorpus {
    /// Elite snapshots (`opcodes` events) aggregated.
    pub elites: u64,
    /// Total operand pairs — the support denominator.
    pub total: u64,
    /// `(parent op, child label, position, count)`, sorted by
    /// `(parent, child, pos)` for deterministic output.
    pub pairs: Vec<(String, String, char, u64)>,
}

impl OpcodeCorpus {
    /// Aggregate the `opcodes` events of one or more `gmr-journal/v1`
    /// texts. Journals without opcode events contribute nothing (not an
    /// error — a run whose elite never changed after generation 0 still
    /// has one event; an empty ring has none).
    pub fn aggregate<S: AsRef<str>>(journals: &[S]) -> Result<OpcodeCorpus, String> {
        let mut acc: BTreeMap<(String, String, char), u64> = BTreeMap::new();
        let mut elites = 0u64;
        let mut total = 0u64;
        for (ji, src) in journals.iter().enumerate() {
            let j = crate::trace::parse_journal(src.as_ref())
                .map_err(|e| format!("journal {}: {e}", ji + 1))?;
            for e in &j.events {
                if e.get("type").and_then(Value::as_str) != Some("opcodes") {
                    continue;
                }
                elites += 1;
                total += e.get("total").and_then(Value::as_u64).ok_or_else(|| {
                    format!("journal {}: opcodes event without \"total\"", ji + 1)
                })?;
                let pairs = e.get("pairs").and_then(Value::as_arr).ok_or_else(|| {
                    format!("journal {}: opcodes event without \"pairs\"", ji + 1)
                })?;
                for p in pairs {
                    let q = p.as_arr().filter(|q| q.len() == 4);
                    let parsed = q.and_then(|q| {
                        Some((
                            q[0].as_str()?.to_string(),
                            q[1].as_str()?.to_string(),
                            q[2].as_str().and_then(|s| s.chars().next())?,
                            q[3].as_u64()?,
                        ))
                    });
                    let (parent, child, pos, count) = parsed.ok_or_else(|| {
                        format!("journal {}: malformed opcodes pair entry", ji + 1)
                    })?;
                    *acc.entry((parent, child, pos)).or_insert(0) += count;
                }
            }
        }
        Ok(OpcodeCorpus {
            elites,
            total,
            pairs: acc
                .into_iter()
                .map(|((parent, child, pos), count)| (parent, child, pos, count))
                .collect(),
        })
    }

    /// Render as `gmr-opcodes/v1` JSON (stable order — byte-diffable).
    pub fn render_json(&self) -> String {
        let mut o = String::from("{\n  \"schema\": ");
        push_escaped(&mut o, SCHEMA);
        o.push_str(&format!(
            ",\n  \"elites\": {},\n  \"total\": {},\n  \"pairs\": [",
            self.elites, self.total
        ));
        for (i, (parent, child, pos, count)) in self.pairs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    [");
            push_escaped(&mut o, parent);
            o.push_str(", ");
            push_escaped(&mut o, child);
            o.push_str(", ");
            push_escaped(&mut o, &pos.to_string());
            o.push_str(&format!(", {count}]"));
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Strict-parse a `gmr-opcodes/v1` document.
    pub fn parse_json(src: &str) -> Result<OpcodeCorpus, String> {
        let v = parse(src).map_err(|e| format!("not valid JSON: {e}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            other => return Err(format!("schema tag is {other:?}, expected {SCHEMA:?}")),
        }
        let req = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let pairs = v
            .get("pairs")
            .and_then(Value::as_arr)
            .ok_or("missing array field \"pairs\"")?
            .iter()
            .map(|p| {
                let q = p.as_arr().filter(|q| q.len() == 4);
                q.and_then(|q| {
                    Some((
                        q[0].as_str()?.to_string(),
                        q[1].as_str()?.to_string(),
                        q[2].as_str().and_then(|s| s.chars().next())?,
                        q[3].as_u64()?,
                    ))
                })
                .ok_or_else(|| "malformed pair entry".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok(OpcodeCorpus {
            elites: req("elites")?,
            total: req("total")?,
            pairs,
        })
    }
}

/// The five fusion permissions the corpus selects — field-for-field the
/// shape of `FusionTable` in `gmr-expr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    pub mul_add: bool,
    pub mul_sub: bool,
    pub sub_mul: bool,
    pub var_bin: bool,
    pub const_bin: bool,
}

impl Selection {
    /// The selection rule — must stay in lockstep with
    /// `FusionTable::from_pair_counts` in `gmr-expr` (see module docs).
    pub fn from_corpus(c: &OpcodeCorpus) -> Selection {
        let thresh = (c.total * SUPPORT_PERMILLE / 1000).max(1);
        let count = |f: &dyn Fn(&str, &str, char) -> bool| -> u64 {
            c.pairs
                .iter()
                .filter(|(p, ch, pos, _)| f(p, ch, *pos))
                .map(|&(_, _, _, n)| n)
                .sum()
        };
        let is_bin = |p: &str| matches!(p, "add" | "sub" | "mul" | "div" | "min" | "max" | "pow");
        Selection {
            mul_add: count(&|p, c, _| p == "add" && c == "mul") >= thresh,
            mul_sub: count(&|p, c, pos| p == "sub" && c == "mul" && pos == 'l') >= thresh,
            sub_mul: count(&|p, c, pos| p == "sub" && c == "mul" && pos == 'r') >= thresh,
            var_bin: count(&|p, c, _| is_bin(p) && c == "var") >= thresh,
            const_bin: count(&|p, c, _| is_bin(p) && c == "const") >= thresh,
        }
    }
}

/// Render the `fusion_gen.rs` source for a corpus — byte-for-byte the
/// text `FusionTable::render_generated` produces in `gmr-expr`, so CI can
/// diff this writer's output against the checked-in file.
pub fn render_fusion_gen(c: &OpcodeCorpus, corpus_path: &str) -> String {
    let sel = Selection::from_corpus(c);
    let mut s = String::new();
    s.push_str("//! @generated by `gmr-trace opcodes --fusion-table-out` — do not edit.\n");
    s.push_str("//!\n");
    s.push_str(&format!(
        "//! Corpus: {corpus_path} (gmr-opcodes/v1), {} elite(s), {} operand pair(s).\n",
        c.elites, c.total
    ));
    s.push_str(
        "//! Selection rule: `FusionTable::from_pair_counts` (support ≥ 5‰ of all pairs).\n",
    );
    s.push_str("\nuse crate::fusion::FusionTable;\n\n");
    s.push_str("/// Operand-pair support counts the selection was derived from:\n");
    s.push_str("/// `(parent op, child label, position, count)`, descending count.\n");
    s.push_str("pub const CORPUS_PAIRS: &[(&str, &str, char, u64)] = &[\n");
    let mut sorted: Vec<_> = c.pairs.clone();
    sorted.sort_by(|a, b| {
        b.3.cmp(&a.3)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    for (p, c, pos, n) in &sorted {
        s.push_str(&format!("    (\"{p}\", \"{c}\", '{pos}', {n}),\n"));
    }
    s.push_str("];\n\n");
    s.push_str("/// Total operand pairs in the corpus.\n");
    s.push_str(&format!("pub const CORPUS_TOTAL: u64 = {};\n\n", c.total));
    s.push_str("/// The corpus-selected fusion table.\n");
    s.push_str("pub const SELECTED: FusionTable = FusionTable {\n");
    s.push_str(&format!("    mul_add: {},\n", sel.mul_add));
    s.push_str(&format!("    mul_sub: {},\n", sel.mul_sub));
    s.push_str(&format!("    sub_mul: {},\n", sel.sub_mul));
    s.push_str(&format!("    var_bin: {},\n", sel.var_bin));
    s.push_str(&format!("    const_bin: {},\n", sel.const_bin));
    s.push_str("};\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Event, Journal};

    fn journal_with_opcodes(seed: u64, counts: &[(&str, &str, char, u64)]) -> String {
        let j = Journal::new(64);
        let total = counts.iter().map(|c| c.3).sum();
        j.push(Event::Opcodes {
            seed,
            generation: 3,
            pairs: counts
                .iter()
                .map(|(p, c, pos, n)| (p.to_string(), c.to_string(), *pos, *n))
                .collect(),
            total,
        });
        j.to_jsonl()
    }

    #[test]
    fn aggregates_across_journals_and_round_trips() {
        let a = journal_with_opcodes(1, &[("add", "mul", 'l', 10), ("mul", "var", 'l', 5)]);
        let b = journal_with_opcodes(2, &[("add", "mul", 'l', 7), ("sub", "mul", 'r', 2)]);
        let corpus = OpcodeCorpus::aggregate(&[a, b]).unwrap();
        assert_eq!(corpus.elites, 2);
        assert_eq!(corpus.total, 24);
        assert_eq!(
            corpus.pairs,
            vec![
                ("add".into(), "mul".into(), 'l', 17),
                ("mul".into(), "var".into(), 'l', 5),
                ("sub".into(), "mul".into(), 'r', 2),
            ]
        );
        let json = corpus.render_json();
        let back = OpcodeCorpus::parse_json(&json).unwrap();
        assert_eq!(back, corpus);
        // Journal events validate under the journal schema too.
        assert!(
            crate::trace::validate(&journal_with_opcodes(1, &[("add", "mul", 'l', 1)])).is_empty()
        );
    }

    #[test]
    fn selection_rule_applies_support_threshold() {
        let corpus = OpcodeCorpus {
            elites: 1,
            total: 1000,
            pairs: vec![
                ("add".into(), "mul".into(), 'l', 120),
                ("sub".into(), "mul".into(), 'l', 4),
                ("sub".into(), "mul".into(), 'r', 2),
                ("mul".into(), "var".into(), 'l', 1),
                ("add".into(), "const".into(), 'r', 3),
            ],
        };
        let sel = Selection::from_corpus(&corpus);
        assert!(sel.mul_add);
        assert!(!sel.mul_sub && !sel.sub_mul && !sel.var_bin && !sel.const_bin);
    }

    #[test]
    fn rendered_fusion_gen_has_generated_header_and_table() {
        let corpus = OpcodeCorpus {
            elites: 1,
            total: 100,
            pairs: vec![
                ("add".into(), "mul".into(), 'l', 20),
                ("mul".into(), "var".into(), 'l', 30),
            ],
        };
        let text = render_fusion_gen(&corpus, "results/OPCODE_corpus.json");
        assert!(text.starts_with("//! @generated"));
        assert!(text.contains("pub const CORPUS_TOTAL: u64 = 100;"));
        assert!(text.contains("mul_add: true"));
        assert!(text.contains("const_bin: false"));
        // Descending count order in the embedded corpus.
        let mul_var = text.find("(\"mul\", \"var\", 'l', 30)").unwrap();
        let add_mul = text.find("(\"add\", \"mul\", 'l', 20)").unwrap();
        assert!(mul_var < add_mul);
    }
}
