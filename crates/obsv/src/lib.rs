//! `gmr-obsv` — zero-dependency structured observability for the GMR
//! stack.
//!
//! The paper's GMR searches are long (50 generations × 500 individuals ×
//! multi-station ODE simulation); the only windows into a run used to be
//! `RunReport`'s terminal aggregates and scattered `eprintln!` lines. This
//! crate gives every layer the same three instruments:
//!
//! * **[`span`]s** — RAII scoped timers with thread-safe nesting and two
//!   detail levels, recorded as completed-span events;
//! * **[`metrics`]** — lock-free counters/gauges/histograms behind a named
//!   [`metrics::Registry`], absorbing the engine's one-off atomic counters
//!   into one snapshot-able sheet;
//! * **the [`journal`]** — a bounded ring buffer of typed events
//!   (generation stats, elite lineage, cache evictions, pool rounds,
//!   worker stalls) flushed to `gmr-journal/v1` JSONL, which the
//!   `gmr-trace` CLI summarizes, validates, and converts to Chrome
//!   trace-event JSON for Perfetto / `about://tracing`.
//!
//! Design constraints, in order:
//!
//! 1. **Off the fitness path.** Instrumentation reads clocks and pushes
//!    events; it never touches RNG streams, baselines or fitness values,
//!    so the engine's thread-count determinism contract holds with
//!    observability on or off (pinned by `gp/tests/determinism.rs`).
//! 2. **Cheap when idle, gone when compiled out.** Until [`init`] installs
//!    the global journal every span is one relaxed atomic load; without
//!    the `enabled` cargo feature the span/journal/log call sites compile
//!    to nothing (the [`metrics`] counter types remain — they are program
//!    semantics, see the module docs).
//! 3. **Zero dependencies.** `std` only — the build environment has no
//!    crates.io access, and observability must never constrain the build.

pub mod journal;
pub mod log;
pub mod metrics;
pub mod opcodes;
pub mod span;
pub mod trace;

/// The shared zero-dependency JSON module, re-exported from [`gmr_json`]
/// under its historical path (`gmr_obsv::json::{parse, Value, …}`) — the
/// module lived here before the serving/artifact layers needed it too.
pub use gmr_json as json;

pub use journal::{Event, Journal, Record, SCHEMA};
pub use span::{Detail, Span};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Journal> = OnceLock::new();

/// Default journal capacity: enough for a paper-scale run's coarse events
/// (~10 events/generation × 100 generations × 60 runs) with fine-detail
/// headroom.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Install the global journal (idempotent; the first capacity wins).
/// Returns whether this call performed the installation.
pub fn init(capacity: usize) -> bool {
    if cfg!(not(feature = "enabled")) {
        return false;
    }
    let mut installed = false;
    GLOBAL.get_or_init(|| {
        installed = true;
        Journal::new(capacity)
    });
    installed
}

/// The global journal, when [`init`] has run (and the `enabled` feature is
/// compiled in).
pub fn global() -> Option<&'static Journal> {
    #[cfg(feature = "enabled")]
    {
        GLOBAL.get()
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

/// Whether events are currently being recorded. Callers with non-trivial
/// event-assembly cost should check this first.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && global().is_some()
}

/// Append an event to the global journal (no-op before [`init`]).
#[inline]
pub fn emit(event: Event) {
    if let Some(j) = global() {
        j.push(event);
    }
}

/// Microseconds since the global journal started (0 before [`init`]).
pub fn now_us() -> u64 {
    global().map(Journal::now_us).unwrap_or(0)
}

/// Serialize the global journal to a JSONL file (no-op before [`init`]).
pub fn write_jsonl(path: &str) -> std::io::Result<()> {
    match global() {
        Some(j) => j.write_to_path(path),
        None => Ok(()),
    }
}

/// Remove and return every event currently in the global journal (empty
/// before [`init`]). Primarily for tests.
pub fn drain() -> Vec<Record> {
    global().map(Journal::drain).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_before_init_is_a_silent_no_op() {
        // Runs before `global_init_collects` in no particular order, so it
        // cannot assert the global is uninstalled — only that emit never
        // panics and enabled() agrees with global().
        emit(Event::Note {
            name: "x",
            msg: "pre-init".into(),
        });
        assert_eq!(enabled(), global().is_some());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn global_init_collects_and_flushes() {
        init(1024);
        assert!(enabled());
        emit(Event::Note {
            name: "lib-test",
            msg: "hello".into(),
        });
        let recs = global().unwrap().snapshot();
        assert!(recs.iter().any(|r| matches!(
            &r.event,
            Event::Note {
                name: "lib-test",
                ..
            }
        )));
        // Spans now record too.
        {
            let _sp = span!("test.phase");
        }
        assert!(global().unwrap().snapshot().iter().any(|r| matches!(
            &r.event,
            Event::Span {
                name: "test.phase",
                ..
            }
        )));
    }
}
