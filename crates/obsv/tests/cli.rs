//! End-to-end tests for the `gmr-trace` binary: a journal written through
//! the library round-trips through `validate`, `summary` and `chrome`, and
//! corrupt/truncated journals are rejected with a non-zero exit.

#![cfg(feature = "enabled")]

use gmr_obsv::{Event, Journal};
use std::path::PathBuf;
use std::process::Command;

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_gmr-trace")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gmr-obsv-cli-{}-{name}", std::process::id()));
    p
}

fn sample_journal_text() -> String {
    let j = Journal::new(1024);
    for generation in 0..4u64 {
        j.push(Event::Span {
            name: "gen.evaluate",
            tid: 0,
            depth: 0,
            start_us: generation * 100,
            dur_us: 90,
            arg: Some(generation),
        });
        j.push(Event::Gen {
            seed: 7,
            generation,
            best: 10.0 - generation as f64,
            mean: 12.0,
            evaluations: 16 * (generation + 1),
            steps: 512 * (generation + 1),
            elapsed_us: 95,
            d_evals: 16,
            d_fulls: 15,
            d_shorts: 1,
            d_cache_hits: generation,
            d_cache_misses: 16 - generation,
        });
    }
    j.push(Event::EliteChange {
        seed: 7,
        generation: 3,
        fitness: 7.0,
        size: 9,
        origin: "crossover",
    });
    j.to_jsonl()
}

#[test]
fn validate_accepts_good_journal_and_summary_renders() {
    let path = tmp("good.jsonl");
    std::fs::write(&path, sample_journal_text()).unwrap();

    let out = Command::new(trace_bin())
        .args(["validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `--validate` flag spelling works too.
    let out = Command::new(trace_bin())
        .args(["--validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = Command::new(trace_bin())
        .args(["summary", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gen.evaluate"), "{text}");
    assert!(text.contains("seed 7"), "{text}");
    assert!(text.contains("elite changes"), "{text}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn chrome_conversion_emits_parsable_trace_events() {
    let path = tmp("chrome-src.jsonl");
    let out_path = tmp("chrome-out.json");
    std::fs::write(&path, sample_journal_text()).unwrap();

    let out = Command::new(trace_bin())
        .args([
            "chrome",
            path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let chrome = std::fs::read_to_string(&out_path).unwrap();
    let v = gmr_obsv::json::parse(&chrome).expect("chrome output must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(gmr_obsv::json::Value::as_arr)
        .expect("traceEvents array");
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(gmr_obsv::json::Value::as_str) == Some("X")
            && e.get("name").and_then(gmr_obsv::json::Value::as_str) == Some("gen.evaluate")
    }));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&out_path).ok();
}

fn access(trace: u64, parent: u64, path: &'static str, status: u16) -> Event {
    Event::Access {
        trace,
        span: trace ^ 0x5555,
        parent,
        method: "POST".into(),
        path,
        model: "table5-manual".into(),
        table: "target".into(),
        status,
        shed: false,
        batched: false,
        queue_us: 10,
        sim_us: 100,
        dur_us: 150,
    }
}

#[test]
fn stitch_cli_merges_journals_and_fails_on_orphans() {
    let gw_path = tmp("stitch-gw.jsonl");
    let b0_path = tmp("stitch-b0.jsonl");
    let out_path = tmp("stitch-out.json");

    let gw = Journal::new(256);
    gw.push(access(0xbeef, 0, "gw:/simulate", 200));
    std::fs::write(&gw_path, gw.to_jsonl()).unwrap();

    let b0 = Journal::new(256);
    b0.push(access(0xbeef, 0x1111, "/simulate", 200));
    b0.push(Event::Span {
        name: "serve.sweep.member",
        tid: 0,
        depth: 1,
        start_us: 40,
        dur_us: 100,
        arg: Some(0xbeef),
    });
    std::fs::write(&b0_path, b0.to_jsonl()).unwrap();

    let out = Command::new(trace_bin())
        .args([
            "stitch",
            gw_path.to_str().unwrap(),
            b0_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome = std::fs::read_to_string(&out_path).unwrap();
    let v = gmr_obsv::json::parse(&chrome).expect("stitched output must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(gmr_obsv::json::Value::as_arr)
        .expect("traceEvents array");
    // One flow start + finish pair connecting the gateway hop to the
    // backend, in distinct processes.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(gmr_obsv::json::Value::as_str) == Some("s")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(gmr_obsv::json::Value::as_str) == Some("f")));
    assert!(events
        .iter()
        .any(|e| e.get("pid").and_then(gmr_obsv::json::Value::as_u64) == Some(2)));

    // A gateway hop no backend recorded is an orphan: non-zero exit.
    let gw2 = Journal::new(256);
    gw2.push(access(0xdead, 0, "gw:/simulate", 200));
    std::fs::write(&gw_path, gw2.to_jsonl()).unwrap();
    let out = Command::new(trace_bin())
        .args([
            "stitch",
            gw_path.to_str().unwrap(),
            b0_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "orphaned hop must fail the stitch");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("orphaned"), "{err}");

    // Too few inputs is a usage error.
    let out = Command::new(trace_bin())
        .args(["stitch", gw_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(&gw_path).ok();
    std::fs::remove_file(&b0_path).ok();
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn validate_rejects_truncated_journal() {
    let text = sample_journal_text();
    let cut = &text[..text.len() - 25]; // chop mid-way through the last line
    let path = tmp("truncated.jsonl");
    std::fs::write(&path, cut).unwrap();

    let out = Command::new(trace_bin())
        .args(["validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "truncated journal must fail validation"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("INVALID"), "{err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn validate_rejects_corrupt_journal() {
    let mut text = sample_journal_text();
    text.push_str("{\"seq\": 0, \"t_us\": 0, \"type\": \"span\"}\n"); // seq regression + missing fields
    let path = tmp("corrupt.jsonl");
    std::fs::write(&path, text).unwrap();

    let out = Command::new(trace_bin())
        .args(["validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Wrong schema tag is also fatal.
    let bad_schema = sample_journal_text().replace("gmr-journal/v1", "other/v9");
    std::fs::write(&path, bad_schema).unwrap();
    let out = Command::new(trace_bin())
        .args(["validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_file(&path).ok();
}
