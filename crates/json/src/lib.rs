//! A minimal JSON value model, parser and string escaper.
//!
//! The workspace is air-gapped (no `serde_json`), and three layers need
//! JSON in both directions: the observability journal *writes* JSONL and
//! `gmr-trace` *reads* it back for validation and Chrome-trace conversion;
//! the `gmr-model/v1` artifact format round-trips revised models through
//! disk; and the serving stack parses request bodies and emits responses.
//! This crate implements the subset of JSON those paths need — no
//! comments, no trailing commas, `f64` numbers — with precise error
//! positions so strict validators can point at the corrupt byte. It began
//! life as a private module of `gmr-obsv` (which still re-exports it as
//! `gmr_obsv::json`); it was promoted to its own bottom-layer crate so the
//! serving and artifact code share one parser instead of growing a third
//! hand-rolled one.
//!
//! Numbers render through [`push_f64`] with Rust's shortest-round-trip
//! `f64` formatting, so a value survives serialize → parse bit-identically
//! — the property the serving stack's "responses match in-process
//! evaluation exactly" contract rests on.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects preserve no duplicate keys (last wins) and
/// iterate in key order — deterministic output for tests and diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error
/// (a truncated or concatenated JSONL line must not half-parse).
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON rendering of a float: finite values as-is, non-finite as
/// `null` (strict JSON has no NaN/Infinity tokens).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Serialize a [`Value`] back to JSON text. Objects render in key order
/// (their storage order), so output is deterministic; non-finite numbers
/// become `null`, mirroring [`push_f64`].
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    push_value(&mut out, v);
    out
}

/// Append a JSON rendering of `v` to `out`.
pub fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => push_f64(out, *x),
        Value::Str(s) => push_escaped(out, s),
        Value::Arr(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_value(out, x);
            }
            out.push(']');
        }
        Value::Obj(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_escaped(out, k);
                out.push_str(": ");
                push_value(out, x);
            }
            out.push('}');
        }
    }
}

/// Field-wise sum of the numeric top-level fields of several objects —
/// the cluster `/metrics` rollup: each backend reports a flat object of
/// counters, the gateway serves their sum. Non-numeric fields (nested
/// histogram objects, strings) are skipped; non-objects contribute
/// nothing. Keys missing from some objects sum over those present.
pub fn sum_numeric<'a>(objs: impl IntoIterator<Item = &'a Value>) -> Value {
    let mut acc: BTreeMap<String, Value> = BTreeMap::new();
    for obj in objs {
        let Value::Obj(m) = obj else { continue };
        for (k, v) in m {
            let Value::Num(x) = v else { continue };
            match acc.entry(k.clone()).or_insert(Value::Num(0.0)) {
                Value::Num(total) => *total += x,
                _ => unreachable!("accumulator only holds Num"),
            }
        }
    }
    Value::Obj(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -3.25e1 ").unwrap(), Value::Num(-32.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(parse(r#"{"a": 1"#).is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let mut enc = String::new();
        push_escaped(&mut enc, original);
        assert_eq!(parse(&enc).unwrap(), Value::Str(original.into()));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "null,1.5");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"a": [1, {"b": "x\ny"}], "c": false, "d": null}"#;
        let v = parse(src).unwrap();
        let text = render(&v);
        assert_eq!(parse(&text).unwrap(), v, "render must parse back equal");
    }

    #[test]
    fn sum_numeric_is_fieldwise_over_present_keys() {
        let a = parse(r#"{"hits": 3, "lat": 1.5, "name": "b0", "h": {"count": 2}}"#).unwrap();
        let b = parse(r#"{"hits": 4, "misses": 2, "name": "b1"}"#).unwrap();
        let sum = sum_numeric([&a, &b]);
        assert_eq!(sum.get("hits").and_then(Value::as_f64), Some(7.0));
        assert_eq!(sum.get("misses").and_then(Value::as_f64), Some(2.0));
        assert_eq!(sum.get("lat").and_then(Value::as_f64), Some(1.5));
        assert_eq!(sum.get("name"), None, "strings are not summable");
        assert_eq!(sum.get("h"), None, "nested objects are skipped");
    }
}
