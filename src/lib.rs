//! # gmr-suite — Genetic Model Revision, end to end
//!
//! Meta-crate re-exporting the public API of the GMR reproduction
//! (Park et al., *Knowledge-Guided Dynamic Systems Modeling: A Case Study on
//! Modeling River Water Quality*, ICDE 2021). Depend on this crate to get
//! the whole stack with coherent versions:
//!
//! * [`expr`] — expression trees, protected evaluation, simplification and
//!   the bytecode compiler;
//! * [`tag`] — the tree-adjoining-grammar formalism (elementary trees,
//!   derivation trees, adjoining/substitution, grammars);
//! * [`hydro`] — the river-network substrate and the synthetic Nakdong
//!   dataset generator;
//! * [`bio`] — the expert biological process, its parameter priors and
//!   extension points;
//! * [`gp`] — the TAG3P evolutionary engine with its speed-up techniques;
//! * [`lint`] — static analysis over grammars and evolved equations
//!   (dimensional analysis, grammar lints, interval checks);
//! * [`core`] — the knowledge-guided genetic model revision framework
//!   itself;
//! * [`baselines`] — every comparator from the paper's evaluation.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use gmr_baselines as baselines;
pub use gmr_bio as bio;
pub use gmr_core as core;
pub use gmr_expr as expr;
pub use gmr_gp as gp;
pub use gmr_hydro as hydro;
pub use gmr_lint as lint;
pub use gmr_tag as tag;
