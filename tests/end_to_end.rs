//! End-to-end integration: dataset → grammar → search → revised model →
//! scoring → analysis, across crate boundaries.

use gmr_suite::bio::manual::manual_system;
use gmr_suite::bio::RiverProblem;
use gmr_suite::core::{extension_usage, selectivity, Gmr, GmrConfig};
use gmr_suite::gp::GpConfig;
use gmr_suite::hydro::{generate, SyntheticConfig};

fn small_dataset() -> gmr_suite::hydro::RiverDataset {
    generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1998,
        train_end_year: 1997,
        ..SyntheticConfig::default()
    })
}

fn small_gp(seed: u64) -> GpConfig {
    GpConfig {
        pop_size: 30,
        max_gen: 10,
        local_search_steps: 2,
        threads: 2,
        seed,
        ..GpConfig::default()
    }
}

#[test]
fn gmr_improves_on_the_expert_model() {
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let manual_train = gmr.train.rmse(&manual_system());
    let res = gmr.run(&small_gp(11));
    assert!(
        res.train_rmse < manual_train,
        "revision must beat the seed: {} vs {}",
        res.train_rmse,
        manual_train
    );
    // On this synthetic world the uncalibrated expert model is catastrophic
    // and any reasonable revision is orders of magnitude better.
    assert!(res.train_rmse < manual_train / 10.0);
    assert!(res.test_rmse.is_finite());
}

#[test]
fn revised_models_are_valid_and_interpretable() {
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let res = gmr.run(&small_gp(12));
    // Genotype validates against the grammar.
    res.tree.validate(&gmr.grammar.grammar).unwrap();
    // The rendered equations parse back through the public parser.
    let text = res.render(&gmr.grammar);
    for line in text.lines() {
        let (_, rhs) = line.split_once(" = ").expect("equation line");
        let reparsed = gmr_suite::expr::parse(rhs, &gmr.grammar.names, |k| {
            gmr_suite::bio::params::spec(k).mean
        });
        assert!(reparsed.is_ok(), "unparseable output: {line}");
    }
    // Extension bookkeeping is consistent with chromosome size.
    let usage = extension_usage(&res.tree, &gmr.grammar.grammar);
    let total: usize = usage.iter().map(|(_, c, e)| c + e).sum();
    assert_eq!(total, res.tree.size() - 1);
}

#[test]
fn revisions_respect_table_ii_vocabulary() {
    use gmr_suite::hydro::vars::*;
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let res = gmr.run(&small_gp(13));
    let base: std::collections::BTreeSet<u8> =
        manual_system().iter().flat_map(|e| e.variables()).collect();
    let admissible: std::collections::BTreeSet<u8> =
        [VCD, VPH, VALK, VSD, VDO, VTMP].into_iter().collect();
    for eq in &res.equations {
        for v in eq.variables() {
            assert!(
                base.contains(&v) || admissible.contains(&v),
                "revision introduced inadmissible variable {v}"
            );
        }
    }
}

#[test]
fn multi_run_protocol_sorted_and_deterministic() {
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let mut gp = small_gp(14);
    gp.threads = 1; // full determinism
    gp.es_threshold = None; // remove the one nondeterministic interaction
    let cfg = GmrConfig {
        gp,
        runs: 2,
        ..GmrConfig::default()
    };
    let a = gmr.run_many(&cfg);
    let b = gmr.run_many(&cfg);
    assert_eq!(a.len(), 2);
    assert!(a[0].train_rmse <= a[1].train_rmse);
    assert_eq!(a[0].train_rmse, b[0].train_rmse);
    assert_eq!(a[0].tree, b[0].tree);
}

#[test]
fn selectivity_analysis_over_finalists() {
    use gmr_suite::hydro::vars::*;
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let cfg = GmrConfig {
        gp: small_gp(15),
        runs: 2,
        ..GmrConfig::default()
    };
    let results = gmr.run_many(&cfg);
    let models: Vec<_> = results.iter().map(|r| r.equations.clone()).collect();
    let sel = selectivity(&models, &[VLGT, VTMP, VPH, VALK, VCD, VDO]);
    assert_eq!(sel.len(), 6);
    // The expert model always contains light and temperature.
    assert_eq!(sel[0], 100.0);
    assert_eq!(sel[1], 100.0);
    for s in sel {
        assert!((0.0..=100.0).contains(&s));
    }
}

#[test]
fn speedup_toggles_do_not_change_scores_materially() {
    // Tree caching and runtime compilation are pure optimisations: with ES
    // off and a single thread, toggling them must not change the search
    // trajectory at all.
    let ds = small_dataset();
    let gmr = Gmr::new(&ds);
    let base = GpConfig {
        pop_size: 16,
        max_gen: 4,
        local_search_steps: 1,
        threads: 1,
        es_threshold: None,
        seed: 99,
        ..GpConfig::default()
    };
    let plain = gmr.run(&GpConfig {
        use_cache: false,
        use_compiled: false,
        ..base.clone()
    });
    let fast = gmr.run(&GpConfig {
        use_cache: true,
        use_compiled: true,
        ..base
    });
    assert_eq!(plain.train_rmse, fast.train_rmse);
    assert_eq!(plain.tree, fast.tree);
}

#[test]
fn river_problem_round_trips_through_suite_reexports() {
    let ds = small_dataset();
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let eqs = manual_system();
    let direct = train.rmse(&eqs);
    let via_suite = gmr_suite::hydro::rmse(&train.simulate(&eqs), &train.observed);
    assert_eq!(direct, via_suite);
}
