//! Cross-crate integration for the comparator methods: each family must
//! run against the real river problem and behave sanely relative to the
//! others at smoke-test budgets.

use gmr_suite::baselines::arimax::{ArimaxConfig, ArimaxModel};
use gmr_suite::baselines::calibrators::all_calibrators;
use gmr_suite::baselines::gggp::{Gggp, GggpConfig};
use gmr_suite::baselines::lstm::{LstmConfig, LstmModel};
use gmr_suite::baselines::objective::CalibrationProblem;
use gmr_suite::baselines::{Calibrator, Objective};
use gmr_suite::bio::manual::manual_system;
use gmr_suite::bio::RiverProblem;
use gmr_suite::hydro::{generate, RiverDataset, SyntheticConfig};

fn dataset() -> RiverDataset {
    generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1998,
        train_end_year: 1997,
        ..SyntheticConfig::default()
    })
}

#[test]
fn every_calibrator_improves_the_expert_model() {
    let ds = dataset();
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let manual_rmse = train.rmse(&manual_system());
    let cp = CalibrationProblem::new(train.clone());
    for c in all_calibrators() {
        let out = c.calibrate(&cp, 400, 5);
        assert!(
            out.value < manual_rmse,
            "{} failed to improve: {} vs {}",
            c.name(),
            out.value,
            manual_rmse
        );
        // Calibration only touches parameters: structure must stay intact.
        let eqs = cp.instantiate(&out.theta);
        assert_eq!(eqs[0].size(), manual_system()[0].size());
        // All parameters inside Table III bounds.
        for (i, t) in out.theta.iter().enumerate() {
            let (lo, hi) = cp.bounds(i);
            assert!(
                *t >= lo && *t <= hi,
                "{}: theta[{i}] out of bounds",
                c.name()
            );
        }
    }
}

#[test]
fn gggp_improves_and_respects_grammar() {
    let ds = dataset();
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let manual_rmse = train.rmse(&manual_system());
    let cfg = GggpConfig {
        pop_size: 24,
        max_gen: 6,
        seed: 2,
        ..GggpConfig::default()
    };
    let res = Gggp::new(&train, cfg).run();
    assert!(res.train_rmse < manual_rmse);
    assert!(res.evaluations > 0);
}

#[test]
fn arimax_fits_river_chlorophyll() {
    let ds = dataset();
    let y = ds.observed(ds.train).to_vec();
    let x: Vec<Vec<f64>> = ds
        .forcings(ds.train)
        .iter()
        .map(|row| row.to_vec())
        .collect();
    let m = ArimaxModel::fit(&y, &x, &ArimaxConfig::default()).expect("fits");
    assert!(m.p >= 1 && m.p <= 7);
    let x_test: Vec<Vec<f64>> = ds
        .forcings(ds.test)
        .iter()
        .map(|row| row.to_vec())
        .collect();
    let f = m.forecast(&y, &x_test);
    assert_eq!(f.len(), ds.test.len());
    assert!(f.iter().all(|v| v.is_finite()));
}

#[test]
fn lstm_trains_on_river_features() {
    let ds = dataset();
    let y = ds.observed(ds.train).to_vec();
    let x: Vec<Vec<f64>> = ds
        .forcings(ds.train)
        .iter()
        .map(|row| row.to_vec())
        .collect();
    let cfg = LstmConfig {
        epochs: 2,
        ..LstmConfig::default()
    };
    let model = LstmModel::train(&x, &y, &cfg);
    let pred = model.predict(&x);
    assert_eq!(pred.len(), x.len());
    assert!(pred.iter().all(|p| p.is_finite() && *p >= 0.0));
    // Must beat an all-zeros predictor after even minimal training.
    let zeros = vec![0.0; y.len()];
    assert!(gmr_suite::hydro::rmse(&pred, &y) < gmr_suite::hydro::rmse(&zeros, &y));
}

#[test]
fn calibration_beats_random_parameters_on_average() {
    // The structured optimisers must outperform a tiny random-sampling
    // budget given the same objective.
    let ds = dataset();
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let cp = CalibrationProblem::new(train);
    let mc = gmr_suite::baselines::calibrators::MonteCarlo.calibrate(&cp, 30, 3);
    let ga = gmr_suite::baselines::calibrators::GeneticAlgorithm::default().calibrate(&cp, 400, 3);
    assert!(ga.value <= mc.value, "GA {} vs MC {}", ga.value, mc.value);
}
