//! Property-style integration over the *river* grammar (not the toy test
//! fixtures): the full TAG pipeline must be closed under every genetic
//! operator, and every reachable genotype must lower to an evaluable
//! two-equation system.

use gmr_suite::bio::river_grammar;
use gmr_suite::core::river_priors;
use gmr_suite::expr::EvalContext;
use gmr_suite::gp::{crossover, deletion, gaussian_mutation, insertion, subtree_mutation};
use gmr_suite::tag::lower::lower_system;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn forcing_row() -> [f64; gmr_suite::hydro::NUM_VARS] {
    let mut row = [0.0; gmr_suite::hydro::NUM_VARS];
    row[0] = 15.0; // Vlgt
    row[1] = 2.0; // Vn
    row[2] = 0.05; // Vp
    row[3] = 3.0; // Vsi
    row[4] = 22.0; // Vtmp
    row[5] = 8.0; // Vdo
    row[6] = 300.0; // Vcd
    row[7] = 7.8; // Vph
    row[8] = 55.0; // Valk
    row[9] = 1.0; // Vsd
    row
}

fn assert_sound(tree: &gmr_suite::tag::DerivTree, g: &gmr_suite::tag::Grammar, what: &str) {
    tree.validate(g)
        .unwrap_or_else(|e| panic!("{what}: invalid genotype: {e}"));
    let eqs = lower_system(&tree.derived(g), 2)
        .unwrap_or_else(|e| panic!("{what}: failed to lower: {e}"));
    let row = forcing_row();
    let ctx = EvalContext {
        vars: &row,
        state: &[10.0, 2.0],
    };
    for eq in &eqs {
        assert!(eq.eval(&ctx).is_finite(), "{what}: non-finite evaluation");
    }
}

#[test]
fn the_pipeline_is_closed_under_every_operator() {
    let rg = river_grammar();
    let g = &rg.grammar;
    let priors = river_priors();
    let mut rng = StdRng::seed_from_u64(0xB10);
    for round in 0..200 {
        let mut a = g.random_tree(&mut rng, 2, 50);
        let mut b = g.random_tree(&mut rng, 2, 50);
        match round % 5 {
            0 => {
                crossover(&mut a, &mut b, g, &mut rng, 2, 50, 8);
                assert_sound(&b, g, "crossover-b");
            }
            1 => {
                subtree_mutation(&mut a, g, &mut rng, 50, 8);
            }
            2 => {
                gaussian_mutation(&mut a, g, &priors, rng.gen_range(0.1..1.0), &mut rng);
            }
            3 => {
                insertion(&mut a, g, &mut rng, 50);
            }
            _ => {
                deletion(&mut a, g, &mut rng, 2);
            }
        }
        assert_sound(&a, g, "operator output");
        assert!(a.size() <= 50, "size bound violated: {}", a.size());
    }
}

#[test]
fn gaussian_mutation_respects_table_iii_bounds_on_river_genotypes() {
    let rg = river_grammar();
    let priors = river_priors();
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..50 {
        let mut t = rg.grammar.random_tree(&mut rng, 5, 30);
        gaussian_mutation(&mut t, &rg.grammar, &priors, 1.0, &mut rng);
        for (kind, v) in t.root.mutable_params(&rg.grammar) {
            let spec = gmr_suite::bio::params::spec(kind);
            assert!(
                *v >= spec.min && *v <= spec.max,
                "{}: {} outside [{}, {}]",
                spec.name,
                v,
                spec.min,
                spec.max
            );
        }
    }
}

#[test]
fn chromosome_sizes_span_the_configured_range() {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(7);
    let mut seen_small = false;
    let mut seen_large = false;
    for _ in 0..300 {
        let t = rg.grammar.random_tree(&mut rng, 2, 50);
        if t.size() <= 5 {
            seen_small = true;
        }
        if t.size() >= 40 {
            seen_large = true;
        }
    }
    assert!(
        seen_small && seen_large,
        "initialisation should cover the size range"
    );
}

#[test]
fn simplification_is_sound_on_river_phenotypes() {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(3);
    let row = forcing_row();
    for _ in 0..100 {
        let t = rg.grammar.random_tree(&mut rng, 2, 40);
        let eqs = lower_system(&t.derived(&rg.grammar), 2).expect("lowers");
        for eq in &eqs {
            let s = gmr_suite::expr::simplify(eq);
            for bphy in [0.1, 10.0, 200.0] {
                let ctx = EvalContext {
                    vars: &row,
                    state: &[bphy, 2.0],
                };
                assert_eq!(
                    eq.eval(&ctx),
                    s.eval(&ctx),
                    "simplify changed river phenotype"
                );
            }
            assert!(s.size() <= eq.size());
        }
    }
}

#[test]
fn compiled_river_phenotypes_match_interpreter() {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(9);
    let row = forcing_row();
    for _ in 0..100 {
        let t = rg.grammar.random_tree(&mut rng, 2, 40);
        let eqs = lower_system(&t.derived(&rg.grammar), 2).expect("lowers");
        for eq in &eqs {
            let c = gmr_suite::expr::CompiledExpr::compile(eq);
            let ctx = EvalContext {
                vars: &row,
                state: &[12.0, 3.0],
            };
            assert_eq!(c.eval(&ctx), eq.eval(&ctx));
        }
    }
}
