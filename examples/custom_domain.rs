//! Apply the framework to a *different* dynamic system — the paper's
//! "Application to Other Problems" claim, demonstrated end to end.
//!
//! ```sh
//! cargo run --release --example custom_domain
//! ```
//!
//! Domain: a logistic population `dN/dt = r·N·(1 − N/K)`. An expert wrote
//! that model; the real population additionally responds to temperature
//! (`× (1 + c·(T − 20))`, strong enough to drive cold-season declines),
//! which the expert omitted. We encode the expert
//! model as an α-tree with one extension point, offer temperature and a
//! random constant as revision vocabulary, and let the TAG3P engine find
//! the missing mechanism.

use gmr_suite::expr::{BinOp, EvalContext};
use gmr_suite::gp::{Engine, Evaluator, GpConfig, ParamPriors};
use gmr_suite::tag::tree::ElemTreeBuilder;
use gmr_suite::tag::{GrammarBuilder, Token, TreeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameter kinds for this domain.
const R_GROWTH: u16 = 0; // r, prior mean 0.1
const K_CAP: u16 = 1; // K, prior mean 80
const R_RAND: u16 = 2; // revision-introduced constants

fn main() {
    // ---- 1. Ground truth with a hidden temperature response. ----
    let days = 400;
    let mut rng = StdRng::seed_from_u64(7);
    let temps: Vec<f64> = (0..days)
        .map(|t| 20.0 + 8.0 * (t as f64 / 60.0).sin() + rng.gen_range(-0.5..0.5))
        .collect();
    let mut n = 5.0f64;
    let observed: Vec<f64> = temps
        .iter()
        .map(|&temp| {
            let growth = 0.12 * n * (1.0 - n / 75.0) * (1.0 + 0.15 * (temp - 20.0));
            n = (n + growth).max(0.01);
            n * (1.0 + rng.gen_range(-0.01..0.01))
        })
        .collect();

    // ---- 2. The expert grammar: dN/dt = { r·N·(1 − N/K) } Ext. ----
    let mut gb = GrammarBuilder::new();
    let start = gb.sym("S");
    let exp = gb.sym("Exp");
    let extc = gb.sym("ExtC");
    let exte = gb.sym("ExtE");
    let vsym = gb.sym("V");
    gb.start(start);

    let mut a = ElemTreeBuilder::new("logistic", TreeKind::Initial, start);
    let root = a.root();
    let marked = a.interior(root, extc);
    // r * N * (1 - N / K), spelled as nested binary nodes.
    let prod = a.interior(marked, exp);
    let rn = a.interior(prod, exp);
    a.anchor(
        rn,
        Token::Param {
            kind: R_GROWTH,
            value: 0.1,
        },
    );
    a.anchor(rn, Token::Bin(BinOp::Mul));
    a.anchor(rn, Token::State(0));
    a.anchor(prod, Token::Bin(BinOp::Mul));
    let lim = a.interior(prod, exp);
    a.anchor(lim, Token::Num(1.0));
    a.anchor(lim, Token::Bin(BinOp::Sub));
    let frac = a.interior(lim, exp);
    a.anchor(frac, Token::State(0));
    a.anchor(frac, Token::Bin(BinOp::Div));
    a.anchor(
        frac,
        Token::Param {
            kind: K_CAP,
            value: 80.0,
        },
    );
    gb.tree(a.build().expect("valid alpha"));

    // Connector: ExtC → [ExtC*, ×, ExtE → [V↓]] — the expert believes any
    // missing mechanism modulates the growth rate multiplicatively.
    let mut c = ElemTreeBuilder::new("connector", TreeKind::Auxiliary, extc);
    let r = c.root();
    c.foot(r, extc);
    c.anchor(r, Token::Bin(BinOp::Mul));
    let w = c.interior(r, exte);
    c.subst(w, vsym);
    gb.tree(c.build().expect("valid connector"));
    // Extenders: grow the new material with + − × ÷.
    for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
        let mut e = ElemTreeBuilder::new(format!("ext-{}", op.symbol()), TreeKind::Auxiliary, exte);
        let r = e.root();
        e.foot(r, exte);
        e.anchor(r, Token::Bin(op));
        e.subst(r, vsym);
        gb.tree(e.build().expect("valid extender"));
    }
    gb.pool(
        vsym,
        [
            Token::Var(0),
            Token::Param {
                kind: R_RAND,
                value: 0.5,
            },
        ],
    );
    gb.param_range(R_RAND, 0.0, 1.0);
    let grammar = gb.build().expect("grammar assembles");

    // ---- 3. The fitness problem: forward-integrate and score. ----
    struct Population {
        temps: Vec<f64>,
        observed: Vec<f64>,
    }
    impl Evaluator for Population {
        fn num_equations(&self) -> usize {
            1
        }
        fn num_cases(&self) -> usize {
            self.observed.len()
        }
        fn evaluate(
            &self,
            ph: &gmr_suite::gp::Phenotype,
            ctl: &mut dyn FnMut(f64, usize) -> bool,
        ) -> (f64, bool) {
            let eqs = ph.eqs();
            let comp = ph.compiled();
            let mut scratch = comp.map(|sys| sys.scratch());
            let mut out = [0.0f64];
            let mut n = self.observed[0];
            let mut sse = 0.0;
            let total = self.observed.len();
            for (i, (&temp, &obs)) in self.temps.iter().zip(&self.observed).enumerate() {
                let err = n - obs;
                sse += err * err;
                let vars = [temp];
                let state = [n];
                let ctx = EvalContext {
                    vars: &vars,
                    state: &state,
                };
                let dn = match (&comp, &mut scratch) {
                    (Some(sys), Some(scratch)) => {
                        sys.eval_step(&ctx, scratch, &mut out);
                        out[0]
                    }
                    _ => eqs[0].eval(&ctx),
                };
                n = (n + dn).clamp(0.0, 1e9);
                if (i + 1) % 32 == 0 && i + 1 < total {
                    let running = (sse / (i + 1) as f64).sqrt();
                    if !ctl(running, i + 1) {
                        return (running, false);
                    }
                }
            }
            ((sse / total as f64).sqrt(), true)
        }
    }

    let problem = Population { temps, observed };
    let priors = ParamPriors::new([(0.1, 0.01, 0.5), (80.0, 20.0, 200.0), (0.5, 0.0, 1.0)]);
    let cfg = GpConfig {
        pop_size: 60,
        max_gen: 50,
        min_size: 1,
        max_size: 12,
        local_search_steps: 2,
        seed: 3,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        ..GpConfig::default()
    };
    let engine = Engine::new(&grammar, &problem, priors, cfg);
    let report = engine.run();

    // ---- 4. What did it find? ----
    let names = gmr_suite::expr::NameTable::new(&["T"], &["N"], &["r", "K", "R"]);
    let eqs = engine.phenotype(&report.best.tree).expect("lowers");
    println!("expert model : dN/dt = r[0.1] * N * (1 - N / K[80])");
    println!("ground truth : dN/dt = 0.12 * N * (1 - N / 75) * (1 + 0.15*(T - 20))");
    println!("revised model: dN/dt = {}", eqs[0].display(&names));
    println!(
        "\nfit RMSE {:.4} after {} evaluations (uses temperature: {})",
        report.best.fitness,
        report.evaluations,
        eqs[0].variables().contains(&0)
    );
}
