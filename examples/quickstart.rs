//! Quickstart: revise the expert river model on synthetic data in under a
//! minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The tour: generate a small synthetic river dataset, seed GMR with the
//! expert phytoplankton/zooplankton process (eqs. 1–2 of the paper), run a
//! short knowledge-guided search, and print the revised equations with
//! train/test accuracy.

use gmr_suite::bio::manual::manual_system;
use gmr_suite::core::{Gmr, GmrConfig};
use gmr_suite::gp::GpConfig;
use gmr_suite::hydro::{generate, SyntheticConfig};

fn main() {
    // 1. A four-year slice of the synthetic Nakdong record (three years of
    //    training, one held-out year).
    let dataset = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1999,
        train_end_year: 1998,
        ..SyntheticConfig::default()
    });
    println!(
        "dataset: {} days at {} stations; forecasting chlorophyll-a at {}",
        dataset.days,
        dataset.stations.len(),
        dataset.network.station(dataset.target).name
    );

    // 2. Bind the GMR framework: this compiles the expert process and the
    //    Table II revision vocabulary into a tree-adjoining grammar.
    let gmr = Gmr::new(&dataset);

    // 3. How bad is the unrevised expert model?
    let manual = manual_system();
    println!(
        "\nexpert model (prior means): train RMSE {:.3e}, test RMSE {:.3e}",
        gmr.train.rmse(&manual),
        gmr.test.rmse(&manual)
    );

    // 4. A short knowledge-guided revision (the paper runs 200×100×60;
    //    this is a taste).
    let cfg = GmrConfig {
        gp: GpConfig {
            pop_size: 40,
            max_gen: 15,
            local_search_steps: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 42,
            ..GpConfig::default()
        },
        runs: 2,
        ..GmrConfig::default()
    };
    println!(
        "\nrevising ({} runs × {} generations)…",
        cfg.runs, cfg.gp.max_gen
    );
    let results = gmr.run_many(&cfg);
    let best = &results[0];

    println!(
        "\nbest revised model: train RMSE {:.3}  test RMSE {:.3}  (chromosome size {})",
        best.train_rmse,
        best.test_rmse,
        best.tree.size()
    );
    println!("\n{}", best.render(&gmr.grammar));
    println!(
        "engine: {} evaluations, {} short-circuited, cache hit rate {:.0}%",
        best.report.evaluations,
        best.report.short_circuited,
        100.0 * best.report.cache_hit_rate
    );
}
