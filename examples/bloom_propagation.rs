//! Watch an algal bloom propagate down the river network under the full
//! Appendix A coupling: the biological process runs in *every* station's
//! water body, and biomass rides the flow through confluences to the
//! estuary.
//!
//! ```sh
//! cargo run --release --example bloom_propagation
//! ```

use gmr_suite::baselines::objective::CalibrationProblem;
use gmr_suite::baselines::Calibrator;
use gmr_suite::bio::RiverProblem;
use gmr_suite::bio::{network_rmse, simulate_network, NetworkSimOptions};
use gmr_suite::hydro::{generate, SyntheticConfig};

fn main() {
    let ds = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1998,
        train_end_year: 1997,
        ..SyntheticConfig::default()
    });

    // Calibrate the expert model first (the raw prior means diverge), then
    // run it over the whole network.
    println!("calibrating the expert model (SCE-UA, 1500 evaluations)…");
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let cp = CalibrationProblem::new(train);
    let out = gmr_suite::baselines::calibrators::SceUa::default().calibrate(&cp, 1500, 9);
    println!("calibrated train RMSE at S1: {:.2}", out.value);
    let eqs = cp.instantiate(&out.theta);

    let res = simulate_network(&ds, ds.test, &eqs, NetworkSimOptions::default());

    // Per-station accuracy of the single calibrated process, estuary to
    // headwaters.
    println!("\nper-station test RMSE of one calibrated process (Appendix A coupling):");
    for (name, rmse) in network_rmse(&ds, ds.test, &res) {
        println!("  {name:<4} {rmse:>8.2}");
    }

    // The biggest predicted bloom at the estuary, as seen along the main
    // stem in the days around its peak.
    let s1 = ds.network.by_name("S1").expect("station exists").0;
    let peak = (0..res.bphy[s1].len())
        .max_by(|&a, &b| res.bphy[s1][a].total_cmp(&res.bphy[s1][b]))
        .expect("non-empty test period");
    println!(
        "\npredicted chlorophyll-a along the main channel around the S1 peak (test day {peak}):"
    );
    let stems = ["S6", "S5", "S4", "S3", "S2", "S1"];
    print!("{:>6}", "day");
    for s in stems {
        print!("{s:>8}");
    }
    println!();
    let start = peak.saturating_sub(40);
    let end = (peak + 40).min(res.bphy[s1].len() - 1);
    for day in (start..=end).step_by(10) {
        print!("{day:>6}");
        for s in stems {
            let sid = ds.network.by_name(s).expect("station exists").0;
            print!("{:>8.1}", res.bphy[sid][day]);
        }
        println!();
    }
    println!(
        "\n(one set of constants serves the whole river: accuracy degrades away\n from S1, the station it was calibrated against — nutrient-rich\n tributaries T1–T3 are hit hardest)"
    );
}
