//! Drive the hydrological substrate directly: route a monsoon pulse through
//! the Nakdong network and watch it arrive at the estuary.
//!
//! ```sh
//! cargo run --release --example river_network
//! ```
//!
//! This exercises the Appendix A machinery on its own — the station DAG
//! with virtual confluence nodes, the eq. 9 flow mass balance, and
//! flow-weighted attribute merging — independent of any model revision.

use gmr_suite::hydro::flow::route_attributes;
use gmr_suite::hydro::{route_flows, RiverNetwork, NUM_VARS};

fn main() {
    let net = RiverNetwork::nakdong();
    println!(
        "Nakdong network: {} stations, {} segments",
        net.len(),
        net.edges().len()
    );
    for (id, st) in net.stations() {
        let ups: Vec<String> = net
            .upstream_of(id)
            .map(|e| net.station(e.from).name.clone())
            .collect();
        println!(
            "  {:<4} ({:?}, retention {:.2}) <- [{}]",
            st.name,
            st.kind,
            st.retention,
            ups.join(", ")
        );
    }

    // A 60-day window: dry except one monsoon burst at the headwaters on
    // day 10.
    let days = 60;
    let mut runoff = vec![vec![0.0; days]; net.len()];
    for hw in ["S6", "T1", "T2", "T3"] {
        let id = net.by_name(hw).expect("station exists");
        runoff[id.0] = vec![2.0; days];
        runoff[id.0][10] = 500.0;
    }
    let init = vec![50.0; net.len()];
    let flows = route_flows(&net, &runoff, &init, days);

    let s1 = net.by_name("S1").expect("outlet exists");
    let peak_day = (0..days)
        .max_by(|&a, &b| flows[s1.0][a].total_cmp(&flows[s1.0][b]))
        .expect("non-empty");
    println!("\nmonsoon burst at headwaters on day 10; peak flow at S1 on day {peak_day}:");
    for day in [9, 10, 12, 14, peak_day, peak_day + 5] {
        if day < days {
            println!(
                "  day {:>2}: S6 {:>8.1}  S4 {:>8.1}  S2 {:>8.1}  S1 {:>8.1} m3/s",
                day,
                flows[net.by_name("S6").expect("exists").0][day],
                flows[net.by_name("S4").expect("exists").0][day],
                flows[net.by_name("S2").expect("exists").0][day],
                flows[s1.0][day],
            );
        }
    }

    // Attribute routing: tributary T1 carries hot, nutrient-rich water
    // (attribute 1 = nitrogen); watch the flow-weighted blend at the
    // confluence VS1 and downstream at S1.
    let mut local = vec![vec![[0.0f64; NUM_VARS]; days]; net.len()];
    for (id, st) in net.stations() {
        let n_level = if st.name == "T1" { 8.0 } else { 1.0 };
        for row in &mut local[id.0] {
            row[1] = n_level;
        }
    }
    let attrs = route_attributes(&net, &flows, &local, days);
    let vs1 = net.by_name("VS1").expect("exists");
    println!(
        "\nnitrogen after the T1 confluence (T1 feeds 8.0, main stem 1.0):\n  VS1 blend day 30: {:.2}   S1 day 40: {:.2}",
        attrs[vs1.0][30][1], attrs[s1.0][40][1]
    );
    println!("(virtual stations mix by flow weight; the tributary signal dilutes downstream)");
}
