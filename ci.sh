#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the gmr-lint battery.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> gmr-lint --builtin (zero errors required)"
cargo run --release -q -p gmr-lint -- --builtin

echo "==> bench_engine smoke (determinism + speedup gate)"
cargo run --release -q -p gmr-bench --bin bench_engine -- --quick --out BENCH_engine.json
cargo run --release -q -p gmr-bench --bin bench_engine -- --validate BENCH_engine.json

echo "==> bench_vm smoke (tier equivalence + 1.5x speedup gate)"
cargo run --release -q -p gmr-bench --bin bench_vm -- --quick --out BENCH_vm.json
cargo run --release -q -p gmr-bench --bin bench_vm -- --validate BENCH_vm.json

echo "CI OK"
