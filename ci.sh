#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the gmr-lint battery.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> unsafe blocks carry SAFETY comments"
# Every `unsafe` in source must have a `SAFETY` comment within the 12
# preceding lines (block comments count once, at their first line).
# `unsafe fn`/`unsafe impl` are matched only as declarations (line-start,
# optional visibility) so `unsafe fn` *pointer types* — thunk tables and
# kernel-table entries in threaded.rs/simd.rs — don't false-positive.
find crates -name '*.rs' -path '*/src/*' -exec awk '
    FNR == 1 { last = -100 }
    /SAFETY/ { last = FNR }
    /^[ \t]*(pub(\([a-z]+\))? )?unsafe (impl|fn)|unsafe \{/ {
        if (FNR - last > 12) {
            printf "%s:%d: unsafe without a SAFETY comment\n", FILENAME, FNR
            bad = 1
        }
    }
    END { exit bad }
' {} + || { echo "FAIL: undocumented unsafe"; exit 1; }

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> determinism with observability compiled out"
cargo test -q -p gmr-gp --no-default-features --test determinism --test obsv_determinism

echo "==> fusion table is exactly what the committed opcode corpus derives"
cargo run --release -q -p gmr-obsv --bin gmr-trace -- opcodes \
    --from-corpus results/OPCODE_corpus.json --fusion-table-out FUSION_gen.rs
diff -u crates/expr/src/fusion_gen.rs FUSION_gen.rs || {
    echo "FAIL: crates/expr/src/fusion_gen.rs drifted from results/OPCODE_corpus.json"
    echo "      (regenerate with gmr-trace opcodes --from-corpus ... --fusion-table-out)"
    exit 1
}

echo "==> gmr-lint --builtin (zero errors required)"
cargo run --release -q -p gmr-lint -- --builtin

echo "==> gmr-lint --bytecode (abstract interpretation + unsafe-bounds proof)"
cargo run --release -q -p gmr-lint -- --builtin --bytecode --json \
    --safety-out SAFETY_bytecode.json > LINT_bytecode.json
diff -u results/SAFETY_bytecode.json SAFETY_bytecode.json || {
    echo "FAIL: SafetyReport drifted from the committed baseline"
    echo "      (review and copy SAFETY_bytecode.json to results/ if intended)"
    exit 1
}

echo "==> bench_engine smoke (determinism + speedup + obsv overhead gates)"
cargo run --release -q -p gmr-bench --bin bench_engine -- --quick --out BENCH_engine.json --journal BENCH_engine.jsonl
cargo run --release -q -p gmr-bench --bin bench_engine -- --validate BENCH_engine.json

echo "==> run journal round-trip (gmr-trace validate + summary + chrome)"
cargo run --release -q -p gmr-obsv --bin gmr-trace -- validate BENCH_engine.jsonl
cargo run --release -q -p gmr-obsv --bin gmr-trace -- summary BENCH_engine.jsonl
cargo run --release -q -p gmr-obsv --bin gmr-trace -- chrome BENCH_engine.jsonl --out BENCH_engine.chrome.json

echo "==> committed benchmark baselines re-validate against current gates"
cargo run --release -q -p gmr-bench --bin bench_vm -- --validate results/BENCH_vm.json
cargo run --release -q -p gmr-bench --bin bench_engine -- --validate results/BENCH_engine.json
cargo run --release -q -p gmr-bench --bin bench_serve -- --validate results/BENCH_serve.json
cargo run --release -q -p gmr-bench --bin bench_scenario -- --validate results/BENCH_scenario.json

echo "==> bench_vm smoke, scalar build (tier bit-identity + per-tier floors)"
cargo run --release -q -p gmr-bench --bin bench_vm -- --quick --out BENCH_vm.json
cargo run --release -q -p gmr-bench --bin bench_vm -- --validate BENCH_vm.json

echo "==> bench_serve solo smoke (bit-identity + batched work-sharing gate)"
cargo run --release -q -p gmr-bench --bin bench_serve -- --solo --quick --out BENCH_serve.json
cargo run --release -q -p gmr-bench --bin bench_serve -- --validate BENCH_serve.json

echo "==> bench_serve cluster smoke (2 backends: scaling floor, bit-identity, 429 propagation)"
cargo run --release -q -p gmr-bench --bin bench_serve -- --cluster --quick --backends 2 --out BENCH_cluster.json
cargo run --release -q -p gmr-bench --bin bench_serve -- --validate BENCH_cluster.json

echo "==> gmr-serve smoke (artifact load, concurrent requests, SIGTERM drain)"
rm -rf smoke-serve
mkdir -p smoke-serve/artifacts
./target/release/gmr-serve export --out smoke-serve/artifacts/table5.json
echo "==> gmr-lint --bytecode over the exported artifact"
./target/release/gmr-lint --artifact smoke-serve/artifacts/table5.json --bytecode
./target/release/gmr-serve serve --no-builtin --artifacts smoke-serve/artifacts \
    --days 1461 --port-file smoke-serve/port --journal smoke-serve/journal.jsonl &
SERVE_PID=$!
i=0
while [ ! -f smoke-serve/port ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "FAIL: gmr-serve never wrote its port file"
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat smoke-serve/port)
./target/release/gmr-serve request "$ADDR" GET /healthz > smoke-serve/healthz.json
REQ_PIDS=""
for n in 1 2 3 4; do
    ./target/release/gmr-serve request "$ADDR" POST /simulate --data \
        "{\"model\": \"table5-manual\", \"forcings_ref\": \"target\", \"mode\": \"summary\", \"init\": [$n, 1.0]}" \
        > "smoke-serve/sim-$n.json" &
    REQ_PIDS="$REQ_PIDS $!"
done
for p in $REQ_PIDS; do
    wait "$p" || { echo "FAIL: concurrent simulate request failed"; exit 1; }
done
./target/release/gmr-serve request "$ADDR" GET /metrics > smoke-serve/metrics.json
for f in smoke-serve/healthz.json smoke-serve/sim-1.json smoke-serve/sim-2.json \
         smoke-serve/sim-3.json smoke-serve/sim-4.json smoke-serve/metrics.json; do
    cargo run --release -q -p gmr-obsv --bin gmr-trace -- json "$f"
done
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: gmr-serve did not drain cleanly on SIGTERM"; exit 1; }
cargo run --release -q -p gmr-obsv --bin gmr-trace -- validate smoke-serve/journal.jsonl
grep -q '"type": "request"' smoke-serve/journal.jsonl || {
    echo "FAIL: journal carries no request events"
    exit 1
}

echo "==> gmr-serve cluster smoke (2 supervised backends, gateway rollup, journal stitch, SIGTERM drain)"
rm -rf smoke-cluster
mkdir -p smoke-cluster
./target/release/gmr-serve cluster --backends 2 --days 365 \
    --dir smoke-cluster/scratch --port-file smoke-cluster/port \
    --journal smoke-cluster/gateway.jsonl &
CLUSTER_PID=$!
i=0
while [ ! -f smoke-cluster/port ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: gmr-serve cluster never wrote its gateway port file"
        kill "$CLUSTER_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
GW_ADDR=$(cat smoke-cluster/port)
./target/release/gmr-serve request "$GW_ADDR" GET /healthz > smoke-cluster/healthz.json
grep -q '"alive": 2' smoke-cluster/healthz.json || {
    echo "FAIL: gateway does not see 2 live backends"
    exit 1
}
./target/release/gmr-serve request "$GW_ADDR" POST /simulate --data \
    '{"model": "table5-manual", "forcings_ref": "target", "mode": "summary", "init": [4.0, 1.0]}' \
    > smoke-cluster/sim.json
./target/release/gmr-serve request "$GW_ADDR" GET /metrics > smoke-cluster/metrics.json
for f in smoke-cluster/healthz.json smoke-cluster/sim.json smoke-cluster/metrics.json; do
    cargo run --release -q -p gmr-obsv --bin gmr-trace -- json "$f"
done
grep -q '"backends"' smoke-cluster/metrics.json || {
    echo "FAIL: cluster /metrics rollup carries no backends array"
    exit 1
}
grep -q '"slo"' smoke-cluster/metrics.json || {
    echo "FAIL: cluster /metrics carries no slo section"
    exit 1
}
kill -TERM "$CLUSTER_PID"
wait "$CLUSTER_PID" || { echo "FAIL: gmr-serve cluster did not drain cleanly on SIGTERM"; exit 1; }
for j in smoke-cluster/gateway.jsonl smoke-cluster/scratch/backend-0.jsonl \
         smoke-cluster/scratch/backend-1.jsonl; do
    [ -f "$j" ] || { echo "FAIL: missing journal $j"; exit 1; }
    cargo run --release -q -p gmr-obsv --bin gmr-trace -- validate "$j"
done
# Stitch the three journals into one cross-process Chrome trace; a
# gateway hop with no matching backend span exits non-zero.
cargo run --release -q -p gmr-obsv --bin gmr-trace -- stitch \
    smoke-cluster/gateway.jsonl \
    smoke-cluster/scratch/backend-0.jsonl smoke-cluster/scratch/backend-1.jsonl \
    --out smoke-cluster/stitched.trace.json
cargo run --release -q -p gmr-obsv --bin gmr-trace -- json smoke-cluster/stitched.trace.json

echo "==> bench_scenario smoke (one /sweep >= 4x solo what-if + per-variant bit-identity, gateway included)"
cargo run --release -q -p gmr-bench --bin bench_scenario -- --quick --backends 2 --out BENCH_scenario.json
cargo run --release -q -p gmr-bench --bin bench_scenario -- --validate BENCH_scenario.json

echo "==> scenario what-if smoke (scenario-spec CLI -> cluster broadcast -> /sweep via gateway)"
rm -rf smoke-scenario
mkdir -p smoke-scenario
./target/release/gmr-serve scenario-spec --name ci-what-if --stations 12 --out smoke-scenario/spec.json
./target/release/gmr-serve cluster --backends 2 --days 365 \
    --dir smoke-scenario/scratch --port-file smoke-scenario/port &
SCN_PID=$!
i=0
while [ ! -f smoke-scenario/port ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: scenario smoke cluster never wrote its gateway port file"
        kill "$SCN_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
SCN_ADDR=$(cat smoke-scenario/port)
./target/release/gmr-serve request "$SCN_ADDR" POST /scenarios \
    --body-file smoke-scenario/spec.json > smoke-scenario/admit.json
grep -q '"admitted": true' smoke-scenario/admit.json || {
    echo "FAIL: scenario admission through the gateway did not succeed"
    exit 1
}
printf '%s\n' '{"scenario": "ci-what-if", "model": "table5-manual", "variants": 32, "reduce": {"threshold": 22.5}}' \
    > smoke-scenario/sweep-req.json
./target/release/gmr-serve request "$SCN_ADDR" POST /sweep \
    --body-file smoke-scenario/sweep-req.json > smoke-scenario/summaries.json
for f in smoke-scenario/admit.json smoke-scenario/summaries.json; do
    cargo run --release -q -p gmr-obsv --bin gmr-trace -- json "$f"
done
grep -q '"summaries"' smoke-scenario/summaries.json || {
    echo "FAIL: /sweep response carries no summaries"
    exit 1
}
kill -TERM "$SCN_PID"
wait "$SCN_PID" || { echo "FAIL: scenario smoke cluster did not drain cleanly on SIGTERM"; exit 1; }

echo "==> SIMD tier tests (vector kernels live where the host has AVX2+FMA)"
cargo test -q -p gmr-expr --features simd

echo "==> bench_vm smoke, simd build (relaxed fidelity + headline gates)"
cargo run --release -q -p gmr-bench --features simd --bin bench_vm -- --quick --out BENCH_vm_simd.json
cargo run --release -q -p gmr-bench --features simd --bin bench_vm -- --validate BENCH_vm_simd.json

echo "CI OK"
