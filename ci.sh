#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the gmr-lint battery.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> determinism with observability compiled out"
cargo test -q -p gmr-gp --no-default-features --test determinism --test obsv_determinism

echo "==> gmr-lint --builtin (zero errors required)"
cargo run --release -q -p gmr-lint -- --builtin

echo "==> bench_engine smoke (determinism + speedup + obsv overhead gates)"
cargo run --release -q -p gmr-bench --bin bench_engine -- --quick --out BENCH_engine.json --journal BENCH_engine.jsonl
cargo run --release -q -p gmr-bench --bin bench_engine -- --validate BENCH_engine.json

echo "==> run journal round-trip (gmr-trace validate + summary + chrome)"
cargo run --release -q -p gmr-obsv --bin gmr-trace -- validate BENCH_engine.jsonl
cargo run --release -q -p gmr-obsv --bin gmr-trace -- summary BENCH_engine.jsonl
cargo run --release -q -p gmr-obsv --bin gmr-trace -- chrome BENCH_engine.jsonl --out BENCH_engine.chrome.json

echo "==> bench_vm smoke (tier equivalence + 1.5x speedup gate)"
cargo run --release -q -p gmr-bench --bin bench_vm -- --quick --out BENCH_vm.json
cargo run --release -q -p gmr-bench --bin bench_vm -- --validate BENCH_vm.json

echo "CI OK"
